//! Exact crossing probabilities on the triangulated grid by transfer-matrix DP.
//!
//! The M-Path availability event is *`k` vertex-disjoint alive left-right
//! crossings AND `k` vertex-disjoint alive top-bottom crossings*. Evaluating
//! its probability by enumeration costs `2^n` max-flow runs; Monte-Carlo gives
//! only sampled estimates (and literal zeros in the low-`p` tail). This module
//! computes the probability **exactly** with a column-sweep dynamic program
//! over boundary-interface states.
//!
//! # The duality that makes a sweep possible
//!
//! The triangular lattice is *self-matching*: a set of vertices blocks every
//! left-right path iff it contains a top-bottom path in the **same**
//! adjacency. Combined with Menger's theorem this turns both flow values into
//! shortest-path quantities over the *same* random configuration:
//!
//! * `maxflow_LR(alive) = min over top-bottom paths π of #alive vertices on π`
//! * `maxflow_TB(alive) = min over left-right paths π of #alive vertices on π`
//!
//! (Weak direction: any TB path meets any LR path in a vertex, so the alive
//! vertices of a TB path form an LR cut; strong direction: a minimum LR vertex
//! cut, together with the dead vertices, contains a TB path because the
//! lattice is self-matching. [`min_crossing_cost`] lets the test suite pin
//! this identity against the Dinic max-flow in [`crate::maxflow`]
//! configuration by configuration.)
//!
//! # The interface state
//!
//! Shortest-path costs through a region interact with the outside *only*
//! through the region's boundary: the matrix of pairwise capped shortest-path
//! costs between boundary nodes is a sufficient statistic, no matter how
//! often an optimal path weaves in and out of the region. The sweep therefore
//! adds one cell at a time (column-major) and maintains, per state,
//!
//! * the capped all-pairs cost matrix over `{T, B, L} ∪ frontier` where `T`,
//!   `B`, `L` are virtual terminals for the top, bottom and left sides and
//!   the frontier holds one cell per row (the staircase between the processed
//!   and unprocessed cells), and
//! * the aliveness of the frontier cells.
//!
//! Costs count **alive interior vertices** (dead vertices are free for a
//! blocking path) and saturate at `k`: the events only ask whether a crossing
//! of cost `< k` exists, so every value `≥ k` is equivalent and the state
//! space collapses accordingly. Two states that agree on the capped matrix
//! and the frontier bits are merged, summing their probabilities.
//!
//! The number of reachable states still grows quickly with the side length —
//! the DP is exponential in `√n`, like every known exact method for crossing
//! probabilities — so the entry points take a state budget and return `None`
//! when it is exceeded. Within the budget (sides up to ~7–8 at practical
//! budgets) the result is exact to floating-point rounding, which extends
//! exact M-Path evaluation well past the `2^25` enumeration limit
//! (side 5): a side-7 grid has `2^49` configurations.

use std::collections::{HashMap, VecDeque};
use std::hash::BuildHasherDefault;

use crate::grid::{Axis, TriangulatedGrid};

/// Deterministic hashing for the state maps: with the std `RandomState`,
/// state iteration (and hence the f64 accumulation order) would differ
/// between processes, making DP results reproducible only up to the last
/// ulp. Both key codecs use a fixed, seedless hasher so every run is
/// bit-identical.
///
/// Each state carries one probability mass *per sweep point*: the reachable
/// state space and its transition structure depend only on `(side, k)` —
/// never on `p` — so a whole `p`-grid shares a single enumeration, paying
/// the hashing/packing cost once instead of once per point (the lanes are
/// independent, so each lane's accumulation order, and hence its bits,
/// matches a single-point sweep exactly). The map value is an index into a
/// flat `lanes`-strided mass arena rather than a per-state `Vec<f64>`, so
/// carrying lanes costs no extra heap allocation per state — in particular
/// the single-point path allocates exactly what it did before batching.
type StateMap<K> = HashMap<K, usize, <K as SweepKey>::Build>;

/// Default cap on the number of simultaneous interface states before the DP
/// gives up and returns `None`. 2 million states × ~100-byte keys keeps the
/// worst case in the hundreds of megabytes and well under a second per state
/// generation on commodity hardware.
pub const DEFAULT_DP_STATE_BUDGET: usize = 2_000_000;

/// Default per-state mass threshold for the ε-pruned sweep
/// ([`mpath_crash_probability_pruned`]). A state is discarded only when its
/// mass is below ε in **every** lane, and all discarded mass is carried
/// forward into the interval width, so the choice of ε trades state count
/// against interval width rather than against correctness. `1e-24` is a
/// conservative floor; the state budget (which force-prunes the lowest-mass
/// states when the ε-survivors overflow it, see
/// [`mpath_crash_probability_pruned`]) is the knob that actually bounds
/// memory, and at paper-scale `p` the banked mass stays orders of magnitude
/// below the `1e-9` reporting gate.
pub const DEFAULT_PRUNE_EPSILON: f64 = 1e-24;

/// A rigorous enclosure `[lower, upper]` of a probability computed by the
/// ε-pruned sweep: the lower end is the blocked mass the surviving states
/// account for, the upper end additionally charges **all** discarded mass to
/// the event. The true (unpruned) probability is contained by construction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProbabilityInterval {
    /// Certified lower bound on the probability.
    pub lower: f64,
    /// Certified upper bound on the probability.
    pub upper: f64,
}

impl ProbabilityInterval {
    /// A degenerate (width-zero) interval at `value`.
    #[must_use]
    pub fn exact(value: f64) -> Self {
        ProbabilityInterval {
            lower: value,
            upper: value,
        }
    }

    /// The certified width `upper - lower`.
    #[must_use]
    pub fn width(&self) -> f64 {
        self.upper - self.lower
    }

    /// The midpoint, the natural point estimate.
    #[must_use]
    pub fn midpoint(&self) -> f64 {
        0.5 * (self.lower + self.upper)
    }

    /// Whether `value` lies inside the enclosure (within `tol` slack).
    #[must_use]
    pub fn contains(&self, value: f64, tol: f64) -> bool {
        value >= self.lower - tol && value <= self.upper + tol
    }
}

/// Minimum alive-vertex count over all crossing paths of `axis` (dead
/// vertices cost nothing). By the self-matching duality this equals the
/// maximum number of vertex-disjoint alive crossings of the *perpendicular*
/// axis — the identity the tests pin against [`crate::maxflow`].
///
/// Implemented as a multi-source 0-1 BFS; the grid is connected, so a
/// crossing path (possibly through dead vertices) always exists.
#[must_use]
pub fn min_crossing_cost(grid: &TriangulatedGrid, alive: &[bool], axis: Axis) -> usize {
    let n = grid.num_vertices();
    assert_eq!(alive.len(), n, "alive mask must cover every vertex");
    let mut dist = vec![usize::MAX; n];
    let mut deque: VecDeque<usize> = VecDeque::new();
    for s in grid.sources(axis) {
        let c = usize::from(alive[s]);
        if c < dist[s] {
            dist[s] = c;
            if c == 0 {
                deque.push_front(s);
            } else {
                deque.push_back(s);
            }
        }
    }
    while let Some(v) = deque.pop_front() {
        for u in grid.neighbors(v) {
            let c = usize::from(alive[u]);
            let nd = dist[v] + c;
            if nd < dist[u] {
                dist[u] = nd;
                if c == 0 {
                    deque.push_front(u);
                } else {
                    deque.push_back(u);
                }
            }
        }
    }
    grid.sinks(axis)
        .into_iter()
        .map(|t| dist[t])
        .min()
        .expect("grid has at least one sink")
}

/// Outcome distribution of one DP sweep: the probabilities of the three
/// "blocked" events, from which both the joint M-Path crash probability and
/// single-direction crossing probabilities follow.
#[derive(Debug, Clone, Copy, PartialEq)]
struct SweepOutcome {
    /// `P[maxflow_LR < k or maxflow_TB < k]` — the M-Path crash probability.
    either_blocked: f64,
    /// `P[maxflow_LR < k]` alone.
    lr_blocked: f64,
}

/// Exact M-Path crash probability: the probability that the grid does **not**
/// contain `k` vertex-disjoint alive left-right crossings and `k`
/// vertex-disjoint alive top-bottom crossings simultaneously, when every
/// vertex crashes independently with probability `p`.
///
/// Returns `None` when the interface-state count exceeds `max_states`
/// (the DP is exponential in `side`; see the module docs), when `side == 0`,
/// or when `k` is not in `1..=side` (with `k > side` no configuration has
/// `k` disjoint crossings, so the crash probability is trivially 1 — callers
/// should not need a sweep for that).
#[must_use]
pub fn mpath_crash_probability_exact(
    side: usize,
    k: usize,
    p: f64,
    max_states: usize,
) -> Option<f64> {
    run_sweep_grid(side, k, &[p], max_states).map(|o| o[0].either_blocked)
}

/// The ε-pruned variant of [`mpath_crash_probability_exact`]: interface
/// states whose probability mass falls below `epsilon` (in every lane) are
/// dropped from the sweep, and the total dropped mass is carried forward as
/// a rigorous enclosure — the true crash probability is certified to lie in
/// the returned `[lower, upper]` interval. With `epsilon = 0.0` no state is
/// ever dropped and the interval degenerates to the exact value.
///
/// Pruning is what pushes the sweep past the exact side-6 wall: the mass
/// distribution over interface states is extremely skewed, so a small
/// high-mass core carries almost all of the probability. When the
/// ε-survivors still exceed `max_states` the sweep keeps exactly the
/// `max_states` highest-mass states and banks the rest, so the budget bounds
/// *memory* rather than aborting the run — a too-tight budget surfaces as
/// interval width, never as a wrong value.
///
/// With `epsilon > 0` the sweep therefore only returns `None` on invalid
/// parameters (`side == 0` or `k` outside `1..=side`); with `epsilon = 0.0`
/// it returns `None` when the exact state set exceeds `max_states`, exactly
/// like [`mpath_crash_probability_exact`].
#[must_use]
pub fn mpath_crash_probability_pruned(
    side: usize,
    k: usize,
    p: f64,
    max_states: usize,
    epsilon: f64,
) -> Option<ProbabilityInterval> {
    run_sweep_grid_pruned(side, k, &[p], max_states, epsilon).map(|o| o[0])
}

/// [`mpath_crash_probability_pruned`] over a whole `p`-grid in one shared
/// sweep (see [`mpath_crash_probability_exact_grid`]; each lane keeps its own
/// discarded-mass total, so every interval is certified for its own `p`).
#[must_use]
pub fn mpath_crash_probability_pruned_grid(
    side: usize,
    k: usize,
    ps: &[f64],
    max_states: usize,
    epsilon: f64,
) -> Option<Vec<ProbabilityInterval>> {
    run_sweep_grid_pruned(side, k, ps, max_states, epsilon)
}

/// Shared driver for the pruned entry points: maps each swept lane's
/// `(blocked mass, discarded mass)` pair into a certified interval, handling
/// the analytic boundary points exactly as the unpruned driver does.
fn run_sweep_grid_pruned(
    side: usize,
    k: usize,
    ps: &[f64],
    max_states: usize,
    epsilon: f64,
) -> Option<Vec<ProbabilityInterval>> {
    let outcomes = run_sweep_grid_with(side, k, ps, max_states, epsilon)?;
    Some(
        outcomes
            .into_iter()
            .map(|(o, discarded)| {
                if o.either_blocked.is_nan() {
                    ProbabilityInterval::exact(f64::NAN)
                } else {
                    ProbabilityInterval {
                        lower: o.either_blocked,
                        upper: (o.either_blocked + discarded).min(1.0),
                    }
                }
            })
            .collect(),
    )
}

/// [`mpath_crash_probability_exact`] over a whole `p`-grid in **one** sweep:
/// the interface-state enumeration and transition structure depend only on
/// `(side, k)`, so all points share them and each extra point costs a few
/// multiply-adds per transition instead of a full re-enumeration. Results
/// are bit-identical to evaluating each point on its own.
///
/// Returns `None` under the same conditions as the single-point form.
#[must_use]
pub fn mpath_crash_probability_exact_grid(
    side: usize,
    k: usize,
    ps: &[f64],
    max_states: usize,
) -> Option<Vec<f64>> {
    run_sweep_grid(side, k, ps, max_states)
        .map(|outcomes| outcomes.iter().map(|o| o.either_blocked).collect())
}

/// Exact probability of an alive crossing along `axis` (`k = 1` flow event)
/// when every vertex crashes independently with probability `p`. By the
/// square grid's transpose symmetry the two axes give the same value; the
/// parameter exists for call-site clarity.
///
/// Returns `None` under the same conditions as
/// [`mpath_crash_probability_exact`].
#[must_use]
pub fn crossing_probability_exact(
    side: usize,
    p: f64,
    _axis: Axis,
    max_states: usize,
) -> Option<f64> {
    run_sweep_grid(side, 1, &[p], max_states).map(|o| 1.0 - o[0].lr_blocked)
}

/// [`crossing_probability_exact`] over a whole `p`-grid in one shared sweep
/// (see [`mpath_crash_probability_exact_grid`]).
#[must_use]
pub fn crossing_probability_exact_grid(
    side: usize,
    ps: &[f64],
    _axis: Axis,
    max_states: usize,
) -> Option<Vec<f64>> {
    run_sweep_grid(side, 1, ps, max_states)
        .map(|outcomes| outcomes.iter().map(|o| 1.0 - o.lr_blocked).collect())
}

/// Node layout of the interface matrix: three virtual terminals, then one
/// frontier slot per row.
const T: usize = 0;
const B: usize = 1;
const L: usize = 2;
const CELLS: usize = 3;

/// The interface matrix plus frontier aliveness, in unpacked working form.
#[derive(Clone)]
struct State {
    /// Full symmetric `n_nodes × n_nodes` capped cost matrix (diagonal 0).
    d: Vec<u8>,
    /// Bit `r` set iff the frontier cell of row `r` is alive.
    alive: u32,
}

/// Key codec for the interface-state maps: how a [`State`] is canonicalised
/// into a hashable map key. Two codecs exist — the bit-packed [`PackedKey`]
/// fast path (no per-key heap allocation, 4-word hashing and equality) that
/// covers every practically reachable parameterisation (`side ≤ 10`,
/// `k ≤ 7`), and the byte-vector fallback for parameters beyond it, kept for
/// API completeness (those sweeps exceed any realistic state budget anyway).
trait SweepKey: Eq + std::hash::Hash + Clone {
    /// Hasher family for maps keyed by this codec (fixed-seed, so state
    /// iteration order — and hence f64 accumulation — is reproducible).
    type Build: std::hash::BuildHasher + Default;
    /// An empty reusable key buffer.
    fn empty() -> Self;
    /// Canonicalises `state` into `self`.
    fn pack(&mut self, state: &State, n_nodes: usize);
    /// Rehydrates the key into a full-matrix `State`.
    fn unpack(&self, n_nodes: usize, out: &mut State);
}

impl SweepKey for Vec<u8> {
    type Build = BuildHasherDefault<std::hash::DefaultHasher>;

    fn empty() -> Self {
        Vec::new()
    }

    fn pack(&mut self, state: &State, n_nodes: usize) {
        pack_into(state, n_nodes, self);
    }

    fn unpack(&self, n_nodes: usize, out: &mut State) {
        unpack_into(self, n_nodes, out);
    }
}

/// 3-bit slots per `u64` word of a [`PackedKey`]: 21 slots use 63 bits, so a
/// slot never straddles a word boundary.
const PACKED_SLOTS_PER_WORD: usize = 21;

/// Total 3-bit slot capacity of a [`PackedKey`].
const PACKED_SLOTS: usize = 4 * PACKED_SLOTS_PER_WORD;

/// The number of 3-bit slots a `(side, k)` sweep needs: one per
/// upper-triangle matrix entry plus ⌈side/3⌉ for the frontier aliveness bits.
fn packed_slots_needed(side: usize) -> usize {
    let n_nodes = CELLS + side;
    n_nodes * (n_nodes - 1) / 2 + side.div_ceil(3)
}

/// The interface state bit-packed into four words: capped cost entries are at
/// most `kcap ≤ 7`, so each fits a 3-bit slot. Compared to the byte-vector
/// codec this removes the per-inserted-state heap allocation and shrinks
/// hashing and equality from a ~60-byte memcmp/SipHash to four words — the
/// dominant non-arithmetic cost of the sweep's hot loop.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
struct PackedKey([u64; 4]);

impl SweepKey for PackedKey {
    type Build = BuildHasherDefault<FxHasher>;

    fn empty() -> Self {
        PackedKey([0; 4])
    }

    fn pack(&mut self, state: &State, n_nodes: usize) {
        self.0 = [0; 4];
        let mut slot = 0usize;
        for i in 0..n_nodes {
            for j in (i + 1)..n_nodes {
                let v = u64::from(state.d[i * n_nodes + j]);
                self.0[slot / PACKED_SLOTS_PER_WORD] |= v << (3 * (slot % PACKED_SLOTS_PER_WORD));
                slot += 1;
            }
        }
        for c in 0..(n_nodes - CELLS).div_ceil(3) {
            let v = (u64::from(state.alive) >> (3 * c)) & 7;
            self.0[slot / PACKED_SLOTS_PER_WORD] |= v << (3 * (slot % PACKED_SLOTS_PER_WORD));
            slot += 1;
        }
    }

    fn unpack(&self, n_nodes: usize, out: &mut State) {
        let mut slot = 0usize;
        for i in 0..n_nodes {
            out.d[i * n_nodes + i] = 0;
            for j in (i + 1)..n_nodes {
                let v = ((self.0[slot / PACKED_SLOTS_PER_WORD]
                    >> (3 * (slot % PACKED_SLOTS_PER_WORD)))
                    & 7) as u8;
                out.d[i * n_nodes + j] = v;
                out.d[j * n_nodes + i] = v;
                slot += 1;
            }
        }
        let mut alive = 0u32;
        for c in 0..(n_nodes - CELLS).div_ceil(3) {
            let v =
                (self.0[slot / PACKED_SLOTS_PER_WORD] >> (3 * (slot % PACKED_SLOTS_PER_WORD))) & 7;
            alive |= (v as u32) << (3 * c);
            slot += 1;
        }
        out.alive = alive;
    }
}

/// Seedless multiply-rotate hasher for [`PackedKey`] maps: four
/// rotate-xor-multiply rounds instead of SipHash over a ~60-byte buffer.
/// Deterministic by construction (no per-process seed), which is what keeps
/// sweep results bit-identical run to run; it is never fed attacker-chosen
/// keys, so SipHash's flooding resistance buys nothing here.
#[derive(Default)]
struct FxHasher(u64);

impl std::hash::Hasher for FxHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.write_u64(u64::from(b));
        }
    }

    fn write_u64(&mut self, w: u64) {
        self.0 = (self.0.rotate_left(26) ^ w).wrapping_mul(0x9e37_79b9_7f4a_7c15);
    }

    fn write_usize(&mut self, w: usize) {
        self.write_u64(w as u64);
    }
}

fn run_sweep_grid(
    side: usize,
    k: usize,
    ps: &[f64],
    max_states: usize,
) -> Option<Vec<SweepOutcome>> {
    run_sweep_grid_with(side, k, ps, max_states, 0.0)
        .map(|outcomes| outcomes.into_iter().map(|(o, _)| o).collect())
}

/// The common driver behind the exact and pruned entry points: each returned
/// pair is `(outcome, discarded mass)` for one requested `p`. With
/// `epsilon = 0.0` no state is ever pruned, the discarded mass is exactly
/// zero, and the swept values are bit-identical to the historical unpruned
/// sweep.
fn run_sweep_grid_with(
    side: usize,
    k: usize,
    ps: &[f64],
    max_states: usize,
    epsilon: f64,
) -> Option<Vec<(SweepOutcome, f64)>> {
    if side == 0 || k == 0 || k > side || side > 31 {
        return None;
    }
    // Boundary points are analytic (p = 0: the fully alive grid has `k ≤
    // side` disjoint straight crossings both ways; p = 1: nothing is alive),
    // and excluding them keeps every swept transition's weight non-zero for
    // every lane — so the reachable state set, its iteration order, and
    // hence each lane's bit pattern are identical whether the lane runs
    // alone or in a grid.
    let clamped: Vec<f64> = ps.iter().map(|&p| p.clamp(0.0, 1.0)).collect();
    let interior: Vec<f64> = clamped
        .iter()
        .copied()
        .filter(|&p| p > 0.0 && p < 1.0)
        .collect();
    let (swept, discarded) = if interior.is_empty() {
        (Vec::new(), Vec::new())
    } else {
        sweep_interior(side, k, &interior, max_states, epsilon)?
    };
    let mut swept_iter = swept.into_iter().zip(discarded);
    Some(
        clamped
            .iter()
            .map(|&p| {
                if p.is_nan() {
                    // Garbage in, garbage out — but never a panic (matching
                    // the historical single-point behaviour, where a NaN `p`
                    // produced NaN weights throughout the sweep).
                    (
                        SweepOutcome {
                            either_blocked: f64::NAN,
                            lr_blocked: f64::NAN,
                        },
                        0.0,
                    )
                } else if p <= 0.0 {
                    (
                        SweepOutcome {
                            either_blocked: 0.0,
                            lr_blocked: 0.0,
                        },
                        0.0,
                    )
                } else if p >= 1.0 {
                    (
                        SweepOutcome {
                            either_blocked: 1.0,
                            lr_blocked: 1.0,
                        },
                        0.0,
                    )
                } else {
                    swept_iter.next().expect("one swept outcome per interior p")
                }
            })
            .collect(),
    )
}

/// The shared column sweep over interior points (`0 < p < 1` each): one
/// state enumeration, `ps.len()` probability lanes. Returns the per-lane
/// outcomes together with each lane's total discarded (pruned) mass.
fn sweep_interior(
    side: usize,
    k: usize,
    ps: &[f64],
    max_states: usize,
    epsilon: f64,
) -> Option<(Vec<SweepOutcome>, Vec<f64>)> {
    if k <= 7 && packed_slots_needed(side) <= PACKED_SLOTS {
        sweep_interior_keyed::<PackedKey>(side, k, ps, max_states, epsilon)
    } else {
        sweep_interior_keyed::<Vec<u8>>(side, k, ps, max_states, epsilon)
    }
}

/// The sweep body, generic over the state-key codec (see [`SweepKey`]).
fn sweep_interior_keyed<K: SweepKey>(
    side: usize,
    k: usize,
    ps: &[f64],
    max_states: usize,
    epsilon: f64,
) -> Option<(Vec<SweepOutcome>, Vec<f64>)> {
    let kcap = u8::try_from(k).ok()?;
    let lanes = ps.len();
    let n_nodes = CELLS + side;
    let initial = State {
        // No region yet: every pair is "unreachable", which the cap folds
        // into the same class as "cost >= k".
        d: init_matrix(n_nodes, kcap),
        alive: 0,
    };
    let mut states: StateMap<K> = StateMap::<K>::default();
    let mut masses: Vec<f64> = vec![1.0; lanes];
    let mut initial_key = K::empty();
    initial_key.pack(&initial, n_nodes);
    states.insert(initial_key, 0);
    let mut discarded: Vec<f64> = vec![0.0; lanes];

    // Reusable scratch for the unpacked base state, the mutated successor and
    // its packed key: the innermost loop runs (states × cells) times and must
    // not allocate per transition.
    let mut base = State {
        d: vec![0; n_nodes * n_nodes],
        alive: 0,
    };
    let mut scratch = base.clone();
    let mut keybuf = K::empty();
    let mut newrow = vec![0u8; n_nodes];
    let mut massbuf: Vec<f64> = vec![0.0; lanes];
    for col in 0..side {
        for row in 0..side {
            let mut next = StateMap::<K>::with_capacity_and_hasher(
                states.len().saturating_mul(2),
                <_>::default(),
            );
            let mut next_masses: Vec<f64> = Vec::with_capacity(masses.len().saturating_mul(2));
            for (key, &mass_idx) in &states {
                let mass = &masses[mass_idx * lanes..(mass_idx + 1) * lanes];
                key.unpack(n_nodes, &mut base);
                for cell_alive in [false, true] {
                    scratch.d.copy_from_slice(&base.d);
                    scratch.alive = base.alive;
                    add_cell(&mut scratch, side, kcap, row, col, cell_alive, &mut newrow);
                    keybuf.pack(&scratch, n_nodes);
                    for ((mb, &m), &p) in massbuf.iter_mut().zip(mass).zip(ps) {
                        let weight = if cell_alive { 1.0 - p } else { p };
                        *mb = m * weight;
                    }
                    // Only a first-seen successor pays a key allocation; its
                    // masses go into the flat arena.
                    if let Some(&idx) = next.get(&keybuf) {
                        for (a, &mb) in next_masses[idx * lanes..].iter_mut().zip(&massbuf) {
                            *a += mb;
                        }
                    } else {
                        next.insert(keybuf.clone(), next_masses.len() / lanes);
                        next_masses.extend_from_slice(&massbuf);
                    }
                }
            }
            // ε-pruning: a state below threshold in *every* lane is dropped,
            // its mass per lane banked into the enclosure width. (Skipped
            // entirely at ε = 0 so the exact path's state set and iteration
            // order are untouched.)
            if epsilon > 0.0 {
                next.retain(|_, &mut idx| {
                    let mass = &next_masses[idx * lanes..(idx + 1) * lanes];
                    if mass.iter().any(|&m| m >= epsilon) {
                        true
                    } else {
                        for (acc, &m) in discarded.iter_mut().zip(mass) {
                            *acc += m;
                        }
                        false
                    }
                });
            }
            // Forced budget pruning (pruned path only): when the ε-survivors
            // still exceed the budget, keep exactly the `max_states`
            // highest-mass states and bank the rest into the enclosure. The
            // budget thus bounds memory instead of aborting the sweep, and
            // the interval stays certified — a too-tight budget shows up as
            // width, not as `None`. Ranking ties break on the arena index,
            // which the fixed-key hasher makes reproducible, so results stay
            // bit-identical across runs.
            if epsilon > 0.0 && next.len() > max_states {
                let max_lane_mass = |idx: usize| {
                    next_masses[idx * lanes..(idx + 1) * lanes]
                        .iter()
                        .fold(0.0_f64, |a, &m| a.max(m))
                };
                let mut order: Vec<(f64, usize)> = next
                    .values()
                    .map(|&idx| (max_lane_mass(idx), idx))
                    .collect();
                let cut = order.len() - max_states;
                order.select_nth_unstable_by(cut, |a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
                let threshold = order[cut];
                next.retain(|_, &mut idx| {
                    if (max_lane_mass(idx), idx) >= threshold {
                        true
                    } else {
                        let mass = &next_masses[idx * lanes..(idx + 1) * lanes];
                        for (acc, &m) in discarded.iter_mut().zip(mass) {
                            *acc += m;
                        }
                        false
                    }
                });
            }
            if next.len() > max_states {
                return None;
            }
            states = next;
            masses = next_masses;
        }
    }

    let mut either_blocked = vec![0.0; lanes];
    let mut lr_blocked = vec![0.0; lanes];
    for (key, &mass_idx) in &states {
        let mass = &masses[mass_idx * lanes..(mass_idx + 1) * lanes];
        key.unpack(n_nodes, &mut base);
        let st = &base;
        // Self-matching duality: maxflow_LR = min TB-path cost, maxflow_TB =
        // min LR-path cost. The final frontier is exactly the right column,
        // where LR blocking paths terminate (paying their own aliveness).
        let min_tb_cost = st.d[T * n_nodes + B];
        let min_lr_cost = (0..side)
            .map(|r| st.d[L * n_nodes + CELLS + r].saturating_add((st.alive >> r & 1) as u8))
            .min()
            .unwrap_or(kcap)
            .min(kcap);
        if min_tb_cost < kcap {
            for (acc, &m) in lr_blocked.iter_mut().zip(mass) {
                *acc += m;
            }
        }
        if min_tb_cost < kcap || min_lr_cost < kcap {
            for (acc, &m) in either_blocked.iter_mut().zip(mass) {
                *acc += m;
            }
        }
    }
    Some((
        either_blocked
            .into_iter()
            .zip(lr_blocked)
            .map(|(e, l)| SweepOutcome {
                either_blocked: e.clamp(0.0, 1.0),
                lr_blocked: l.clamp(0.0, 1.0),
            })
            .collect(),
        discarded,
    ))
}

fn init_matrix(n_nodes: usize, kcap: u8) -> Vec<u8> {
    let mut d = vec![kcap; n_nodes * n_nodes];
    for i in 0..n_nodes {
        d[i * n_nodes + i] = 0;
    }
    d
}

/// Packs the upper triangle of the (symmetric) matrix plus the frontier bits
/// into a canonical byte-vector key (the fallback codec's hot-loop packer;
/// the reused buffer is cleared first).
fn pack_into(state: &State, n_nodes: usize, key: &mut Vec<u8>) {
    key.clear();
    for i in 0..n_nodes {
        for j in (i + 1)..n_nodes {
            key.push(state.d[i * n_nodes + j]);
        }
    }
    key.extend_from_slice(&state.alive.to_le_bytes());
}

/// Rehydrates a packed key into a reused full-matrix `State`.
fn unpack_into(key: &[u8], n_nodes: usize, out: &mut State) {
    let mut pos = 0;
    for i in 0..n_nodes {
        out.d[i * n_nodes + i] = 0;
        for j in (i + 1)..n_nodes {
            out.d[i * n_nodes + j] = key[pos];
            out.d[j * n_nodes + i] = key[pos];
            pos += 1;
        }
    }
    out.alive = u32::from_le_bytes(key[pos..pos + 4].try_into().expect("key length"));
}

/// Extends the region by cell `(row, col)`, replacing the frontier slot of
/// `row` (which held `(row, col - 1)`, about to lose its last unprocessed
/// neighbour) and restoring the capped metric closure.
///
/// Costs are *interior*: an entry excludes both endpoints' aliveness, which
/// lets segments be concatenated by adding the junction vertex's cost once.
/// Terminals are virtual (cost 0, endpoints only): they are never used as
/// intermediates, so a path cannot "teleport" along the top row through `T`.
/// `newrow` is caller-provided scratch of length `n_nodes` (the hot loop must
/// not allocate per transition); its contents on entry are irrelevant.
#[allow(clippy::too_many_arguments)]
fn add_cell(
    state: &mut State,
    side: usize,
    kcap: u8,
    row: usize,
    col: usize,
    cell_alive: bool,
    newrow: &mut [u8],
) {
    let n_nodes = CELLS + side;
    let v = CELLS + row;
    let d = &mut state.d;

    // Region nodes adjacent to the new cell. In column-major insertion order
    // the triangulated grid's neighbours of (row, col) inside the region are
    // (row-1, col) [this column, vertical], (row, col-1) [previous column,
    // horizontal — currently in slot `row`], and (row+1, col-1) [previous
    // column, anti-diagonal].
    let mut adj_cells: [usize; 3] = [usize::MAX; 3];
    let mut n_adj = 0;
    if row > 0 {
        adj_cells[n_adj] = CELLS + row - 1;
        n_adj += 1;
    }
    if col > 0 {
        adj_cells[n_adj] = CELLS + row; // (row, col-1): the slot being replaced
        n_adj += 1;
        if row + 1 < side {
            adj_cells[n_adj] = CELLS + row + 1;
            n_adj += 1;
        }
    }

    // New row of the matrix: shortest interior costs from v to every node,
    // before v replaces the old slot content.
    newrow.fill(kcap);
    newrow[v] = 0;
    for &a in &adj_cells[..n_adj] {
        newrow[a] = 0;
        let ca = (state.alive >> (a - CELLS) & 1) as u8;
        for x in 0..n_nodes {
            let via = ca.saturating_add(d[a * n_nodes + x]).min(kcap);
            if via < newrow[x] {
                newrow[x] = via;
            }
        }
    }
    // Virtual terminals adjacent to v (endpoints only — no composition
    // through them).
    if row == 0 {
        newrow[T] = 0;
    }
    if row == side - 1 {
        newrow[B] = 0;
    }
    if col == 0 {
        newrow[L] = 0;
    }
    newrow[v] = 0;

    for x in 0..n_nodes {
        d[v * n_nodes + x] = newrow[x];
        d[x * n_nodes + v] = newrow[x];
    }
    if cell_alive {
        state.alive |= 1 << row;
    } else {
        state.alive &= !(1 << row);
    }

    // Single-pivot closure update: with non-negative costs a shortest walk
    // uses the one new vertex at most once.
    let cv = u8::from(cell_alive);
    for i in 0..n_nodes {
        if i == v {
            continue;
        }
        let div = d[i * n_nodes + v];
        if div >= kcap {
            continue;
        }
        let through = div.saturating_add(cv);
        for j in 0..n_nodes {
            let cand = through.saturating_add(d[v * n_nodes + j]).min(kcap);
            if cand < d[i * n_nodes + j] {
                d[i * n_nodes + j] = cand;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::maxflow::max_vertex_disjoint_paths;
    use crate::percolation::PercolationEstimator;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// The load-bearing identity: on the self-matching triangulated grid the
    /// max number of vertex-disjoint alive crossings equals the min number of
    /// alive vertices on a blocking path of the perpendicular direction.
    /// Exhaustive on side 3 (512 configurations), randomized on sides 5–7.
    #[test]
    fn duality_matches_maxflow_exhaustively_side_3() {
        let g = TriangulatedGrid::new(3);
        for mask in 0u32..(1 << 9) {
            let alive: Vec<bool> = (0..9).map(|i| mask >> i & 1 == 1).collect();
            let flow_lr = max_vertex_disjoint_paths(&g, &alive, Axis::LeftRight);
            let flow_tb = max_vertex_disjoint_paths(&g, &alive, Axis::TopBottom);
            assert_eq!(
                flow_lr,
                min_crossing_cost(&g, &alive, Axis::TopBottom),
                "mask={mask:#b}"
            );
            assert_eq!(
                flow_tb,
                min_crossing_cost(&g, &alive, Axis::LeftRight),
                "mask={mask:#b}"
            );
        }
    }

    #[test]
    fn duality_matches_maxflow_randomized_larger_sides() {
        let mut rng = StdRng::seed_from_u64(41);
        for side in [4usize, 5, 6, 7] {
            let g = TriangulatedGrid::new(side);
            for _ in 0..60 {
                let p: f64 = 0.1 + 0.8 * rng.gen::<f64>();
                let alive: Vec<bool> = (0..g.num_vertices())
                    .map(|_| rng.gen::<f64>() >= p)
                    .collect();
                assert_eq!(
                    max_vertex_disjoint_paths(&g, &alive, Axis::LeftRight),
                    min_crossing_cost(&g, &alive, Axis::TopBottom),
                    "side={side}"
                );
                assert_eq!(
                    max_vertex_disjoint_paths(&g, &alive, Axis::TopBottom),
                    min_crossing_cost(&g, &alive, Axis::LeftRight),
                    "side={side}"
                );
            }
        }
    }

    /// Brute-force reference: joint crash probability by summing over all
    /// `2^n` configurations with max-flow availability checks.
    fn brute_force_crash_probability(side: usize, k: usize, p: f64) -> f64 {
        let g = TriangulatedGrid::new(side);
        let n = g.num_vertices();
        let mut total = 0.0;
        for mask in 0u64..(1 << n) {
            let alive: Vec<bool> = (0..n).map(|i| mask >> i & 1 == 1).collect();
            let ok = max_vertex_disjoint_paths(&g, &alive, Axis::LeftRight) >= k
                && max_vertex_disjoint_paths(&g, &alive, Axis::TopBottom) >= k;
            if !ok {
                let a = mask.count_ones() as i32;
                total += (1.0 - p).powi(a) * p.powi(n as i32 - a);
            }
        }
        total
    }

    #[test]
    fn dp_matches_brute_force_on_small_grids() {
        for side in [1usize, 2, 3] {
            for k in 1..=side {
                for &p in &[0.0, 0.1, 0.33, 0.5, 0.77, 1.0] {
                    let dp = mpath_crash_probability_exact(side, k, p, 1 << 22).unwrap();
                    let brute = brute_force_crash_probability(side, k, p);
                    assert!(
                        (dp - brute).abs() < 1e-12,
                        "side={side} k={k} p={p}: dp {dp} vs brute {brute}"
                    );
                }
            }
        }
    }

    #[test]
    fn dp_matches_brute_force_side_4() {
        // 2^16 max-flow evaluations per (k, p) point: keep the grid of points
        // small but cover every k the M-Path construction can ask for.
        for k in [1usize, 2, 3] {
            for &p in &[0.125, 0.4] {
                let dp = mpath_crash_probability_exact(4, k, p, 1 << 22).unwrap();
                let brute = brute_force_crash_probability(4, k, p);
                assert!(
                    (dp - brute).abs() < 1e-12,
                    "k={k} p={p}: dp {dp} vs brute {brute}"
                );
            }
        }
    }

    #[test]
    fn grid_sweep_is_bit_identical_to_single_points() {
        // The whole point of the shared sweep: each lane's accumulation
        // order matches a solo run, so the results agree to the last bit —
        // including grids that mix interior points with the analytic 0/1
        // endpoints.
        let ps = [0.0, 0.05, 0.125, 0.3, 0.5, 0.77, 1.0];
        for (side, k) in [(3usize, 1usize), (4, 2), (5, 3)] {
            let grid = mpath_crash_probability_exact_grid(side, k, &ps, 1 << 22).unwrap();
            for (&p, &g) in ps.iter().zip(&grid) {
                let single = mpath_crash_probability_exact(side, k, p, 1 << 22).unwrap();
                assert_eq!(
                    g.to_bits(),
                    single.to_bits(),
                    "side={side} k={k} p={p}: grid {g} vs single {single}"
                );
            }
            let crossing_grid =
                crossing_probability_exact_grid(side, &ps, Axis::LeftRight, 1 << 22).unwrap();
            for (&p, &g) in ps.iter().zip(&crossing_grid) {
                let single = crossing_probability_exact(side, p, Axis::LeftRight, 1 << 22).unwrap();
                assert_eq!(g.to_bits(), single.to_bits(), "side={side} p={p}");
            }
        }
    }

    #[test]
    fn grid_sweep_handles_empty_and_boundary_only_grids() {
        assert_eq!(
            mpath_crash_probability_exact_grid(4, 2, &[], 1 << 20).unwrap(),
            Vec::<f64>::new()
        );
        assert_eq!(
            mpath_crash_probability_exact_grid(4, 2, &[0.0, 1.0], 1 << 20).unwrap(),
            vec![0.0, 1.0]
        );
        // A NaN point propagates as NaN (no panic) without disturbing the
        // other lanes.
        let mixed = mpath_crash_probability_exact_grid(4, 2, &[0.25, f64::NAN], 1 << 20).unwrap();
        assert!(mixed[0].is_finite());
        assert!(mixed[1].is_nan());
        assert!(mpath_crash_probability_exact(4, 2, f64::NAN, 1 << 20)
            .unwrap()
            .is_nan());
    }

    #[test]
    fn dp_extremes_and_monotonicity() {
        for side in [3usize, 5] {
            for k in [1usize, 2] {
                assert_eq!(
                    mpath_crash_probability_exact(side, k, 0.0, 1 << 22).unwrap(),
                    0.0
                );
                assert_eq!(
                    mpath_crash_probability_exact(side, k, 1.0, 1 << 22).unwrap(),
                    1.0
                );
                let mut prev = 0.0;
                for i in 0..=10 {
                    let p = f64::from(i) / 10.0;
                    let fp = mpath_crash_probability_exact(side, k, p, 1 << 22).unwrap();
                    assert!(fp >= prev - 1e-12, "side={side} k={k} p={p}");
                    prev = fp;
                }
            }
        }
    }

    #[test]
    fn crossing_probability_matches_monte_carlo() {
        let est = PercolationEstimator::new(6);
        let mut rng = StdRng::seed_from_u64(9);
        for &p in &[0.15, 0.5, 0.8] {
            let exact = crossing_probability_exact(6, p, Axis::LeftRight, 1 << 22).unwrap();
            let mc = est.estimate_crossing_probability(p, Axis::LeftRight, 2000, &mut rng);
            assert!(
                (exact - mc.mean).abs() <= mc.ci95_half_width() + 0.02,
                "p={p}: exact {exact} vs mc {} ± {}",
                mc.mean,
                mc.ci95_half_width()
            );
        }
    }

    #[test]
    fn crossing_probability_is_self_dual_at_one_half() {
        // Site percolation on the triangular lattice is self-dual: an alive
        // LR crossing exists iff no dead TB crossing does, so at p = 1/2 the
        // crossing probability is exactly 1/2 on a square patch.
        for side in [2usize, 4, 6] {
            let c = crossing_probability_exact(side, 0.5, Axis::LeftRight, 1 << 22).unwrap();
            assert!((c - 0.5).abs() < 1e-12, "side={side}: {c}");
        }
    }

    #[test]
    #[ignore = "state-space probe for tuning the dispatch gate; run with --ignored --nocapture"]
    fn probe_state_growth() {
        for side in 5..=10usize {
            for k in [2usize, 3, 4] {
                if k > side {
                    continue;
                }
                let start = std::time::Instant::now();
                let fp = mpath_crash_probability_exact(side, k, 0.125, 8_000_000);
                println!(
                    "side={side} k={k}: fp={fp:?} in {:.3}s",
                    start.elapsed().as_secs_f64()
                );
            }
        }
    }

    #[test]
    #[ignore = "k=1 state-space probe for the crossing-curve gate; run with --ignored --nocapture"]
    fn probe_state_growth_k1() {
        for side in [6usize, 8, 10, 12] {
            let start = std::time::Instant::now();
            let c = crossing_probability_exact(side, 0.125, Axis::LeftRight, 4_000_000);
            println!(
                "side={side}: P(cross)={c:?} in {:.3}s",
                start.elapsed().as_secs_f64()
            );
        }
    }

    fn assert_pruned_tracks_exact(cases: &[(usize, usize)]) {
        for &(side, k) in cases {
            for &p in &[0.05, 0.125, 0.3, 0.5] {
                let exact = mpath_crash_probability_exact(side, k, p, 1 << 22).unwrap();
                let interval =
                    mpath_crash_probability_pruned(side, k, p, 1 << 22, DEFAULT_PRUNE_EPSILON)
                        .unwrap();
                assert!(
                    interval.contains(exact, 0.0),
                    "side={side} k={k} p={p}: exact {exact} outside [{}, {}]",
                    interval.lower,
                    interval.upper
                );
                assert!(
                    (interval.midpoint() - exact).abs() <= 1e-12,
                    "side={side} k={k} p={p}: midpoint {} vs exact {exact}",
                    interval.midpoint()
                );
            }
        }
    }

    #[test]
    fn pruned_interval_contains_exact_value_and_is_tight_on_small_sides() {
        // At sides the unpruned sweep still affords, the pruned enclosure
        // must contain the exact value, and with the default ε its width is
        // negligible — the acceptance bar is agreement within 1e-12.
        assert_pruned_tracks_exact(&[(3, 1), (4, 2), (5, 2)]);
    }

    #[test]
    #[cfg_attr(
        debug_assertions,
        ignore = "side-6 sweeps take minutes without optimizations; covered by the release suite"
    )]
    fn pruned_interval_contains_exact_value_at_side_six() {
        assert_pruned_tracks_exact(&[(6, 3)]);
    }

    #[test]
    fn pruned_with_zero_epsilon_is_bit_identical_to_exact() {
        for (side, k, p) in [(4usize, 2usize, 0.125f64), (5, 3, 0.3)] {
            let exact = mpath_crash_probability_exact(side, k, p, 1 << 22).unwrap();
            let interval = mpath_crash_probability_pruned(side, k, p, 1 << 22, 0.0).unwrap();
            assert_eq!(interval.lower.to_bits(), exact.to_bits());
            assert_eq!(interval.upper.to_bits(), exact.to_bits());
            assert_eq!(interval.width(), 0.0);
        }
    }

    #[test]
    #[cfg_attr(
        debug_assertions,
        ignore = "≈25 s in release but ~20× that without optimizations; covered by the release suite"
    )]
    fn pruned_reaches_side_7_within_width_gate() {
        // Past the exact side-6 wall with a certified enclosure far tighter
        // than 1e-9 at a paper-scale p, using the dispatch-tuned ε and a
        // state budget large enough that forced pruning never fires.
        let interval = mpath_crash_probability_pruned(7, 2, 0.125, 1 << 26, 1e-16).unwrap();
        assert!(interval.width() <= 1e-9, "width {}", interval.width());
        assert!(interval.lower >= 0.0 && interval.upper <= 1.0);
        assert!(interval.upper > 0.0);
    }

    #[test]
    #[ignore = "side-8 sweep takes minutes even in release; the gate is recorded by bench_fp in BENCH_fp.json"]
    fn pruned_reaches_side_8_within_width_gate() {
        // The tentpole claim: side 8 (n = 64, far past both the 2^25
        // enumeration limit and the exact-DP side-6 wall) with a certified
        // enclosure within the 1e-9 acceptance gate at a paper-scale p.
        let interval = mpath_crash_probability_pruned(8, 2, 0.125, 1 << 26, 1e-16).unwrap();
        assert!(interval.width() <= 1e-9, "width {}", interval.width());
        assert!(interval.lower >= 0.0 && interval.upper <= 1.0);
        assert!(interval.upper > 0.0);
    }

    #[test]
    fn pruned_grid_lanes_match_single_point_runs() {
        let ps = [0.0, 0.1, 0.25, 1.0];
        let grid = mpath_crash_probability_pruned_grid(5, 2, &ps, 1 << 22, 1e-20).unwrap();
        for (&p, iv) in ps.iter().zip(&grid) {
            let single = mpath_crash_probability_pruned(5, 2, p, 1 << 22, 1e-20).unwrap();
            assert_eq!(iv.lower.to_bits(), single.lower.to_bits(), "p={p}");
            assert_eq!(iv.upper.to_bits(), single.upper.to_bits(), "p={p}");
        }
        // Boundary lanes are analytic: exact width-0 intervals.
        assert_eq!(grid[0].lower, 0.0);
        assert_eq!(grid[0].width(), 0.0);
        assert_eq!(grid[3].upper, 1.0);
        assert_eq!(grid[3].width(), 0.0);
    }

    #[test]
    #[ignore = "pruned state-space probe for sides 8-10; run with --ignored --nocapture"]
    fn probe_pruned_state_growth() {
        for side in [8usize, 9, 10] {
            for k in [2usize, 3] {
                let start = std::time::Instant::now();
                let iv = mpath_crash_probability_pruned(
                    side,
                    k,
                    0.125,
                    8_000_000,
                    DEFAULT_PRUNE_EPSILON,
                );
                println!(
                    "side={side} k={k}: {iv:?} in {:.3}s",
                    start.elapsed().as_secs_f64()
                );
            }
        }
    }

    #[test]
    fn invalid_parameters_and_budget_give_none() {
        assert!(mpath_crash_probability_exact(0, 1, 0.1, 1 << 20).is_none());
        assert!(mpath_crash_probability_exact(4, 0, 0.1, 1 << 20).is_none());
        assert!(mpath_crash_probability_exact(4, 5, 0.1, 1 << 20).is_none());
        // A budget of 1 state cannot hold the distribution at p in (0, 1).
        assert!(mpath_crash_probability_exact(5, 2, 0.3, 1).is_none());
    }
}
