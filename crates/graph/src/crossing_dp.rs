//! Exact crossing probabilities on the triangulated grid by transfer-matrix DP.
//!
//! The M-Path availability event is *`k` vertex-disjoint alive left-right
//! crossings AND `k` vertex-disjoint alive top-bottom crossings*. Evaluating
//! its probability by enumeration costs `2^n` max-flow runs; Monte-Carlo gives
//! only sampled estimates (and literal zeros in the low-`p` tail). This module
//! computes the probability **exactly** with a column-sweep dynamic program
//! over boundary-interface states.
//!
//! # The duality that makes a sweep possible
//!
//! The triangular lattice is *self-matching*: a set of vertices blocks every
//! left-right path iff it contains a top-bottom path in the **same**
//! adjacency. Combined with Menger's theorem this turns both flow values into
//! shortest-path quantities over the *same* random configuration:
//!
//! * `maxflow_LR(alive) = min over top-bottom paths π of #alive vertices on π`
//! * `maxflow_TB(alive) = min over left-right paths π of #alive vertices on π`
//!
//! (Weak direction: any TB path meets any LR path in a vertex, so the alive
//! vertices of a TB path form an LR cut; strong direction: a minimum LR vertex
//! cut, together with the dead vertices, contains a TB path because the
//! lattice is self-matching. [`min_crossing_cost`] lets the test suite pin
//! this identity against the Dinic max-flow in [`crate::maxflow`]
//! configuration by configuration.)
//!
//! # The interface state
//!
//! Shortest-path costs through a region interact with the outside *only*
//! through the region's boundary: the matrix of pairwise capped shortest-path
//! costs between boundary nodes is a sufficient statistic, no matter how
//! often an optimal path weaves in and out of the region. The sweep therefore
//! adds one cell at a time (column-major) and maintains, per state,
//!
//! * the capped all-pairs cost matrix over `{T, B, L} ∪ frontier` where `T`,
//!   `B`, `L` are virtual terminals for the top, bottom and left sides and
//!   the frontier holds one cell per row (the staircase between the processed
//!   and unprocessed cells), and
//! * the aliveness of the frontier cells.
//!
//! Costs count **alive interior vertices** (dead vertices are free for a
//! blocking path) and saturate at `k`: the events only ask whether a crossing
//! of cost `< k` exists, so every value `≥ k` is equivalent and the state
//! space collapses accordingly. Two states that agree on the capped matrix
//! and the frontier bits are merged, summing their probabilities.
//!
//! The number of reachable states still grows quickly with the side length —
//! the DP is exponential in `√n`, like every known exact method for crossing
//! probabilities — so the entry points take a state budget and return `None`
//! when it is exceeded. Within the budget (sides up to ~7–8 at practical
//! budgets) the result is exact to floating-point rounding, which extends
//! exact M-Path evaluation well past the `2^25` enumeration limit
//! (side 5): a side-7 grid has `2^49` configurations.

use std::collections::{HashMap, VecDeque};
use std::hash::BuildHasherDefault;

use crate::grid::{Axis, TriangulatedGrid};

/// Deterministically-seeded hashing for the state maps: with the std
/// `RandomState`, state iteration (and hence the f64 accumulation order)
/// would differ between processes, making DP results reproducible only up to
/// the last ulp. A fixed-key SipHash keeps every run bit-identical.
///
/// Each state carries one probability mass *per sweep point*: the reachable
/// state space and its transition structure depend only on `(side, k)` —
/// never on `p` — so a whole `p`-grid shares a single enumeration, paying
/// the hashing/packing cost once instead of once per point (the lanes are
/// independent, so each lane's accumulation order, and hence its bits,
/// matches a single-point sweep exactly). The map value is an index into a
/// flat `lanes`-strided mass arena rather than a per-state `Vec<f64>`, so
/// carrying lanes costs no extra heap allocation per state — in particular
/// the single-point path allocates exactly what it did before batching.
type StateMap = HashMap<Vec<u8>, usize, BuildHasherDefault<std::hash::DefaultHasher>>;

/// Default cap on the number of simultaneous interface states before the DP
/// gives up and returns `None`. 2 million states × ~100-byte keys keeps the
/// worst case in the hundreds of megabytes and well under a second per state
/// generation on commodity hardware.
pub const DEFAULT_DP_STATE_BUDGET: usize = 2_000_000;

/// Minimum alive-vertex count over all crossing paths of `axis` (dead
/// vertices cost nothing). By the self-matching duality this equals the
/// maximum number of vertex-disjoint alive crossings of the *perpendicular*
/// axis — the identity the tests pin against [`crate::maxflow`].
///
/// Implemented as a multi-source 0-1 BFS; the grid is connected, so a
/// crossing path (possibly through dead vertices) always exists.
#[must_use]
pub fn min_crossing_cost(grid: &TriangulatedGrid, alive: &[bool], axis: Axis) -> usize {
    let n = grid.num_vertices();
    assert_eq!(alive.len(), n, "alive mask must cover every vertex");
    let mut dist = vec![usize::MAX; n];
    let mut deque: VecDeque<usize> = VecDeque::new();
    for s in grid.sources(axis) {
        let c = usize::from(alive[s]);
        if c < dist[s] {
            dist[s] = c;
            if c == 0 {
                deque.push_front(s);
            } else {
                deque.push_back(s);
            }
        }
    }
    while let Some(v) = deque.pop_front() {
        for u in grid.neighbors(v) {
            let c = usize::from(alive[u]);
            let nd = dist[v] + c;
            if nd < dist[u] {
                dist[u] = nd;
                if c == 0 {
                    deque.push_front(u);
                } else {
                    deque.push_back(u);
                }
            }
        }
    }
    grid.sinks(axis)
        .into_iter()
        .map(|t| dist[t])
        .min()
        .expect("grid has at least one sink")
}

/// Outcome distribution of one DP sweep: the probabilities of the three
/// "blocked" events, from which both the joint M-Path crash probability and
/// single-direction crossing probabilities follow.
#[derive(Debug, Clone, Copy, PartialEq)]
struct SweepOutcome {
    /// `P[maxflow_LR < k or maxflow_TB < k]` — the M-Path crash probability.
    either_blocked: f64,
    /// `P[maxflow_LR < k]` alone.
    lr_blocked: f64,
}

/// Exact M-Path crash probability: the probability that the grid does **not**
/// contain `k` vertex-disjoint alive left-right crossings and `k`
/// vertex-disjoint alive top-bottom crossings simultaneously, when every
/// vertex crashes independently with probability `p`.
///
/// Returns `None` when the interface-state count exceeds `max_states`
/// (the DP is exponential in `side`; see the module docs), when `side == 0`,
/// or when `k` is not in `1..=side` (with `k > side` no configuration has
/// `k` disjoint crossings, so the crash probability is trivially 1 — callers
/// should not need a sweep for that).
#[must_use]
pub fn mpath_crash_probability_exact(
    side: usize,
    k: usize,
    p: f64,
    max_states: usize,
) -> Option<f64> {
    run_sweep_grid(side, k, &[p], max_states).map(|o| o[0].either_blocked)
}

/// [`mpath_crash_probability_exact`] over a whole `p`-grid in **one** sweep:
/// the interface-state enumeration and transition structure depend only on
/// `(side, k)`, so all points share them and each extra point costs a few
/// multiply-adds per transition instead of a full re-enumeration. Results
/// are bit-identical to evaluating each point on its own.
///
/// Returns `None` under the same conditions as the single-point form.
#[must_use]
pub fn mpath_crash_probability_exact_grid(
    side: usize,
    k: usize,
    ps: &[f64],
    max_states: usize,
) -> Option<Vec<f64>> {
    run_sweep_grid(side, k, ps, max_states)
        .map(|outcomes| outcomes.iter().map(|o| o.either_blocked).collect())
}

/// Exact probability of an alive crossing along `axis` (`k = 1` flow event)
/// when every vertex crashes independently with probability `p`. By the
/// square grid's transpose symmetry the two axes give the same value; the
/// parameter exists for call-site clarity.
///
/// Returns `None` under the same conditions as
/// [`mpath_crash_probability_exact`].
#[must_use]
pub fn crossing_probability_exact(
    side: usize,
    p: f64,
    _axis: Axis,
    max_states: usize,
) -> Option<f64> {
    run_sweep_grid(side, 1, &[p], max_states).map(|o| 1.0 - o[0].lr_blocked)
}

/// [`crossing_probability_exact`] over a whole `p`-grid in one shared sweep
/// (see [`mpath_crash_probability_exact_grid`]).
#[must_use]
pub fn crossing_probability_exact_grid(
    side: usize,
    ps: &[f64],
    _axis: Axis,
    max_states: usize,
) -> Option<Vec<f64>> {
    run_sweep_grid(side, 1, ps, max_states)
        .map(|outcomes| outcomes.iter().map(|o| 1.0 - o.lr_blocked).collect())
}

/// Node layout of the interface matrix: three virtual terminals, then one
/// frontier slot per row.
const T: usize = 0;
const B: usize = 1;
const L: usize = 2;
const CELLS: usize = 3;

/// The interface matrix plus frontier aliveness, in unpacked working form.
#[derive(Clone)]
struct State {
    /// Full symmetric `n_nodes × n_nodes` capped cost matrix (diagonal 0).
    d: Vec<u8>,
    /// Bit `r` set iff the frontier cell of row `r` is alive.
    alive: u32,
}

fn run_sweep_grid(
    side: usize,
    k: usize,
    ps: &[f64],
    max_states: usize,
) -> Option<Vec<SweepOutcome>> {
    if side == 0 || k == 0 || k > side || side > 31 {
        return None;
    }
    // Boundary points are analytic (p = 0: the fully alive grid has `k ≤
    // side` disjoint straight crossings both ways; p = 1: nothing is alive),
    // and excluding them keeps every swept transition's weight non-zero for
    // every lane — so the reachable state set, its iteration order, and
    // hence each lane's bit pattern are identical whether the lane runs
    // alone or in a grid.
    let clamped: Vec<f64> = ps.iter().map(|&p| p.clamp(0.0, 1.0)).collect();
    let interior: Vec<f64> = clamped
        .iter()
        .copied()
        .filter(|&p| p > 0.0 && p < 1.0)
        .collect();
    let swept = if interior.is_empty() {
        Vec::new()
    } else {
        sweep_interior(side, k, &interior, max_states)?
    };
    let mut swept_iter = swept.into_iter();
    Some(
        clamped
            .iter()
            .map(|&p| {
                if p.is_nan() {
                    // Garbage in, garbage out — but never a panic (matching
                    // the historical single-point behaviour, where a NaN `p`
                    // produced NaN weights throughout the sweep).
                    SweepOutcome {
                        either_blocked: f64::NAN,
                        lr_blocked: f64::NAN,
                    }
                } else if p <= 0.0 {
                    SweepOutcome {
                        either_blocked: 0.0,
                        lr_blocked: 0.0,
                    }
                } else if p >= 1.0 {
                    SweepOutcome {
                        either_blocked: 1.0,
                        lr_blocked: 1.0,
                    }
                } else {
                    swept_iter.next().expect("one swept outcome per interior p")
                }
            })
            .collect(),
    )
}

/// The shared column sweep over interior points (`0 < p < 1` each): one
/// state enumeration, `ps.len()` probability lanes.
fn sweep_interior(
    side: usize,
    k: usize,
    ps: &[f64],
    max_states: usize,
) -> Option<Vec<SweepOutcome>> {
    let kcap = u8::try_from(k).ok()?;
    let lanes = ps.len();
    let n_nodes = CELLS + side;
    let initial = State {
        // No region yet: every pair is "unreachable", which the cap folds
        // into the same class as "cost >= k".
        d: init_matrix(n_nodes, kcap),
        alive: 0,
    };
    let mut states = StateMap::default();
    let mut masses: Vec<f64> = vec![1.0; lanes];
    states.insert(pack(&initial, n_nodes), 0);

    // Reusable scratch for the unpacked base state, the mutated successor and
    // its packed key: the innermost loop runs (states × cells) times and must
    // not allocate per transition.
    let mut base = State {
        d: vec![0; n_nodes * n_nodes],
        alive: 0,
    };
    let mut scratch = base.clone();
    let mut keybuf: Vec<u8> = Vec::with_capacity(n_nodes * (n_nodes - 1) / 2 + 4);
    let mut newrow = vec![0u8; n_nodes];
    let mut massbuf: Vec<f64> = vec![0.0; lanes];
    for col in 0..side {
        for row in 0..side {
            let mut next =
                StateMap::with_capacity_and_hasher(states.len().saturating_mul(2), <_>::default());
            let mut next_masses: Vec<f64> = Vec::with_capacity(masses.len().saturating_mul(2));
            for (key, &mass_idx) in &states {
                let mass = &masses[mass_idx * lanes..(mass_idx + 1) * lanes];
                unpack_into(key, n_nodes, &mut base);
                for cell_alive in [false, true] {
                    scratch.d.copy_from_slice(&base.d);
                    scratch.alive = base.alive;
                    add_cell(&mut scratch, side, kcap, row, col, cell_alive, &mut newrow);
                    pack_into(&scratch, n_nodes, &mut keybuf);
                    for ((mb, &m), &p) in massbuf.iter_mut().zip(mass).zip(ps) {
                        let weight = if cell_alive { 1.0 - p } else { p };
                        *mb = m * weight;
                    }
                    // Only a first-seen successor pays a key allocation; its
                    // masses go into the flat arena.
                    if let Some(&idx) = next.get(keybuf.as_slice()) {
                        for (a, &mb) in next_masses[idx * lanes..].iter_mut().zip(&massbuf) {
                            *a += mb;
                        }
                    } else {
                        next.insert(keybuf.clone(), next_masses.len() / lanes);
                        next_masses.extend_from_slice(&massbuf);
                    }
                }
            }
            if next.len() > max_states {
                return None;
            }
            states = next;
            masses = next_masses;
        }
    }

    let mut either_blocked = vec![0.0; lanes];
    let mut lr_blocked = vec![0.0; lanes];
    for (key, &mass_idx) in &states {
        let mass = &masses[mass_idx * lanes..(mass_idx + 1) * lanes];
        unpack_into(key, n_nodes, &mut base);
        let st = &base;
        // Self-matching duality: maxflow_LR = min TB-path cost, maxflow_TB =
        // min LR-path cost. The final frontier is exactly the right column,
        // where LR blocking paths terminate (paying their own aliveness).
        let min_tb_cost = st.d[T * n_nodes + B];
        let min_lr_cost = (0..side)
            .map(|r| st.d[L * n_nodes + CELLS + r].saturating_add((st.alive >> r & 1) as u8))
            .min()
            .unwrap_or(kcap)
            .min(kcap);
        if min_tb_cost < kcap {
            for (acc, &m) in lr_blocked.iter_mut().zip(mass) {
                *acc += m;
            }
        }
        if min_tb_cost < kcap || min_lr_cost < kcap {
            for (acc, &m) in either_blocked.iter_mut().zip(mass) {
                *acc += m;
            }
        }
    }
    Some(
        either_blocked
            .into_iter()
            .zip(lr_blocked)
            .map(|(e, l)| SweepOutcome {
                either_blocked: e.clamp(0.0, 1.0),
                lr_blocked: l.clamp(0.0, 1.0),
            })
            .collect(),
    )
}

fn init_matrix(n_nodes: usize, kcap: u8) -> Vec<u8> {
    let mut d = vec![kcap; n_nodes * n_nodes];
    for i in 0..n_nodes {
        d[i * n_nodes + i] = 0;
    }
    d
}

/// Packs the upper triangle of the (symmetric) matrix plus the frontier bits
/// into a canonical hash key.
fn pack(state: &State, n_nodes: usize) -> Vec<u8> {
    let mut key = Vec::with_capacity(n_nodes * (n_nodes - 1) / 2 + 4);
    pack_into(state, n_nodes, &mut key);
    key
}

/// [`pack`] into a reused buffer (cleared first) — the hot-loop variant.
fn pack_into(state: &State, n_nodes: usize, key: &mut Vec<u8>) {
    key.clear();
    for i in 0..n_nodes {
        for j in (i + 1)..n_nodes {
            key.push(state.d[i * n_nodes + j]);
        }
    }
    key.extend_from_slice(&state.alive.to_le_bytes());
}

/// Rehydrates a packed key into a reused full-matrix `State`.
fn unpack_into(key: &[u8], n_nodes: usize, out: &mut State) {
    let mut pos = 0;
    for i in 0..n_nodes {
        out.d[i * n_nodes + i] = 0;
        for j in (i + 1)..n_nodes {
            out.d[i * n_nodes + j] = key[pos];
            out.d[j * n_nodes + i] = key[pos];
            pos += 1;
        }
    }
    out.alive = u32::from_le_bytes(key[pos..pos + 4].try_into().expect("key length"));
}

/// Extends the region by cell `(row, col)`, replacing the frontier slot of
/// `row` (which held `(row, col - 1)`, about to lose its last unprocessed
/// neighbour) and restoring the capped metric closure.
///
/// Costs are *interior*: an entry excludes both endpoints' aliveness, which
/// lets segments be concatenated by adding the junction vertex's cost once.
/// Terminals are virtual (cost 0, endpoints only): they are never used as
/// intermediates, so a path cannot "teleport" along the top row through `T`.
/// `newrow` is caller-provided scratch of length `n_nodes` (the hot loop must
/// not allocate per transition); its contents on entry are irrelevant.
#[allow(clippy::too_many_arguments)]
fn add_cell(
    state: &mut State,
    side: usize,
    kcap: u8,
    row: usize,
    col: usize,
    cell_alive: bool,
    newrow: &mut [u8],
) {
    let n_nodes = CELLS + side;
    let v = CELLS + row;
    let d = &mut state.d;

    // Region nodes adjacent to the new cell. In column-major insertion order
    // the triangulated grid's neighbours of (row, col) inside the region are
    // (row-1, col) [this column, vertical], (row, col-1) [previous column,
    // horizontal — currently in slot `row`], and (row+1, col-1) [previous
    // column, anti-diagonal].
    let mut adj_cells: [usize; 3] = [usize::MAX; 3];
    let mut n_adj = 0;
    if row > 0 {
        adj_cells[n_adj] = CELLS + row - 1;
        n_adj += 1;
    }
    if col > 0 {
        adj_cells[n_adj] = CELLS + row; // (row, col-1): the slot being replaced
        n_adj += 1;
        if row + 1 < side {
            adj_cells[n_adj] = CELLS + row + 1;
            n_adj += 1;
        }
    }

    // New row of the matrix: shortest interior costs from v to every node,
    // before v replaces the old slot content.
    newrow.fill(kcap);
    newrow[v] = 0;
    for &a in &adj_cells[..n_adj] {
        newrow[a] = 0;
        let ca = (state.alive >> (a - CELLS) & 1) as u8;
        for x in 0..n_nodes {
            let via = ca.saturating_add(d[a * n_nodes + x]).min(kcap);
            if via < newrow[x] {
                newrow[x] = via;
            }
        }
    }
    // Virtual terminals adjacent to v (endpoints only — no composition
    // through them).
    if row == 0 {
        newrow[T] = 0;
    }
    if row == side - 1 {
        newrow[B] = 0;
    }
    if col == 0 {
        newrow[L] = 0;
    }
    newrow[v] = 0;

    for x in 0..n_nodes {
        d[v * n_nodes + x] = newrow[x];
        d[x * n_nodes + v] = newrow[x];
    }
    if cell_alive {
        state.alive |= 1 << row;
    } else {
        state.alive &= !(1 << row);
    }

    // Single-pivot closure update: with non-negative costs a shortest walk
    // uses the one new vertex at most once.
    let cv = u8::from(cell_alive);
    for i in 0..n_nodes {
        if i == v {
            continue;
        }
        let div = d[i * n_nodes + v];
        if div >= kcap {
            continue;
        }
        let through = div.saturating_add(cv);
        for j in 0..n_nodes {
            let cand = through.saturating_add(d[v * n_nodes + j]).min(kcap);
            if cand < d[i * n_nodes + j] {
                d[i * n_nodes + j] = cand;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::maxflow::max_vertex_disjoint_paths;
    use crate::percolation::PercolationEstimator;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// The load-bearing identity: on the self-matching triangulated grid the
    /// max number of vertex-disjoint alive crossings equals the min number of
    /// alive vertices on a blocking path of the perpendicular direction.
    /// Exhaustive on side 3 (512 configurations), randomized on sides 5–7.
    #[test]
    fn duality_matches_maxflow_exhaustively_side_3() {
        let g = TriangulatedGrid::new(3);
        for mask in 0u32..(1 << 9) {
            let alive: Vec<bool> = (0..9).map(|i| mask >> i & 1 == 1).collect();
            let flow_lr = max_vertex_disjoint_paths(&g, &alive, Axis::LeftRight);
            let flow_tb = max_vertex_disjoint_paths(&g, &alive, Axis::TopBottom);
            assert_eq!(
                flow_lr,
                min_crossing_cost(&g, &alive, Axis::TopBottom),
                "mask={mask:#b}"
            );
            assert_eq!(
                flow_tb,
                min_crossing_cost(&g, &alive, Axis::LeftRight),
                "mask={mask:#b}"
            );
        }
    }

    #[test]
    fn duality_matches_maxflow_randomized_larger_sides() {
        let mut rng = StdRng::seed_from_u64(41);
        for side in [4usize, 5, 6, 7] {
            let g = TriangulatedGrid::new(side);
            for _ in 0..60 {
                let p: f64 = 0.1 + 0.8 * rng.gen::<f64>();
                let alive: Vec<bool> = (0..g.num_vertices())
                    .map(|_| rng.gen::<f64>() >= p)
                    .collect();
                assert_eq!(
                    max_vertex_disjoint_paths(&g, &alive, Axis::LeftRight),
                    min_crossing_cost(&g, &alive, Axis::TopBottom),
                    "side={side}"
                );
                assert_eq!(
                    max_vertex_disjoint_paths(&g, &alive, Axis::TopBottom),
                    min_crossing_cost(&g, &alive, Axis::LeftRight),
                    "side={side}"
                );
            }
        }
    }

    /// Brute-force reference: joint crash probability by summing over all
    /// `2^n` configurations with max-flow availability checks.
    fn brute_force_crash_probability(side: usize, k: usize, p: f64) -> f64 {
        let g = TriangulatedGrid::new(side);
        let n = g.num_vertices();
        let mut total = 0.0;
        for mask in 0u64..(1 << n) {
            let alive: Vec<bool> = (0..n).map(|i| mask >> i & 1 == 1).collect();
            let ok = max_vertex_disjoint_paths(&g, &alive, Axis::LeftRight) >= k
                && max_vertex_disjoint_paths(&g, &alive, Axis::TopBottom) >= k;
            if !ok {
                let a = mask.count_ones() as i32;
                total += (1.0 - p).powi(a) * p.powi(n as i32 - a);
            }
        }
        total
    }

    #[test]
    fn dp_matches_brute_force_on_small_grids() {
        for side in [1usize, 2, 3] {
            for k in 1..=side {
                for &p in &[0.0, 0.1, 0.33, 0.5, 0.77, 1.0] {
                    let dp = mpath_crash_probability_exact(side, k, p, 1 << 22).unwrap();
                    let brute = brute_force_crash_probability(side, k, p);
                    assert!(
                        (dp - brute).abs() < 1e-12,
                        "side={side} k={k} p={p}: dp {dp} vs brute {brute}"
                    );
                }
            }
        }
    }

    #[test]
    fn dp_matches_brute_force_side_4() {
        // 2^16 max-flow evaluations per (k, p) point: keep the grid of points
        // small but cover every k the M-Path construction can ask for.
        for k in [1usize, 2, 3] {
            for &p in &[0.125, 0.4] {
                let dp = mpath_crash_probability_exact(4, k, p, 1 << 22).unwrap();
                let brute = brute_force_crash_probability(4, k, p);
                assert!(
                    (dp - brute).abs() < 1e-12,
                    "k={k} p={p}: dp {dp} vs brute {brute}"
                );
            }
        }
    }

    #[test]
    fn grid_sweep_is_bit_identical_to_single_points() {
        // The whole point of the shared sweep: each lane's accumulation
        // order matches a solo run, so the results agree to the last bit —
        // including grids that mix interior points with the analytic 0/1
        // endpoints.
        let ps = [0.0, 0.05, 0.125, 0.3, 0.5, 0.77, 1.0];
        for (side, k) in [(3usize, 1usize), (4, 2), (5, 3)] {
            let grid = mpath_crash_probability_exact_grid(side, k, &ps, 1 << 22).unwrap();
            for (&p, &g) in ps.iter().zip(&grid) {
                let single = mpath_crash_probability_exact(side, k, p, 1 << 22).unwrap();
                assert_eq!(
                    g.to_bits(),
                    single.to_bits(),
                    "side={side} k={k} p={p}: grid {g} vs single {single}"
                );
            }
            let crossing_grid =
                crossing_probability_exact_grid(side, &ps, Axis::LeftRight, 1 << 22).unwrap();
            for (&p, &g) in ps.iter().zip(&crossing_grid) {
                let single = crossing_probability_exact(side, p, Axis::LeftRight, 1 << 22).unwrap();
                assert_eq!(g.to_bits(), single.to_bits(), "side={side} p={p}");
            }
        }
    }

    #[test]
    fn grid_sweep_handles_empty_and_boundary_only_grids() {
        assert_eq!(
            mpath_crash_probability_exact_grid(4, 2, &[], 1 << 20).unwrap(),
            Vec::<f64>::new()
        );
        assert_eq!(
            mpath_crash_probability_exact_grid(4, 2, &[0.0, 1.0], 1 << 20).unwrap(),
            vec![0.0, 1.0]
        );
        // A NaN point propagates as NaN (no panic) without disturbing the
        // other lanes.
        let mixed = mpath_crash_probability_exact_grid(4, 2, &[0.25, f64::NAN], 1 << 20).unwrap();
        assert!(mixed[0].is_finite());
        assert!(mixed[1].is_nan());
        assert!(mpath_crash_probability_exact(4, 2, f64::NAN, 1 << 20)
            .unwrap()
            .is_nan());
    }

    #[test]
    fn dp_extremes_and_monotonicity() {
        for side in [3usize, 5] {
            for k in [1usize, 2] {
                assert_eq!(
                    mpath_crash_probability_exact(side, k, 0.0, 1 << 22).unwrap(),
                    0.0
                );
                assert_eq!(
                    mpath_crash_probability_exact(side, k, 1.0, 1 << 22).unwrap(),
                    1.0
                );
                let mut prev = 0.0;
                for i in 0..=10 {
                    let p = f64::from(i) / 10.0;
                    let fp = mpath_crash_probability_exact(side, k, p, 1 << 22).unwrap();
                    assert!(fp >= prev - 1e-12, "side={side} k={k} p={p}");
                    prev = fp;
                }
            }
        }
    }

    #[test]
    fn crossing_probability_matches_monte_carlo() {
        let est = PercolationEstimator::new(6);
        let mut rng = StdRng::seed_from_u64(9);
        for &p in &[0.15, 0.5, 0.8] {
            let exact = crossing_probability_exact(6, p, Axis::LeftRight, 1 << 22).unwrap();
            let mc = est.estimate_crossing_probability(p, Axis::LeftRight, 2000, &mut rng);
            assert!(
                (exact - mc.mean).abs() <= mc.ci95_half_width() + 0.02,
                "p={p}: exact {exact} vs mc {} ± {}",
                mc.mean,
                mc.ci95_half_width()
            );
        }
    }

    #[test]
    fn crossing_probability_is_self_dual_at_one_half() {
        // Site percolation on the triangular lattice is self-dual: an alive
        // LR crossing exists iff no dead TB crossing does, so at p = 1/2 the
        // crossing probability is exactly 1/2 on a square patch.
        for side in [2usize, 4, 6] {
            let c = crossing_probability_exact(side, 0.5, Axis::LeftRight, 1 << 22).unwrap();
            assert!((c - 0.5).abs() < 1e-12, "side={side}: {c}");
        }
    }

    #[test]
    #[ignore = "state-space probe for tuning the dispatch gate; run with --ignored --nocapture"]
    fn probe_state_growth() {
        for side in 5..=10usize {
            for k in [2usize, 3, 4] {
                if k > side {
                    continue;
                }
                let start = std::time::Instant::now();
                let fp = mpath_crash_probability_exact(side, k, 0.125, 8_000_000);
                println!(
                    "side={side} k={k}: fp={fp:?} in {:.3}s",
                    start.elapsed().as_secs_f64()
                );
            }
        }
    }

    #[test]
    #[ignore = "k=1 state-space probe for the crossing-curve gate; run with --ignored --nocapture"]
    fn probe_state_growth_k1() {
        for side in [6usize, 8, 10, 12] {
            let start = std::time::Instant::now();
            let c = crossing_probability_exact(side, 0.125, Axis::LeftRight, 4_000_000);
            println!(
                "side={side}: P(cross)={c:?} in {:.3}s",
                start.elapsed().as_secs_f64()
            );
        }
    }

    #[test]
    fn invalid_parameters_and_budget_give_none() {
        assert!(mpath_crash_probability_exact(0, 1, 0.1, 1 << 20).is_none());
        assert!(mpath_crash_probability_exact(4, 0, 0.1, 1 << 20).is_none());
        assert!(mpath_crash_probability_exact(4, 5, 0.1, 1 << 20).is_none());
        // A budget of 1 state cannot hold the distribution at p in (0, 1).
        assert!(mpath_crash_probability_exact(5, 2, 0.3, 1).is_none());
    }
}
