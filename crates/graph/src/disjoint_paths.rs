//! Extraction of explicit vertex-disjoint crossing paths from a max-flow solution.
//!
//! The max-flow value tells us *how many* disjoint crossings exist; M-Path quorum
//! construction also needs the actual vertex sets, so that a quorum (a union of
//! `√(2b+1)` LR paths and `√(2b+1)` TB paths) can be materialised and handed to the
//! replicated-data protocol layer.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::grid::{Axis, TriangulatedGrid};
use crate::maxflow::build_disjoint_path_network;

/// The minimum total vertex price of a single crossing path along `axis`,
/// by Dijkstra over the priced triangulated lattice (prices must be
/// non-negative; a path pays every vertex it visits, endpoints included).
///
/// This is the load-engine counterpart of
/// [`crate::crossing_dp::min_crossing_cost`] with real-valued prices instead
/// of alive-counts: `k` vertex-disjoint crossings each cost at least this
/// much, so `k ·` this value lower-bounds the price of any M-Path quorum's
/// one-directional path system — the cross-check the M-Path pricing oracle
/// is validated against.
///
/// # Panics
///
/// Panics if `prices.len()` differs from the vertex count.
#[must_use]
pub fn min_price_crossing(grid: &TriangulatedGrid, prices: &[f64], axis: Axis) -> f64 {
    let n = grid.num_vertices();
    assert_eq!(prices.len(), n, "one price per vertex required");
    let mut dist = vec![f64::INFINITY; n];
    // BinaryHeap is a max-heap over the ordered bit pattern; Reverse of the
    // non-negative price's bits yields a min-heap (f64 bit order matches
    // numeric order for non-negative values).
    let mut heap: BinaryHeap<Reverse<(u64, usize)>> = BinaryHeap::new();
    for s in grid.sources(axis) {
        if prices[s] < dist[s] {
            dist[s] = prices[s];
            heap.push(Reverse((prices[s].to_bits(), s)));
        }
    }
    while let Some(Reverse((dbits, v))) = heap.pop() {
        let d = f64::from_bits(dbits);
        if d > dist[v] {
            continue;
        }
        for u in grid.neighbors(v) {
            let nd = d + prices[u];
            if nd < dist[u] {
                dist[u] = nd;
                heap.push(Reverse((nd.to_bits(), u)));
            }
        }
    }
    grid.sinks(axis)
        .into_iter()
        .map(|t| dist[t])
        .fold(f64::INFINITY, f64::min)
}

/// Finds up to `want` vertex-disjoint crossing paths along `axis` using only `alive`
/// vertices. Returns the extracted paths (each a vertex-index sequence from the
/// source side to the sink side). Fewer than `want` paths are returned when the grid
/// does not contain that many disjoint crossings.
#[must_use]
pub fn find_disjoint_paths(
    grid: &TriangulatedGrid,
    alive: &[bool],
    axis: Axis,
    want: usize,
) -> Vec<Vec<usize>> {
    let n = grid.num_vertices();
    let (mut net, source, sink) = build_disjoint_path_network(grid, alive, axis);
    let available = net.max_flow(source, sink) as usize;
    let count = available.min(want);
    if count == 0 {
        return Vec::new();
    }

    // Walk the flow decomposition: from each saturated source edge, follow unit flow
    // through the split graph until the sink.
    let flow = net.flow_edges();
    let mut used_flow: Vec<Vec<bool>> = flow.iter().map(|edges| vec![false; edges.len()]).collect();
    let mut paths = Vec::new();

    'outer: for (src_idx, &(first, _)) in flow[source].iter().enumerate() {
        if paths.len() == count {
            break;
        }
        if used_flow[source][src_idx] {
            continue;
        }
        used_flow[source][src_idx] = true;
        let mut path_vertices = Vec::new();
        let mut node = first; // an `in` node (2v)
        loop {
            if node == sink {
                break;
            }
            if node % 2 == 0 && node < 2 * n {
                path_vertices.push(node / 2);
            }
            // Follow an unused flow edge out of this node.
            let mut advanced = false;
            for (i, &(to, _)) in flow[node].iter().enumerate() {
                if !used_flow[node][i] {
                    used_flow[node][i] = true;
                    node = to;
                    advanced = true;
                    break;
                }
            }
            if !advanced {
                // Flow decomposition should never dead-end; skip defensively.
                continue 'outer;
            }
        }
        paths.push(path_vertices);
    }
    paths
}

/// Greedily selects `want` *straight* disjoint lines (rows for LR, columns for TB)
/// whose vertices are all alive. This is the access pattern of the optimal-load
/// strategy in Proposition 7.2; it is cheaper than max-flow but only succeeds when
/// enough fully-alive straight lines exist.
#[must_use]
pub fn find_straight_disjoint_paths(
    grid: &TriangulatedGrid,
    alive: &[bool],
    axis: Axis,
    want: usize,
) -> Vec<Vec<usize>> {
    let mut paths = Vec::new();
    for i in 0..grid.side() {
        if paths.len() == want {
            break;
        }
        let line = grid.straight_path(axis, i);
        if line.iter().all(|&v| alive[v]) {
            paths.push(line);
        }
    }
    paths
}

/// Checks that the given paths are pairwise vertex-disjoint valid crossings of `axis`.
#[must_use]
pub fn are_disjoint_crossings(grid: &TriangulatedGrid, axis: Axis, paths: &[Vec<usize>]) -> bool {
    let mut seen = vec![false; grid.num_vertices()];
    for p in paths {
        if !grid.is_crossing_path(axis, p) {
            return false;
        }
        for &v in p {
            if seen[v] {
                return false;
            }
            seen[v] = true;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn min_price_crossing_matches_straight_line_on_uniform_prices() {
        // Uniform prices: every crossing visits at least `side` vertices, and
        // the straight lines achieve exactly that.
        let g = TriangulatedGrid::new(6);
        let prices = vec![0.25; 36];
        for axis in [Axis::LeftRight, Axis::TopBottom] {
            let v = min_price_crossing(&g, &prices, axis);
            assert!((v - 6.0 * 0.25).abs() < 1e-12, "{axis:?}: {v}");
        }
    }

    #[test]
    fn min_price_crossing_takes_detours_around_expensive_cells() {
        // Make row 1 nearly free except its straight continuation: the
        // cheapest LR crossing must weave through the cheap cells.
        let g = TriangulatedGrid::new(4);
        let mut prices = vec![1.0; 16];
        for c in 0..4 {
            prices[g.index(1, c)] = 0.01;
        }
        prices[g.index(1, 2)] = 5.0; // block the middle of the cheap row
        let v = min_price_crossing(&g, &prices, Axis::LeftRight);
        // Cheap cells + one detour vertex beats both the straight cheap row
        // (0.03 + 5) and a fully expensive row (4.0).
        assert!(v < 4.0, "v={v}");
        assert!(v >= 0.03, "v={v}");
        // Lower-bounds the cheapest straight row by construction.
        let cheapest_row: f64 = (0..4)
            .map(|r| (0..4).map(|c| prices[g.index(r, c)]).sum::<f64>())
            .fold(f64::INFINITY, f64::min);
        assert!(v <= cheapest_row + 1e-12);
    }

    #[test]
    fn extracts_requested_number_on_full_grid() {
        let g = TriangulatedGrid::new(6);
        let alive = vec![true; g.num_vertices()];
        for want in [1usize, 2, 4, 6] {
            let paths = find_disjoint_paths(&g, &alive, Axis::LeftRight, want);
            assert_eq!(paths.len(), want);
            assert!(are_disjoint_crossings(&g, Axis::LeftRight, &paths));
        }
    }

    #[test]
    fn respects_availability_limit() {
        let g = TriangulatedGrid::new(4);
        let mut alive = vec![true; g.num_vertices()];
        // Kill two full rows: at most 2 disjoint LR crossings remain.
        for c in 0..4 {
            alive[g.index(1, c)] = false;
            alive[g.index(3, c)] = false;
        }
        let paths = find_disjoint_paths(&g, &alive, Axis::LeftRight, 4);
        assert_eq!(paths.len(), 2);
        assert!(are_disjoint_crossings(&g, Axis::LeftRight, &paths));
        for p in &paths {
            assert!(p.iter().all(|&v| alive[v]));
        }
    }

    #[test]
    fn returns_empty_when_no_crossing_exists() {
        let g = TriangulatedGrid::new(3);
        let mut alive = vec![true; g.num_vertices()];
        for r in 0..3 {
            alive[g.index(r, 1)] = false; // middle column dead severs LR
        }
        assert!(find_disjoint_paths(&g, &alive, Axis::LeftRight, 2).is_empty());
    }

    #[test]
    fn straight_paths_selected_when_alive() {
        let g = TriangulatedGrid::new(5);
        let mut alive = vec![true; g.num_vertices()];
        alive[g.index(2, 3)] = false; // row 2 unusable as a straight path
        let paths = find_straight_disjoint_paths(&g, &alive, Axis::LeftRight, 3);
        assert_eq!(paths.len(), 3);
        assert!(are_disjoint_crossings(&g, Axis::LeftRight, &paths));
        assert!(paths.iter().all(|p| !p.contains(&g.index(2, 3))));
    }

    #[test]
    fn straight_paths_fall_short_when_not_enough_lines() {
        let g = TriangulatedGrid::new(3);
        let mut alive = vec![true; g.num_vertices()];
        alive[g.index(0, 0)] = false;
        alive[g.index(1, 1)] = false;
        // Only row 2 remains fully alive.
        let paths = find_straight_disjoint_paths(&g, &alive, Axis::LeftRight, 3);
        assert_eq!(paths.len(), 1);
    }

    #[test]
    fn tb_paths_extracted_and_disjoint() {
        let g = TriangulatedGrid::new(5);
        let alive = vec![true; g.num_vertices()];
        let paths = find_disjoint_paths(&g, &alive, Axis::TopBottom, 3);
        assert_eq!(paths.len(), 3);
        assert!(are_disjoint_crossings(&g, Axis::TopBottom, &paths));
    }

    #[test]
    fn disjointness_checker_detects_overlap() {
        let g = TriangulatedGrid::new(3);
        let p0 = g.straight_path(Axis::LeftRight, 0);
        let overlapping = vec![p0.clone(), p0];
        assert!(!are_disjoint_crossings(&g, Axis::LeftRight, &overlapping));
    }
}
