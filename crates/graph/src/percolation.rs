//! Site percolation on the triangulated grid.
//!
//! Appendix B of the paper analyses M-Path availability via site percolation on the
//! triangular lattice (critical probability `p_c = 1/2` [Kes80]): when each vertex is
//! independently *closed* (crashed) with probability `p < 1/2`, long open crossings
//! exist with probability `1 − e^{−ψ(p)√n}` (Theorem B.1), and `r+1` disjoint
//! crossings exist with essentially the same behaviour (Theorem B.3).
//!
//! This module provides the Monte-Carlo estimators that reproduce those statements
//! numerically: the probability of an open left-right crossing, the probability of
//! `k` vertex-disjoint open crossings, and the crash probability of the M-Path quorum
//! system (no quorum alive ⇔ fewer than `√(2b+1)` disjoint open crossings in at least
//! one of the two directions).

use rand::Rng;

use crate::grid::{Axis, TriangulatedGrid};
use crate::maxflow::max_vertex_disjoint_paths;
use crate::union_find::UnionFind;

/// Monte-Carlo estimate together with its sampling error.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Estimate {
    /// Point estimate of the probability.
    pub mean: f64,
    /// Standard error of the estimate (binomial).
    pub std_error: f64,
    /// Number of Monte-Carlo trials.
    pub trials: usize,
}

impl Estimate {
    /// Half-width of the 95% normal-approximation confidence interval.
    #[must_use]
    pub fn ci95_half_width(&self) -> f64 {
        1.96 * self.std_error
    }

    fn from_successes(successes: usize, trials: usize) -> Self {
        let mean = successes as f64 / trials as f64;
        let std_error = (mean * (1.0 - mean) / trials as f64).sqrt();
        Estimate {
            mean,
            std_error,
            trials,
        }
    }
}

/// Monte-Carlo site-percolation estimator over a triangulated grid.
#[derive(Debug, Clone)]
pub struct PercolationEstimator {
    grid: TriangulatedGrid,
}

impl PercolationEstimator {
    /// Creates an estimator for a `side × side` triangulated grid.
    #[must_use]
    pub fn new(side: usize) -> Self {
        PercolationEstimator {
            grid: TriangulatedGrid::new(side),
        }
    }

    /// The underlying grid.
    #[must_use]
    pub fn grid(&self) -> &TriangulatedGrid {
        &self.grid
    }

    /// Samples an alive/crashed configuration: each vertex crashes independently with
    /// probability `p`.
    pub fn sample_alive<R: Rng + ?Sized>(&self, p: f64, rng: &mut R) -> Vec<bool> {
        (0..self.grid.num_vertices())
            .map(|_| rng.gen::<f64>() >= p)
            .collect()
    }

    /// Returns true if an open (all-alive) crossing along `axis` exists, using
    /// union-find connectivity (faster than max-flow when only existence matters).
    #[must_use]
    pub fn has_open_crossing(&self, alive: &[bool], axis: Axis) -> bool {
        let n = self.grid.num_vertices();
        // Two virtual nodes: n = source side, n+1 = sink side.
        let mut uf = UnionFind::new(n + 2);
        for v in 0..n {
            if !alive[v] {
                continue;
            }
            for u in self.grid.neighbors(v) {
                if u < v && alive[u] {
                    uf.union(u, v);
                }
            }
        }
        for s in self.grid.sources(axis) {
            if alive[s] {
                uf.union(n, s);
            }
        }
        for t in self.grid.sinks(axis) {
            if alive[t] {
                uf.union(n + 1, t);
            }
        }
        uf.connected(n, n + 1)
    }

    /// Estimates `P[an open crossing along `axis` exists]` when each vertex crashes
    /// independently with probability `p` (Theorem B.1 quantity).
    pub fn estimate_crossing_probability<R: Rng + ?Sized>(
        &self,
        p: f64,
        axis: Axis,
        trials: usize,
        rng: &mut R,
    ) -> Estimate {
        assert!(trials > 0, "at least one trial required");
        let mut successes = 0usize;
        for _ in 0..trials {
            let alive = self.sample_alive(p, rng);
            if self.has_open_crossing(&alive, axis) {
                successes += 1;
            }
        }
        Estimate::from_successes(successes, trials)
    }

    /// Estimates `P[at least k vertex-disjoint open crossings along `axis` exist]`
    /// (the `I_{k-1}(LR)` event of Theorem B.3).
    pub fn estimate_disjoint_crossings_probability<R: Rng + ?Sized>(
        &self,
        p: f64,
        axis: Axis,
        k: usize,
        trials: usize,
        rng: &mut R,
    ) -> Estimate {
        assert!(trials > 0, "at least one trial required");
        let mut successes = 0usize;
        for _ in 0..trials {
            let alive = self.sample_alive(p, rng);
            // Cheap necessary condition first: an open crossing must exist at all.
            if !self.has_open_crossing(&alive, axis) {
                continue;
            }
            if k <= 1 || max_vertex_disjoint_paths(&self.grid, &alive, axis) >= k {
                successes += 1;
            }
        }
        Estimate::from_successes(successes, trials)
    }

    /// Estimates the M-Path crash probability: the probability that the grid does
    /// *not* contain `k` disjoint open LR crossings and `k` disjoint open TB
    /// crossings simultaneously (i.e. no M-Path quorum of `k + k` paths survives).
    pub fn estimate_mpath_crash_probability<R: Rng + ?Sized>(
        &self,
        p: f64,
        k: usize,
        trials: usize,
        rng: &mut R,
    ) -> Estimate {
        assert!(trials > 0, "at least one trial required");
        let mut failures = 0usize;
        for _ in 0..trials {
            let alive = self.sample_alive(p, rng);
            let lr_ok = self.has_open_crossing(&alive, Axis::LeftRight)
                && (k <= 1 || max_vertex_disjoint_paths(&self.grid, &alive, Axis::LeftRight) >= k);
            if !lr_ok {
                failures += 1;
                continue;
            }
            let tb_ok = self.has_open_crossing(&alive, Axis::TopBottom)
                && (k <= 1 || max_vertex_disjoint_paths(&self.grid, &alive, Axis::TopBottom) >= k);
            if !tb_ok {
                failures += 1;
            }
        }
        Estimate::from_successes(failures, trials)
    }
}

/// The elementary counting-argument lower bound on the crossing probability from the
/// remark after Theorem B.1 (following Bazzi): for `p < 1/3`,
/// `P[LR] >= 1 − √n (3p)^{√n} / (1 − 3p)`.
///
/// Returns a value clamped to `[0, 1]`; for `p >= 1/3` the bound is vacuous (0).
#[must_use]
pub fn crossing_probability_lower_bound(side: usize, p: f64) -> f64 {
    if p >= 1.0 / 3.0 {
        return 0.0;
    }
    let s = side as f64;
    (1.0 - s * (3.0 * p).powf(s) / (1.0 - 3.0 * p)).clamp(0.0, 1.0)
}

/// The ACCFR inequality of Theorem B.3: given a lower bound `prob_at_p_prime` on
/// `P_{p'}[E]` for an increasing event `E`, returns the implied lower bound on
/// `P_p[I_r(E)]` for `p < p'`:
/// `1 − P_p[I_r(E)] <= ((1−p)/(p'−p))^r (1 − P_{p'}[E])`.
#[must_use]
pub fn interior_event_lower_bound(prob_at_p_prime: f64, p: f64, p_prime: f64, r: usize) -> f64 {
    assert!(p < p_prime && p_prime <= 1.0, "requires p < p' <= 1");
    let factor = ((1.0 - p) / (p_prime - p)).powi(r as i32);
    (1.0 - factor * (1.0 - prob_at_p_prime)).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn no_failures_always_crosses() {
        let est = PercolationEstimator::new(6);
        let alive = vec![true; 36];
        assert!(est.has_open_crossing(&alive, Axis::LeftRight));
        assert!(est.has_open_crossing(&alive, Axis::TopBottom));
    }

    #[test]
    fn all_failed_never_crosses() {
        let est = PercolationEstimator::new(4);
        let alive = vec![false; 16];
        assert!(!est.has_open_crossing(&alive, Axis::LeftRight));
        assert!(!est.has_open_crossing(&alive, Axis::TopBottom));
    }

    #[test]
    fn crossing_probability_extremes() {
        let est = PercolationEstimator::new(5);
        let mut rng = StdRng::seed_from_u64(7);
        let p0 = est.estimate_crossing_probability(0.0, Axis::LeftRight, 50, &mut rng);
        assert_eq!(p0.mean, 1.0);
        let p1 = est.estimate_crossing_probability(1.0, Axis::LeftRight, 50, &mut rng);
        assert_eq!(p1.mean, 0.0);
    }

    #[test]
    fn crossing_probability_decreases_in_p() {
        let est = PercolationEstimator::new(8);
        let mut rng = StdRng::seed_from_u64(42);
        let lo = est.estimate_crossing_probability(0.1, Axis::LeftRight, 400, &mut rng);
        let hi = est.estimate_crossing_probability(0.7, Axis::LeftRight, 400, &mut rng);
        assert!(lo.mean > hi.mean, "lo={} hi={}", lo.mean, hi.mean);
        // Sub-critical p=0.1 should essentially always cross on an 8x8 grid.
        assert!(lo.mean > 0.9);
        // Super-critical p=0.7 should essentially never cross.
        assert!(hi.mean < 0.2);
    }

    #[test]
    fn disjoint_crossings_need_more_than_one() {
        let est = PercolationEstimator::new(6);
        let mut rng = StdRng::seed_from_u64(3);
        let one =
            est.estimate_disjoint_crossings_probability(0.15, Axis::LeftRight, 1, 300, &mut rng);
        let three =
            est.estimate_disjoint_crossings_probability(0.15, Axis::LeftRight, 3, 300, &mut rng);
        assert!(one.mean >= three.mean - 1e-12);
    }

    #[test]
    fn mpath_crash_probability_low_when_p_small() {
        let est = PercolationEstimator::new(8);
        let mut rng = StdRng::seed_from_u64(11);
        let fp = est.estimate_mpath_crash_probability(0.05, 2, 300, &mut rng);
        assert!(fp.mean < 0.2, "Fp={}", fp.mean);
        let fp_high = est.estimate_mpath_crash_probability(0.6, 2, 300, &mut rng);
        assert!(fp_high.mean > 0.8, "Fp={}", fp_high.mean);
    }

    #[test]
    fn estimate_confidence_interval_sane() {
        let e = Estimate::from_successes(50, 100);
        assert!((e.mean - 0.5).abs() < 1e-12);
        assert!((e.std_error - 0.05).abs() < 1e-12);
        assert!((e.ci95_half_width() - 0.098).abs() < 1e-3);
    }

    #[test]
    fn counting_bound_behaviour() {
        // Vacuous above 1/3, approaches 1 for small p and large grids.
        assert_eq!(crossing_probability_lower_bound(10, 0.4), 0.0);
        assert!(crossing_probability_lower_bound(32, 0.05) > 0.99);
        assert!(
            crossing_probability_lower_bound(4, 0.3) < crossing_probability_lower_bound(4, 0.01)
        );
    }

    #[test]
    fn interior_event_bound_monotone_in_r() {
        // More required disjoint paths -> weaker bound.
        let base = 0.999;
        let b1 = interior_event_lower_bound(base, 0.1, 0.2, 1);
        let b3 = interior_event_lower_bound(base, 0.1, 0.2, 3);
        assert!(b1 >= b3);
    }

    #[test]
    #[should_panic(expected = "requires p < p'")]
    fn interior_event_bound_validates_inputs() {
        let _ = interior_event_lower_bound(0.9, 0.3, 0.2, 2);
    }

    #[test]
    fn monte_carlo_matches_counting_bound_direction() {
        // The analytic lower bound must indeed lie below the Monte-Carlo estimate.
        let est = PercolationEstimator::new(7);
        let mut rng = StdRng::seed_from_u64(99);
        let p = 0.1;
        let mc = est.estimate_crossing_probability(p, Axis::LeftRight, 400, &mut rng);
        let bound = crossing_probability_lower_bound(7, p);
        assert!(
            mc.mean + mc.ci95_half_width() >= bound,
            "mc={} bound={bound}",
            mc.mean
        );
    }
}
