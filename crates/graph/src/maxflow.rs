//! Dinic's max-flow and vertex-disjoint path counting.
//!
//! By Menger's theorem, the maximum number of vertex-disjoint paths between two
//! vertex sets equals the max flow of the unit-capacity network obtained by splitting
//! each vertex `v` into `v_in → v_out` with capacity 1. This is how the library
//! verifies M-Path quorums (a candidate set must contain `√(2b+1)` disjoint LR paths
//! and as many TB paths) and how the percolation estimator counts open crossings.

use crate::grid::{Axis, TriangulatedGrid};

/// A directed edge in the flow network.
#[derive(Debug, Clone)]
struct FlowEdge {
    to: usize,
    cap: i64,
    /// Capacity the edge was created with (0 for residual reverse edges).
    original_cap: i64,
    /// Index of the reverse edge in `graph[to]`.
    rev: usize,
}

/// A unit/integer-capacity flow network solved with Dinic's algorithm.
#[derive(Debug, Clone, Default)]
pub struct FlowNetwork {
    graph: Vec<Vec<FlowEdge>>,
}

impl FlowNetwork {
    /// Creates a network with `n` nodes and no edges.
    #[must_use]
    pub fn new(n: usize) -> Self {
        FlowNetwork {
            graph: vec![Vec::new(); n],
        }
    }

    /// Number of nodes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.graph.len()
    }

    /// Returns true if the network has no nodes.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.graph.is_empty()
    }

    /// Adds a directed edge `from → to` with the given capacity (and a zero-capacity
    /// reverse edge).
    ///
    /// # Panics
    ///
    /// Panics if either endpoint is out of range.
    pub fn add_edge(&mut self, from: usize, to: usize, cap: i64) {
        assert!(from < self.graph.len() && to < self.graph.len());
        let rev_from = self.graph[to].len();
        let rev_to = self.graph[from].len();
        self.graph[from].push(FlowEdge {
            to,
            cap,
            original_cap: cap,
            rev: rev_from,
        });
        self.graph[to].push(FlowEdge {
            to: from,
            cap: 0,
            original_cap: 0,
            rev: rev_to,
        });
    }

    /// Computes the maximum flow from `source` to `sink` (Dinic's algorithm).
    pub fn max_flow(&mut self, source: usize, sink: usize) -> i64 {
        let n = self.graph.len();
        let mut flow = 0i64;
        loop {
            // BFS to build the level graph.
            let mut level = vec![usize::MAX; n];
            level[source] = 0;
            let mut queue = std::collections::VecDeque::new();
            queue.push_back(source);
            while let Some(v) = queue.pop_front() {
                for e in &self.graph[v] {
                    if e.cap > 0 && level[e.to] == usize::MAX {
                        level[e.to] = level[v] + 1;
                        queue.push_back(e.to);
                    }
                }
            }
            if level[sink] == usize::MAX {
                return flow;
            }
            // DFS blocking flow.
            let mut iter = vec![0usize; n];
            loop {
                let f = self.dfs(source, sink, i64::MAX, &level, &mut iter);
                if f == 0 {
                    break;
                }
                flow += f;
            }
        }
    }

    fn dfs(
        &mut self,
        v: usize,
        sink: usize,
        pushed: i64,
        level: &[usize],
        iter: &mut [usize],
    ) -> i64 {
        if v == sink {
            return pushed;
        }
        while iter[v] < self.graph[v].len() {
            let (to, cap, rev) = {
                let e = &self.graph[v][iter[v]];
                (e.to, e.cap, e.rev)
            };
            if cap > 0 && level[v] + 1 == level[to] {
                let d = self.dfs(to, sink, pushed.min(cap), level, iter);
                if d > 0 {
                    self.graph[v][iter[v]].cap -= d;
                    self.graph[to][rev].cap += d;
                    return d;
                }
            }
            iter[v] += 1;
        }
        0
    }

    /// Returns, for each node, the outgoing edges with positive flow (i.e. edges whose
    /// residual reverse capacity is positive). Used by path extraction.
    #[must_use]
    pub fn flow_edges(&self) -> Vec<Vec<(usize, i64)>> {
        let mut out = vec![Vec::new(); self.graph.len()];
        for (v, edges) in self.graph.iter().enumerate() {
            for e in edges {
                // Only original (forward) edges carry flow; the flow they carry is the
                // capacity consumed so far.
                let flow_on_edge = e.original_cap - e.cap;
                if e.original_cap > 0 && flow_on_edge > 0 {
                    out[v].push((e.to, flow_on_edge));
                }
            }
        }
        out
    }
}

/// Builds the node-split flow network for vertex-disjoint crossings of `grid` along
/// `axis`, restricted to the `alive` vertices, and returns `(network, source, sink)`.
///
/// Node `v` becomes `v_in = 2v`, `v_out = 2v + 1` with capacity-1 internal edge; the
/// super-source is `2n` and super-sink `2n + 1`.
#[must_use]
pub fn build_disjoint_path_network(
    grid: &TriangulatedGrid,
    alive: &[bool],
    axis: Axis,
) -> (FlowNetwork, usize, usize) {
    let n = grid.num_vertices();
    assert_eq!(alive.len(), n, "alive mask must cover every vertex");
    let source = 2 * n;
    let sink = 2 * n + 1;
    let mut net = FlowNetwork::new(2 * n + 2);
    for (v, &ok) in alive.iter().enumerate() {
        if ok {
            net.add_edge(2 * v, 2 * v + 1, 1);
        }
    }
    for v in 0..n {
        if !alive[v] {
            continue;
        }
        for u in grid.neighbors(v) {
            if alive[u] {
                // Undirected adjacency: allow flow in both directions between the
                // split nodes.
                net.add_edge(2 * v + 1, 2 * u, 1);
            }
        }
    }
    for s in grid.sources(axis) {
        if alive[s] {
            net.add_edge(source, 2 * s, 1);
        }
    }
    for t in grid.sinks(axis) {
        if alive[t] {
            net.add_edge(2 * t + 1, sink, 1);
        }
    }
    (net, source, sink)
}

/// Maximum number of vertex-disjoint crossings of `grid` along `axis` using only the
/// `alive` vertices.
#[must_use]
pub fn max_vertex_disjoint_paths(grid: &TriangulatedGrid, alive: &[bool], axis: Axis) -> usize {
    let (mut net, source, sink) = build_disjoint_path_network(grid, alive, axis);
    net.max_flow(source, sink) as usize
}

/// Maximum number of vertex-disjoint left-right crossings (convenience wrapper).
#[must_use]
pub fn max_vertex_disjoint_lr_paths(grid: &TriangulatedGrid, alive: &[bool]) -> usize {
    max_vertex_disjoint_paths(grid, alive, Axis::LeftRight)
}

/// Maximum number of vertex-disjoint top-bottom crossings (convenience wrapper).
#[must_use]
pub fn max_vertex_disjoint_tb_paths(grid: &TriangulatedGrid, alive: &[bool]) -> usize {
    max_vertex_disjoint_paths(grid, alive, Axis::TopBottom)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_network_max_flow() {
        // s -> a -> t and s -> b -> t, unit capacities: flow 2.
        let mut net = FlowNetwork::new(4);
        let (s, a, b, t) = (0, 1, 2, 3);
        net.add_edge(s, a, 1);
        net.add_edge(s, b, 1);
        net.add_edge(a, t, 1);
        net.add_edge(b, t, 1);
        assert_eq!(net.max_flow(s, t), 2);
    }

    #[test]
    fn bottleneck_respected() {
        // s -> a (cap 5), a -> t (cap 3): flow 3.
        let mut net = FlowNetwork::new(3);
        net.add_edge(0, 1, 5);
        net.add_edge(1, 2, 3);
        assert_eq!(net.max_flow(0, 2), 3);
    }

    #[test]
    fn classic_flow_instance() {
        // A standard 6-node instance with known max flow 23.
        let mut net = FlowNetwork::new(6);
        let edges = [
            (0, 1, 16),
            (0, 2, 13),
            (1, 2, 10),
            (2, 1, 4),
            (1, 3, 12),
            (3, 2, 9),
            (2, 4, 14),
            (4, 3, 7),
            (3, 5, 20),
            (4, 5, 4),
        ];
        for (u, v, c) in edges {
            net.add_edge(u, v, c);
        }
        assert_eq!(net.max_flow(0, 5), 23);
    }

    #[test]
    fn full_grid_has_side_many_disjoint_paths() {
        for side in [2usize, 3, 5, 8] {
            let g = TriangulatedGrid::new(side);
            let alive = vec![true; g.num_vertices()];
            assert_eq!(max_vertex_disjoint_lr_paths(&g, &alive), side);
            assert_eq!(max_vertex_disjoint_tb_paths(&g, &alive), side);
        }
    }

    #[test]
    fn dead_row_blocks_tb_paths_only_partially() {
        // Killing one full row severs every TB column... but NOT the LR paths in the
        // other rows. Killing a full row actually blocks all TB crossings.
        let g = TriangulatedGrid::new(4);
        let mut alive = vec![true; g.num_vertices()];
        for c in 0..4 {
            alive[g.index(2, c)] = false;
        }
        assert_eq!(max_vertex_disjoint_tb_paths(&g, &alive), 0);
        // Rows 0, 1, 3 still cross left-right.
        assert_eq!(max_vertex_disjoint_lr_paths(&g, &alive), 3);
    }

    #[test]
    fn dead_column_blocks_lr_paths() {
        let g = TriangulatedGrid::new(4);
        let mut alive = vec![true; g.num_vertices()];
        for r in 0..4 {
            alive[g.index(r, 1)] = false;
        }
        assert_eq!(max_vertex_disjoint_lr_paths(&g, &alive), 0);
        assert_eq!(max_vertex_disjoint_tb_paths(&g, &alive), 3);
    }

    #[test]
    fn single_alive_row_gives_one_lr_path() {
        let g = TriangulatedGrid::new(5);
        let mut alive = vec![false; g.num_vertices()];
        for c in 0..5 {
            alive[g.index(2, c)] = true;
        }
        assert_eq!(max_vertex_disjoint_lr_paths(&g, &alive), 1);
        assert_eq!(max_vertex_disjoint_tb_paths(&g, &alive), 0);
    }

    #[test]
    fn scattered_failures_reduce_crossings() {
        // Diagonal failures on a 3x3 grid: (0,0), (1,1), (2,2) dead. In the
        // triangulated grid, LR crossings survive via the anti-diagonal edges,
        // but strictly fewer than 3 disjoint crossings remain.
        let g = TriangulatedGrid::new(3);
        let mut alive = vec![true; g.num_vertices()];
        alive[g.index(0, 0)] = false;
        alive[g.index(1, 1)] = false;
        alive[g.index(2, 2)] = false;
        let lr = max_vertex_disjoint_lr_paths(&g, &alive);
        assert!(lr >= 1, "anti-diagonal edges keep at least one crossing");
        assert!(lr <= 2);
    }

    #[test]
    fn flow_edges_reports_positive_flow_only() {
        let mut net = FlowNetwork::new(3);
        net.add_edge(0, 1, 2);
        net.add_edge(1, 2, 1);
        let f = net.max_flow(0, 2);
        assert_eq!(f, 1);
        let fe = net.flow_edges();
        assert_eq!(fe[0], vec![(1, 1)]);
        assert_eq!(fe[1], vec![(2, 1)]);
        assert!(fe[2].is_empty());
    }
}
