//! Graph substrates for the M-Path quorum system.
//!
//! The M-Path construction (Section 7 of Malkhi, Reiter & Wool) places servers on the
//! vertices of a triangulated `√n × √n` grid; a quorum is the union of `√(2b+1)`
//! vertex-disjoint left-right paths and `√(2b+1)` vertex-disjoint top-bottom paths.
//! Verifying and constructing such quorums, and analysing their availability, needs:
//!
//! * [`grid`] — the triangulated grid graph itself (the triangular lattice of
//!   [WB92]/[Baz96] used by the paper),
//! * [`maxflow`] — Dinic's algorithm on unit-capacity node-split networks, giving the
//!   maximum number of vertex-disjoint paths between two vertex sets (Menger),
//! * [`disjoint_paths`] — extraction of explicit disjoint paths from a flow,
//! * [`percolation`] — Monte-Carlo site percolation on the triangulated grid, used to
//!   reproduce the availability results of Section 7 / Appendix B,
//! * [`crossing_dp`] — **exact** crossing and M-Path crash probabilities by a
//!   column-sweep transfer-matrix DP over boundary-interface states, built on the
//!   self-matching duality `maxflow = min blocking-path cost`,
//! * [`union_find`] — disjoint-set forest for fast connectivity / cluster analysis.
//!
//! # Example
//!
//! ```
//! use bqs_graph::grid::TriangulatedGrid;
//! use bqs_graph::maxflow::max_vertex_disjoint_lr_paths;
//!
//! let grid = TriangulatedGrid::new(5);
//! let all_alive = vec![true; grid.num_vertices()];
//! // A fully-alive 5x5 grid supports 5 disjoint left-right paths (the rows).
//! assert_eq!(max_vertex_disjoint_lr_paths(&grid, &all_alive), 5);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod crossing_dp;
pub mod disjoint_paths;
pub mod grid;
pub mod maxflow;
pub mod percolation;
pub mod union_find;

pub use crossing_dp::{
    crossing_probability_exact, crossing_probability_exact_grid, min_crossing_cost,
    mpath_crash_probability_exact, mpath_crash_probability_exact_grid,
};
pub use disjoint_paths::min_price_crossing;
pub use grid::{Axis, TriangulatedGrid};
pub use maxflow::{
    max_vertex_disjoint_lr_paths, max_vertex_disjoint_paths, max_vertex_disjoint_tb_paths,
};
pub use percolation::PercolationEstimator;
pub use union_find::UnionFind;
