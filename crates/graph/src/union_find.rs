//! Disjoint-set forest (union–find) with path compression and union by rank.
//!
//! Used by the percolation estimator for fast connectivity queries (does an open
//! left-right crossing exist?) without running max-flow when only existence — not the
//! number of disjoint crossings — matters.

/// A union–find structure over `0..n`.
#[derive(Debug, Clone)]
pub struct UnionFind {
    parent: Vec<usize>,
    rank: Vec<u8>,
    components: usize,
}

impl UnionFind {
    /// Creates `n` singleton sets.
    #[must_use]
    pub fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n).collect(),
            rank: vec![0; n],
            components: n,
        }
    }

    /// Number of elements.
    #[must_use]
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// Returns true when the structure is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Number of disjoint components.
    #[must_use]
    pub fn num_components(&self) -> usize {
        self.components
    }

    /// Finds the representative of `x`'s set (with path compression).
    pub fn find(&mut self, x: usize) -> usize {
        let mut root = x;
        while self.parent[root] != root {
            root = self.parent[root];
        }
        let mut cur = x;
        while self.parent[cur] != root {
            let next = self.parent[cur];
            self.parent[cur] = root;
            cur = next;
        }
        root
    }

    /// Unions the sets containing `a` and `b`; returns true if they were distinct.
    pub fn union(&mut self, a: usize, b: usize) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        self.components -= 1;
        match self.rank[ra].cmp(&self.rank[rb]) {
            std::cmp::Ordering::Less => self.parent[ra] = rb,
            std::cmp::Ordering::Greater => self.parent[rb] = ra,
            std::cmp::Ordering::Equal => {
                self.parent[rb] = ra;
                self.rank[ra] += 1;
            }
        }
        true
    }

    /// Returns true if `a` and `b` are in the same set.
    pub fn connected(&mut self, a: usize, b: usize) -> bool {
        self.find(a) == self.find(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_as_singletons() {
        let mut uf = UnionFind::new(5);
        assert_eq!(uf.num_components(), 5);
        assert!(!uf.connected(0, 1));
        assert!(uf.connected(2, 2));
    }

    #[test]
    fn union_merges_components() {
        let mut uf = UnionFind::new(6);
        assert!(uf.union(0, 1));
        assert!(uf.union(2, 3));
        assert!(!uf.union(1, 0), "repeated union returns false");
        assert!(uf.union(1, 2));
        assert!(uf.connected(0, 3));
        assert!(!uf.connected(0, 4));
        assert_eq!(uf.num_components(), 3); // {0,1,2,3}, {4}, {5}
    }

    #[test]
    fn transitive_connectivity_chain() {
        let mut uf = UnionFind::new(100);
        for i in 0..99 {
            uf.union(i, i + 1);
        }
        assert_eq!(uf.num_components(), 1);
        assert!(uf.connected(0, 99));
    }

    #[test]
    fn empty_and_len() {
        let uf = UnionFind::new(0);
        assert!(uf.is_empty());
        let uf2 = UnionFind::new(3);
        assert_eq!(uf2.len(), 3);
        assert!(!uf2.is_empty());
    }
}
