//! Empirical tuning probe for the ε-pruned M-Path sweep in the ε-dominated
//! regime: budget large enough that forced pruning stays quiet, so interval
//! width is governed by the mass floor ε alone. Sizes
//! `PRUNED_DP_STATE_BUDGET` and the side-8 width gate.
//!
//! Run with: cargo run --release -p bqs-graph --example prune_probe

use bqs_graph::crossing_dp::mpath_crash_probability_pruned;

fn main() {
    let p = 0.125;
    let budget = 1usize << 26;
    for &(side, k) in &[(8usize, 2usize), (9, 3), (10, 4)] {
        for &eps in &[1e-12f64, 1e-15, 1e-18] {
            let t = std::time::Instant::now();
            let iv = mpath_crash_probability_pruned(side, k, p, budget, eps);
            let dt = t.elapsed().as_secs_f64();
            match iv {
                Some(iv) => println!(
                    "side={side} k={k} eps={eps:.0e}: F_p in [{:.6e}, {:.6e}] width={:.3e} in {dt:.2}s",
                    iv.lower,
                    iv.upper,
                    iv.width()
                ),
                None => println!("side={side} k={k} eps={eps:.0e}: DECLINED in {dt:.2}s"),
            }
        }
    }
}
