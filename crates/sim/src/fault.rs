//! Fault-injection plans.
//!
//! A [`FaultPlan`] assigns a behaviour to every server before a simulation run: which
//! servers are Byzantine (and with what attack strategy), and which have crashed.
//! The hybrid fault model of the paper — up to `b` Byzantine failures *plus* possibly
//! many more crashes — maps directly onto a plan with `byzantine.len() <= b` and an
//! arbitrary crash set.

use rand::seq::SliceRandom;
use rand::Rng;

use crate::server::{Behavior, ByzantineStrategy, Replica};

/// A complete assignment of behaviours to the `n` servers of a simulation.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    n: usize,
    behaviors: Vec<Behavior>,
}

impl FaultPlan {
    /// A plan with no failures.
    #[must_use]
    pub fn none(n: usize) -> Self {
        FaultPlan {
            n,
            behaviors: vec![Behavior::Correct; n],
        }
    }

    /// The number of servers covered by the plan.
    #[must_use]
    pub fn universe_size(&self) -> usize {
        self.n
    }

    /// Marks a specific server Byzantine with the given strategy.
    ///
    /// # Panics
    ///
    /// Panics if `server >= n`.
    #[must_use]
    pub fn with_byzantine(mut self, server: usize, strategy: ByzantineStrategy) -> Self {
        self.behaviors[server] = Behavior::Byzantine(strategy);
        self
    }

    /// Marks a specific server crashed.
    ///
    /// # Panics
    ///
    /// Panics if `server >= n`.
    #[must_use]
    pub fn with_crashed(mut self, server: usize) -> Self {
        self.behaviors[server] = Behavior::Crashed;
        self
    }

    /// A plan with `byzantine_count` uniformly chosen Byzantine servers (all using
    /// `strategy`) and `crash_count` additional uniformly chosen crashed servers.
    ///
    /// # Panics
    ///
    /// Panics if `byzantine_count + crash_count > n`.
    #[must_use]
    pub fn random<R: Rng + ?Sized>(
        n: usize,
        byzantine_count: usize,
        crash_count: usize,
        strategy: ByzantineStrategy,
        rng: &mut R,
    ) -> Self {
        assert!(
            byzantine_count + crash_count <= n,
            "cannot fail more servers than exist"
        );
        let mut indices: Vec<usize> = (0..n).collect();
        indices.shuffle(rng);
        let mut plan = FaultPlan::none(n);
        for &s in indices.iter().take(byzantine_count) {
            plan.behaviors[s] = Behavior::Byzantine(strategy);
        }
        for &s in indices.iter().skip(byzantine_count).take(crash_count) {
            plan.behaviors[s] = Behavior::Crashed;
        }
        plan
    }

    /// A strategy-aware *targeted* plan: concentrates `count` Byzantine servers
    /// on the highest-weight servers of a published access strategy (the
    /// per-server access probabilities, e.g. `AccessStrategy::weights()` from
    /// the certified load oracle). The strategy is public information in the
    /// paper's model, so an adversary maximising load skew and read-abort rate
    /// naturally attacks exactly these servers. Ties break towards the lower
    /// server index so the plan is deterministic.
    ///
    /// # Panics
    ///
    /// Panics if `weights.len() != n` or `count > n`.
    #[must_use]
    pub fn targeted_by_weight(
        n: usize,
        count: usize,
        strategy: ByzantineStrategy,
        weights: &[f64],
    ) -> Self {
        assert_eq!(weights.len(), n, "one weight per server required");
        assert!(count <= n, "cannot fail more servers than exist");
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by(|&a, &b| {
            weights[b]
                .partial_cmp(&weights[a])
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.cmp(&b))
        });
        let mut plan = FaultPlan::none(n);
        for &s in order.iter().take(count) {
            plan.behaviors[s] = Behavior::Byzantine(strategy);
        }
        plan
    }

    /// A plan where each server independently crashes with probability `p`
    /// (the failure model of Definition 3.10), with no Byzantine servers.
    #[must_use]
    pub fn independent_crashes<R: Rng + ?Sized>(n: usize, p: f64, rng: &mut R) -> Self {
        let mut plan = FaultPlan::none(n);
        for b in &mut plan.behaviors {
            if rng.gen::<f64>() < p {
                *b = Behavior::Crashed;
            }
        }
        plan
    }

    /// The behaviour assigned to `server`.
    #[must_use]
    pub fn behavior(&self, server: usize) -> Behavior {
        self.behaviors[server]
    }

    /// Number of Byzantine servers in the plan.
    #[must_use]
    pub fn byzantine_count(&self) -> usize {
        self.behaviors
            .iter()
            .filter(|b| matches!(b, Behavior::Byzantine(_)))
            .count()
    }

    /// Number of crashed servers in the plan.
    #[must_use]
    pub fn crash_count(&self) -> usize {
        self.behaviors
            .iter()
            .filter(|b| matches!(b, Behavior::Crashed))
            .count()
    }

    /// Instantiates the replicas described by the plan.
    #[must_use]
    pub fn build_replicas(&self) -> Vec<Replica> {
        self.behaviors.iter().map(|&b| Replica::new(b)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn empty_plan() {
        let p = FaultPlan::none(5);
        assert_eq!(p.universe_size(), 5);
        assert_eq!(p.byzantine_count(), 0);
        assert_eq!(p.crash_count(), 0);
        assert!(p
            .build_replicas()
            .iter()
            .all(|r| r.behavior() == Behavior::Correct));
    }

    #[test]
    fn builder_style_assignment() {
        let p = FaultPlan::none(6)
            .with_byzantine(1, ByzantineStrategy::Equivocate)
            .with_byzantine(3, ByzantineStrategy::StaleReplay)
            .with_crashed(5);
        assert_eq!(p.byzantine_count(), 2);
        assert_eq!(p.crash_count(), 1);
        assert!(matches!(p.behavior(1), Behavior::Byzantine(_)));
        assert_eq!(p.behavior(0), Behavior::Correct);
    }

    #[test]
    fn random_plan_counts() {
        let mut rng = StdRng::seed_from_u64(3);
        let p = FaultPlan::random(
            20,
            3,
            5,
            ByzantineStrategy::FabricateHighTimestamp { value: 0 },
            &mut rng,
        );
        assert_eq!(p.byzantine_count(), 3);
        assert_eq!(p.crash_count(), 5);
    }

    #[test]
    fn targeted_plan_attacks_highest_weight_servers() {
        let weights = [0.1, 0.4, 0.2, 0.4, 0.05];
        let p = FaultPlan::targeted_by_weight(
            5,
            2,
            ByzantineStrategy::FabricateHighTimestamp { value: 7 },
            &weights,
        );
        // The two 0.4-weight servers, tie broken towards the lower index.
        assert!(matches!(p.behavior(1), Behavior::Byzantine(_)));
        assert!(matches!(p.behavior(3), Behavior::Byzantine(_)));
        assert_eq!(p.byzantine_count(), 2);
        // Three targets: next is the 0.2-weight server.
        let p3 = FaultPlan::targeted_by_weight(5, 3, ByzantineStrategy::StaleReplay, &weights);
        assert!(matches!(p3.behavior(2), Behavior::Byzantine(_)));
        assert_eq!(p3.behavior(0), Behavior::Correct);
    }

    #[test]
    #[should_panic(expected = "cannot fail more servers")]
    fn random_plan_rejects_too_many_failures() {
        let mut rng = StdRng::seed_from_u64(0);
        let _ = FaultPlan::random(4, 3, 2, ByzantineStrategy::Equivocate, &mut rng);
    }

    #[test]
    fn independent_crashes_rate() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut total = 0;
        for _ in 0..50 {
            total += FaultPlan::independent_crashes(100, 0.2, &mut rng).crash_count();
        }
        let mean = total as f64 / 50.0;
        assert!((mean - 20.0).abs() < 3.0, "mean crashes = {mean}");
    }
}
