//! The server-side epoch gate: wire-level fencing for reconfiguration.
//!
//! Reconfiguration (the `bqs-epoch` crate) moves clients from the access
//! strategy of epoch `e` to a re-certified strategy at epoch `e + 1`. The
//! masking protocol's safety argument requires that no read ever gathers
//! `b + 1` support from replies produced under *two different* strategies —
//! the `2b + 1` intersection of Definition 3.5 is only guaranteed between
//! quorums of the *same* system. The gate enforces that at the replica
//! boundary with a two-epoch acceptance window:
//!
//! * **Steady state** — the window is `[e, e]`: only the current epoch is
//!   served.
//! * **Handoff** — the manager opens the window to `[e, e + 1]` *before*
//!   publishing the new configuration to any client, so both the draining
//!   epoch-`e` accesses and the first epoch-`e + 1` accesses are served.
//!   Each individual access still carries a single epoch stamp for its whole
//!   fan-out, so no single quorum mixes strategies.
//! * **Finalise** — once clients have migrated, the window collapses to
//!   `[e + 1, e + 1]`; a straggling epoch-`e` request is *fenced* — answered
//!   in-band with `stale = true` and the current epoch, never served — which
//!   simultaneously protects the register and tells the lagging client what
//!   epoch to re-synchronise to.
//!
//! The gate is a pair of atomics shared by every shard worker; checks are
//! two relaxed loads on the request hot path.

use std::sync::atomic::{AtomicU64, Ordering};

/// A two-epoch acceptance window shared by every replica owner of one
/// service instance. See the module docs for the protocol role.
#[derive(Debug, Default)]
pub struct EpochGate {
    /// Oldest accepted epoch (the "current" epoch in steady state).
    low: AtomicU64,
    /// Newest accepted epoch; equals `low` outside a handoff window.
    high: AtomicU64,
}

impl EpochGate {
    /// A gate in the initial state: only epoch 0 is accepted.
    #[must_use]
    pub fn new() -> Self {
        EpochGate::default()
    }

    /// True when a request stamped `epoch` must be served rather than fenced.
    #[must_use]
    pub fn accepts(&self, epoch: u64) -> bool {
        self.low.load(Ordering::Relaxed) <= epoch && epoch <= self.high.load(Ordering::Relaxed)
    }

    /// The oldest accepted epoch — what a fenced reply reports as "current".
    #[must_use]
    pub fn current(&self) -> u64 {
        self.low.load(Ordering::Relaxed)
    }

    /// The acceptance window as `(low, high)`, inclusive on both ends.
    #[must_use]
    pub fn window(&self) -> (u64, u64) {
        (
            self.low.load(Ordering::Relaxed),
            self.high.load(Ordering::Relaxed),
        )
    }

    /// Phase one of a handoff: widen the window so `next` is accepted
    /// alongside every already-accepted epoch. Monotone — reopening an
    /// older epoch is a no-op.
    pub fn open_window(&self, next: u64) {
        self.high.fetch_max(next, Ordering::Relaxed);
    }

    /// Phase two of a handoff: collapse the window to `[epoch, epoch]`,
    /// fencing every older generation. Monotone — finalising backwards is a
    /// no-op on `low` (and `high` only ever grows).
    pub fn finalize(&self, epoch: u64) {
        self.high.fetch_max(epoch, Ordering::Relaxed);
        self.low.fetch_max(epoch, Ordering::Relaxed);
    }

    /// Re-arms the gate to the initial epoch-0 state. **Not** part of the
    /// protocol — mid-run the gate only moves forward. This exists for
    /// trial-reuse harnesses that swap out every replica between independent
    /// trials (the loopback's `reset_plan`) and must return the acceptance
    /// window to the fresh-service state along with the replicas.
    pub fn reset(&self) {
        self.low.store(0, Ordering::Relaxed);
        self.high.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn steady_state_accepts_only_the_current_epoch() {
        let gate = EpochGate::new();
        assert!(gate.accepts(0));
        assert!(!gate.accepts(1));
        assert_eq!(gate.current(), 0);
        assert_eq!(gate.window(), (0, 0));
    }

    #[test]
    fn handoff_window_accepts_both_generations_then_fences_the_old() {
        let gate = EpochGate::new();
        gate.open_window(1);
        assert!(gate.accepts(0), "draining epoch-0 accesses must be served");
        assert!(gate.accepts(1), "first epoch-1 accesses must be served");
        assert!(!gate.accepts(2));
        assert_eq!(gate.window(), (0, 1));

        gate.finalize(1);
        assert!(!gate.accepts(0), "stragglers from epoch 0 must be fenced");
        assert!(gate.accepts(1));
        assert_eq!(gate.current(), 1);
        assert_eq!(gate.window(), (1, 1));
    }

    #[test]
    fn transitions_are_monotone() {
        let gate = EpochGate::new();
        gate.open_window(3);
        gate.finalize(3);
        // Neither reopening nor re-finalising an older epoch moves the gate
        // backwards.
        gate.open_window(1);
        gate.finalize(2);
        assert_eq!(gate.window(), (3, 3));
        assert!(!gate.accepts(2));
    }

    #[test]
    fn finalize_without_open_window_still_advances() {
        // A replica that missed the open-window control message and sees the
        // finalise directly must land in the same state.
        let gate = EpochGate::new();
        gate.finalize(2);
        assert_eq!(gate.window(), (2, 2));
        assert!(gate.accepts(2));
        assert!(!gate.accepts(1));
    }
}
