//! Simulated replica servers.
//!
//! Each server stores the latest timestamped value it has accepted and follows one
//! of three behaviours: correct, crashed (never replies), or Byzantine (replies with
//! adversarially chosen data). The Byzantine strategies implemented here are the
//! standard attacks against replicated read/write registers — fabricating a value
//! with an inflated timestamp, replaying a stale value, and equivocating — exactly
//! the behaviours that the `2b+1` intersection of a b-masking quorum system is
//! designed to mask ([MR98a], Definition 3.5 of the paper).

use rand::Rng;

/// Logical timestamps attached to writes.
pub type Timestamp = u64;

/// The values stored in the replicated register.
pub type Value = u64;

/// A timestamped value as stored and reported by servers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Entry {
    /// The write's logical timestamp.
    pub timestamp: Timestamp,
    /// The written value.
    pub value: Value,
}

/// How a Byzantine server misbehaves when read.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ByzantineStrategy {
    /// Report a fabricated value with a timestamp higher than anything written.
    FabricateHighTimestamp {
        /// The fabricated value to report.
        value: Value,
    },
    /// Report the oldest value it ever saw (stale replay), or nothing if none.
    StaleReplay,
    /// Report a uniformly random value and timestamp on every read (equivocation).
    Equivocate,
    /// Stay silent (indistinguishable from a crash to the client).
    Silent,
}

/// A server's failure mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Behavior {
    /// Follows the protocol.
    Correct,
    /// Crashed: never responds.
    Crashed,
    /// Byzantine: responds according to the given strategy.
    Byzantine(ByzantineStrategy),
}

/// A simulated replica.
#[derive(Debug, Clone)]
pub struct Replica {
    behavior: Behavior,
    /// Latest accepted entry.
    current: Option<Entry>,
    /// First entry ever accepted (used by the stale-replay attack).
    first: Option<Entry>,
    /// Number of protocol messages this replica has received (for load accounting).
    accesses: u64,
}

impl Replica {
    /// Creates a replica with the given behaviour and empty state.
    #[must_use]
    pub fn new(behavior: Behavior) -> Self {
        Replica {
            behavior,
            current: None,
            first: None,
            accesses: 0,
        }
    }

    /// The replica's behaviour.
    #[must_use]
    pub fn behavior(&self) -> Behavior {
        self.behavior
    }

    /// Number of read/write messages the replica has received.
    #[must_use]
    pub fn accesses(&self) -> u64 {
        self.accesses
    }

    /// The replica's current stored entry (what a correct replica would report).
    #[must_use]
    pub fn stored(&self) -> Option<Entry> {
        self.current
    }

    /// Delivers a write message. Correct servers accept the entry if its timestamp is
    /// newer than what they hold; crashed servers ignore it; Byzantine servers accept
    /// it too (they may lie later, but remembering the truth lets `StaleReplay` work).
    pub fn deliver_write(&mut self, entry: Entry) {
        self.accesses += 1;
        match self.behavior {
            Behavior::Crashed => {}
            Behavior::Correct | Behavior::Byzantine(_) => {
                if self.first.is_none() {
                    self.first = Some(entry);
                }
                if self.current.is_none_or(|c| entry.timestamp > c.timestamp) {
                    self.current = Some(entry);
                }
            }
        }
    }

    /// Delivers a read message and returns the reply, if any.
    pub fn deliver_read<R: Rng + ?Sized>(&mut self, rng: &mut R) -> Option<Entry> {
        self.accesses += 1;
        match self.behavior {
            Behavior::Correct => self.current,
            Behavior::Crashed => None,
            Behavior::Byzantine(strategy) => match strategy {
                ByzantineStrategy::FabricateHighTimestamp { value } => Some(Entry {
                    timestamp: Timestamp::MAX,
                    value,
                }),
                ByzantineStrategy::StaleReplay => self.first,
                ByzantineStrategy::Equivocate => Some(Entry {
                    timestamp: rng.gen(),
                    value: rng.gen(),
                }),
                ByzantineStrategy::Silent => None,
            },
        }
    }

    /// Whether the server responds to messages at all (crashed and silent-Byzantine
    /// servers do not). The client's failure detector uses this to build its view of
    /// the responsive set.
    #[must_use]
    pub fn is_responsive(&self) -> bool {
        !matches!(
            self.behavior,
            Behavior::Crashed | Behavior::Byzantine(ByzantineStrategy::Silent)
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn correct_replica_stores_and_reports() {
        let mut r = Replica::new(Behavior::Correct);
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(r.deliver_read(&mut rng), None);
        r.deliver_write(Entry {
            timestamp: 1,
            value: 10,
        });
        r.deliver_write(Entry {
            timestamp: 3,
            value: 30,
        });
        // An older write must not overwrite a newer one.
        r.deliver_write(Entry {
            timestamp: 2,
            value: 20,
        });
        assert_eq!(
            r.deliver_read(&mut rng),
            Some(Entry {
                timestamp: 3,
                value: 30
            })
        );
        assert_eq!(r.accesses(), 5);
    }

    #[test]
    fn crashed_replica_never_replies() {
        let mut r = Replica::new(Behavior::Crashed);
        let mut rng = StdRng::seed_from_u64(0);
        r.deliver_write(Entry {
            timestamp: 1,
            value: 10,
        });
        assert_eq!(r.deliver_read(&mut rng), None);
        assert!(!r.is_responsive());
        assert_eq!(r.stored(), None);
    }

    #[test]
    fn fabricating_replica_reports_max_timestamp() {
        let mut r = Replica::new(Behavior::Byzantine(
            ByzantineStrategy::FabricateHighTimestamp { value: 666 },
        ));
        let mut rng = StdRng::seed_from_u64(0);
        r.deliver_write(Entry {
            timestamp: 5,
            value: 50,
        });
        let reply = r.deliver_read(&mut rng).unwrap();
        assert_eq!(reply.value, 666);
        assert_eq!(reply.timestamp, Timestamp::MAX);
        assert!(r.is_responsive());
    }

    #[test]
    fn stale_replay_reports_first_write() {
        let mut r = Replica::new(Behavior::Byzantine(ByzantineStrategy::StaleReplay));
        let mut rng = StdRng::seed_from_u64(0);
        r.deliver_write(Entry {
            timestamp: 1,
            value: 11,
        });
        r.deliver_write(Entry {
            timestamp: 9,
            value: 99,
        });
        assert_eq!(
            r.deliver_read(&mut rng),
            Some(Entry {
                timestamp: 1,
                value: 11
            })
        );
    }

    #[test]
    fn equivocating_replica_changes_answers() {
        let mut r = Replica::new(Behavior::Byzantine(ByzantineStrategy::Equivocate));
        let mut rng = StdRng::seed_from_u64(1);
        let a = r.deliver_read(&mut rng);
        let b = r.deliver_read(&mut rng);
        assert!(a.is_some() && b.is_some());
        assert_ne!(
            a, b,
            "equivocation should vary (with overwhelming probability)"
        );
    }

    #[test]
    fn silent_byzantine_is_unresponsive() {
        let mut r = Replica::new(Behavior::Byzantine(ByzantineStrategy::Silent));
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(r.deliver_read(&mut rng), None);
        assert!(!r.is_responsive());
    }
}
