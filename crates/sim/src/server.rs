//! Simulated replica servers.
//!
//! Each server stores the latest timestamped value it has accepted and follows one
//! of three behaviours: correct, crashed (never replies), or Byzantine (replies with
//! adversarially chosen data). The Byzantine strategies implemented here are the
//! standard attacks against replicated read/write registers — fabricating a value
//! with an inflated timestamp, replaying a stale value, and equivocating — exactly
//! the behaviours that the `2b+1` intersection of a b-masking quorum system is
//! designed to mask ([MR98a], Definition 3.5 of the paper).

use rand::Rng;

/// The splitmix64 finaliser: a cheap, high-quality 64-bit mixing function.
///
/// Shared by the deterministic adversaries in this module (per-client
/// equivocation derives its per-origin lie from `mix64(origin ^ salt)`) and by
/// the chaos engine's decision streams — any party that mixes the same inputs
/// reproduces the same outputs, which is what makes adversarial runs
/// replayable from their seeds.
#[must_use]
pub fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Logical timestamps attached to writes.
pub type Timestamp = u64;

/// The values stored in the replicated register.
pub type Value = u64;

/// A timestamped value as stored and reported by servers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Entry {
    /// The write's logical timestamp.
    pub timestamp: Timestamp,
    /// The written value.
    pub value: Value,
}

/// How a Byzantine server misbehaves when read.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ByzantineStrategy {
    /// Report a fabricated value with a timestamp higher than anything written.
    FabricateHighTimestamp {
        /// The fabricated value to report.
        value: Value,
    },
    /// Report the oldest value it ever saw (stale replay), or nothing if none.
    StaleReplay,
    /// Report a uniformly random value and timestamp on every read (equivocation).
    Equivocate,
    /// Equivocate *per client*: every reader sees the same inflated timestamp
    /// but a value derived deterministically from its identity, so any one
    /// client observes a self-consistent coalition while different clients
    /// observe contradictory ones. The value is `mix64(origin ^ salt)`; servers
    /// sharing a `salt` form a consistent coalition towards each client.
    EquivocatePerClient {
        /// Coalition key mixed with the client identity to derive the lie.
        salt: u64,
    },
    /// Replay the newest value from a *previous epoch* of writes (epochs are
    /// `timestamp / epoch_len`), falling back to the first write ever seen.
    /// Unlike [`ByzantineStrategy::StaleReplay`] the lie tracks the write
    /// history, staying one epoch behind instead of pinned at the beginning.
    StaleEpochReplay {
        /// Number of consecutive timestamps per epoch (must be non-zero).
        epoch_len: u64,
    },
    /// Stay silent (indistinguishable from a crash to the client).
    Silent,
}

/// A server's failure mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Behavior {
    /// Follows the protocol.
    Correct,
    /// Crashed: never responds.
    Crashed,
    /// Byzantine: responds according to the given strategy.
    Byzantine(ByzantineStrategy),
}

/// A simulated replica.
#[derive(Debug, Clone)]
pub struct Replica {
    behavior: Behavior,
    /// Latest accepted entry.
    current: Option<Entry>,
    /// First entry ever accepted (used by the stale-replay attack).
    first: Option<Entry>,
    /// Newest entry of the last *completed* epoch (used by `StaleEpochReplay`).
    epoch_stale: Option<Entry>,
    /// Number of protocol messages this replica has received (for load accounting).
    accesses: u64,
}

impl Replica {
    /// Creates a replica with the given behaviour and empty state.
    #[must_use]
    pub fn new(behavior: Behavior) -> Self {
        Replica {
            behavior,
            current: None,
            first: None,
            epoch_stale: None,
            accesses: 0,
        }
    }

    /// The replica's behaviour.
    #[must_use]
    pub fn behavior(&self) -> Behavior {
        self.behavior
    }

    /// Number of read/write messages the replica has received.
    #[must_use]
    pub fn accesses(&self) -> u64 {
        self.accesses
    }

    /// The replica's current stored entry (what a correct replica would report).
    #[must_use]
    pub fn stored(&self) -> Option<Entry> {
        self.current
    }

    /// Delivers a write message. Correct servers accept the entry if its timestamp is
    /// newer than what they hold; crashed servers ignore it; Byzantine servers accept
    /// it too (they may lie later, but remembering the truth lets `StaleReplay` work).
    pub fn deliver_write(&mut self, entry: Entry) {
        self.accesses += 1;
        match self.behavior {
            Behavior::Crashed => {}
            Behavior::Correct | Behavior::Byzantine(_) => {
                if self.first.is_none() {
                    self.first = Some(entry);
                }
                if self.current.is_none_or(|c| entry.timestamp > c.timestamp) {
                    if let Behavior::Byzantine(ByzantineStrategy::StaleEpochReplay { epoch_len }) =
                        self.behavior
                    {
                        let epoch_len = epoch_len.max(1);
                        if let Some(current) = self.current {
                            if entry.timestamp / epoch_len > current.timestamp / epoch_len {
                                self.epoch_stale = Some(current);
                            }
                        }
                    }
                    self.current = Some(entry);
                }
            }
        }
    }

    /// Delivers a read message and returns the reply, if any.
    ///
    /// `origin` identifies the requesting client (connection identity on the
    /// socket path, client identity in process); correct replicas ignore it,
    /// but a [`ByzantineStrategy::EquivocatePerClient`] server keys its lie on
    /// it so that different clients receive contradictory — yet individually
    /// self-consistent — replies for the same timestamp.
    pub fn deliver_read<R: Rng + ?Sized>(&mut self, origin: u64, rng: &mut R) -> Option<Entry> {
        self.accesses += 1;
        match self.behavior {
            Behavior::Correct => self.current,
            Behavior::Crashed => None,
            Behavior::Byzantine(strategy) => match strategy {
                ByzantineStrategy::FabricateHighTimestamp { value } => Some(Entry {
                    timestamp: Timestamp::MAX,
                    value,
                }),
                ByzantineStrategy::StaleReplay => self.first,
                ByzantineStrategy::Equivocate => Some(Entry {
                    timestamp: rng.gen(),
                    value: rng.gen(),
                }),
                ByzantineStrategy::EquivocatePerClient { salt } => Some(Entry {
                    // One timestamp for everyone, one value per client: the
                    // classic equivocation the b+1-support read rule exists to
                    // catch. MAX - 1 keeps it distinct from the fabrication
                    // strategy while still outbidding every honest write.
                    timestamp: Timestamp::MAX - 1,
                    value: mix64(origin ^ salt),
                }),
                ByzantineStrategy::StaleEpochReplay { .. } => self.epoch_stale.or(self.first),
                ByzantineStrategy::Silent => None,
            },
        }
    }

    /// Whether the server responds to messages at all (crashed and silent-Byzantine
    /// servers do not). The client's failure detector uses this to build its view of
    /// the responsive set.
    #[must_use]
    pub fn is_responsive(&self) -> bool {
        !matches!(
            self.behavior,
            Behavior::Crashed | Behavior::Byzantine(ByzantineStrategy::Silent)
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn correct_replica_stores_and_reports() {
        let mut r = Replica::new(Behavior::Correct);
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(r.deliver_read(0, &mut rng), None);
        r.deliver_write(Entry {
            timestamp: 1,
            value: 10,
        });
        r.deliver_write(Entry {
            timestamp: 3,
            value: 30,
        });
        // An older write must not overwrite a newer one.
        r.deliver_write(Entry {
            timestamp: 2,
            value: 20,
        });
        assert_eq!(
            r.deliver_read(0, &mut rng),
            Some(Entry {
                timestamp: 3,
                value: 30
            })
        );
        assert_eq!(r.accesses(), 5);
    }

    #[test]
    fn crashed_replica_never_replies() {
        let mut r = Replica::new(Behavior::Crashed);
        let mut rng = StdRng::seed_from_u64(0);
        r.deliver_write(Entry {
            timestamp: 1,
            value: 10,
        });
        assert_eq!(r.deliver_read(0, &mut rng), None);
        assert!(!r.is_responsive());
        assert_eq!(r.stored(), None);
    }

    #[test]
    fn fabricating_replica_reports_max_timestamp() {
        let mut r = Replica::new(Behavior::Byzantine(
            ByzantineStrategy::FabricateHighTimestamp { value: 666 },
        ));
        let mut rng = StdRng::seed_from_u64(0);
        r.deliver_write(Entry {
            timestamp: 5,
            value: 50,
        });
        let reply = r.deliver_read(0, &mut rng).unwrap();
        assert_eq!(reply.value, 666);
        assert_eq!(reply.timestamp, Timestamp::MAX);
        assert!(r.is_responsive());
    }

    #[test]
    fn stale_replay_reports_first_write() {
        let mut r = Replica::new(Behavior::Byzantine(ByzantineStrategy::StaleReplay));
        let mut rng = StdRng::seed_from_u64(0);
        r.deliver_write(Entry {
            timestamp: 1,
            value: 11,
        });
        r.deliver_write(Entry {
            timestamp: 9,
            value: 99,
        });
        assert_eq!(
            r.deliver_read(0, &mut rng),
            Some(Entry {
                timestamp: 1,
                value: 11
            })
        );
    }

    #[test]
    fn equivocating_replica_changes_answers() {
        let mut r = Replica::new(Behavior::Byzantine(ByzantineStrategy::Equivocate));
        let mut rng = StdRng::seed_from_u64(1);
        let a = r.deliver_read(0, &mut rng);
        let b = r.deliver_read(0, &mut rng);
        assert!(a.is_some() && b.is_some());
        assert_ne!(
            a, b,
            "equivocation should vary (with overwhelming probability)"
        );
    }

    #[test]
    fn per_client_equivocation_is_consistent_per_origin_and_differs_across() {
        let mut a = Replica::new(Behavior::Byzantine(
            ByzantineStrategy::EquivocatePerClient { salt: 7 },
        ));
        let mut b = Replica::new(Behavior::Byzantine(
            ByzantineStrategy::EquivocatePerClient { salt: 7 },
        ));
        let mut rng = StdRng::seed_from_u64(0);
        // The coalition (same salt) answers each client consistently...
        let to_one_a = a.deliver_read(1, &mut rng).unwrap();
        let to_one_b = b.deliver_read(1, &mut rng).unwrap();
        assert_eq!(to_one_a, to_one_b);
        assert_eq!(to_one_a, a.deliver_read(1, &mut rng).unwrap());
        // ...but different clients see different values for the same timestamp.
        let to_two = a.deliver_read(2, &mut rng).unwrap();
        assert_eq!(to_one_a.timestamp, to_two.timestamp);
        assert_ne!(to_one_a.value, to_two.value);
        // A different coalition key yields a different lie for the same client.
        let mut c = Replica::new(Behavior::Byzantine(
            ByzantineStrategy::EquivocatePerClient { salt: 8 },
        ));
        assert_ne!(to_one_a.value, c.deliver_read(1, &mut rng).unwrap().value);
    }

    #[test]
    fn stale_epoch_replay_tracks_the_previous_epoch() {
        let mut r = Replica::new(Behavior::Byzantine(ByzantineStrategy::StaleEpochReplay {
            epoch_len: 4,
        }));
        let mut rng = StdRng::seed_from_u64(0);
        // No completed epoch yet: falls back to the first write.
        r.deliver_write(Entry {
            timestamp: 1,
            value: 11,
        });
        r.deliver_write(Entry {
            timestamp: 3,
            value: 33,
        });
        assert_eq!(
            r.deliver_read(0, &mut rng),
            Some(Entry {
                timestamp: 1,
                value: 11
            })
        );
        // Crossing into epoch 1 (timestamps 4..8) freezes epoch 0's newest.
        r.deliver_write(Entry {
            timestamp: 5,
            value: 55,
        });
        assert_eq!(
            r.deliver_read(0, &mut rng),
            Some(Entry {
                timestamp: 3,
                value: 33
            })
        );
        // Another epoch boundary advances the replayed entry.
        r.deliver_write(Entry {
            timestamp: 9,
            value: 99,
        });
        assert_eq!(
            r.deliver_read(0, &mut rng),
            Some(Entry {
                timestamp: 5,
                value: 55
            })
        );
        // The lie is always strictly older than the truth it withholds.
        assert_eq!(r.stored().unwrap().timestamp, 9);
    }

    #[test]
    fn silent_byzantine_is_unresponsive() {
        let mut r = Replica::new(Behavior::Byzantine(ByzantineStrategy::Silent));
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(r.deliver_read(0, &mut rng), None);
        assert!(!r.is_responsive());
    }
}
