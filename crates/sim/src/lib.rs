//! Simulation of replicated data over b-masking quorum systems.
//!
//! The constructions and measures in the rest of this workspace answer *how well* a
//! b-masking quorum system performs; this crate demonstrates *that it works*: it
//! implements the replicated read/write register of [MR98a] — the protocol whose
//! consistency requirement (`|Q₁ ∩ Q₂| ≥ 2b + 1`, Definition 3.5 of the paper)
//! motivates masking quorum systems — and runs it against clusters with injected
//! Byzantine and crash failures.
//!
//! * [`server`] — replicas with correct, crashed and Byzantine behaviours (value
//!   fabrication with inflated timestamps, stale replay, equivocation, silence);
//! * [`fault`] — fault plans for the paper's hybrid failure model (`≤ b` Byzantine
//!   plus arbitrarily many crashes);
//! * [`cluster`] — message routing and per-server access accounting;
//! * [`client`] — the masking read/write protocol over any
//!   [`bqs_core::quorum::QuorumSystem`];
//! * [`runner`] — workload driver with safety checking and empirical-load
//!   measurement.
//!
//! # Example
//!
//! ```
//! use bqs_constructions::threshold::ThresholdSystem;
//! use bqs_sim::prelude::*;
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//!
//! // A b = 1 masking threshold over 5 servers, with one fabricating Byzantine server.
//! let system = ThresholdSystem::minimal_masking(1).unwrap();
//! let plan = FaultPlan::none(5)
//!     .with_byzantine(2, ByzantineStrategy::FabricateHighTimestamp { value: 666 });
//! let mut rng = StdRng::seed_from_u64(7);
//! let report = run_workload(system, 1, plan, WorkloadConfig::default(), &mut rng);
//! assert!(report.is_safe());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod cluster;
pub mod epoch;
pub mod fault;
pub mod multi_writer;
pub mod runner;
pub mod server;

pub use client::{
    choose_access_quorum, resolve_read, Client, ProtocolError, ReadOutcome, WriteOutcome,
};
pub use cluster::Cluster;
pub use epoch::EpochGate;
pub use fault::FaultPlan;
pub use multi_writer::{run_multi_writer_workload, MultiWriterClient, MultiWriterReport};
pub use runner::{run_workload, SimReport, WorkloadConfig};
pub use server::{mix64, Behavior, ByzantineStrategy, Entry, Replica, Timestamp, Value};

/// Convenient glob import for examples and benches.
pub mod prelude {
    pub use crate::client::{
        choose_access_quorum, resolve_read, Client, ProtocolError, ReadOutcome, WriteOutcome,
    };
    pub use crate::cluster::Cluster;
    pub use crate::epoch::EpochGate;
    pub use crate::fault::FaultPlan;
    pub use crate::multi_writer::{
        run_multi_writer_workload, MultiWriterClient, MultiWriterReport,
    };
    pub use crate::runner::{run_workload, SimReport, WorkloadConfig};
    pub use crate::server::{mix64, Behavior, ByzantineStrategy, Entry, Replica, Timestamp, Value};
}
