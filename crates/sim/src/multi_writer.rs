//! Multi-writer replicated register over b-masking quorum systems.
//!
//! The single-writer client in [`crate::client`] uses a local write counter; with
//! several writers that is not enough, so this module implements the standard
//! read-modify-write timestamping of the [MR98a]/[MR98b] protocols:
//!
//! * **Write(v)** — first query a quorum for the highest safe timestamp (masking the
//!   `b` possibly-lying servers exactly as a read does), then write `v` with a
//!   timestamp strictly larger than it, tie-broken by the writer's id so that two
//!   writers never produce the same timestamp.
//! * **Read()** — identical to the single-writer read.
//!
//! With sequential (non-overlapping) operations this implements an atomic register:
//! every read returns the value of the most recent completed write, regardless of
//! which writer performed it, despite up to `b` Byzantine servers. The workload
//! runner below drives several writers round-robin and checks exactly that.

use rand::Rng;

use bqs_core::quorum::QuorumSystem;

use crate::client::ProtocolError;
use crate::cluster::Cluster;
use crate::fault::FaultPlan;
use crate::server::{Entry, Timestamp, Value};

/// A writer/reader participant in the multi-writer protocol.
#[derive(Debug, Clone)]
pub struct MultiWriterClient<Q> {
    system: Q,
    b: usize,
    writer_id: u64,
    writer_count: u64,
}

impl<Q: QuorumSystem> MultiWriterClient<Q> {
    /// Creates a client with the given writer identity (`writer_id < writer_count`).
    ///
    /// # Panics
    ///
    /// Panics if `writer_id >= writer_count` or `writer_count == 0`.
    #[must_use]
    pub fn new(system: Q, b: usize, writer_id: u64, writer_count: u64) -> Self {
        assert!(
            writer_count > 0 && writer_id < writer_count,
            "invalid writer identity"
        );
        MultiWriterClient {
            system,
            b,
            writer_id,
            writer_count,
        }
    }

    /// The writer identity used for timestamp tie-breaking.
    #[must_use]
    pub fn writer_id(&self) -> u64 {
        self.writer_id
    }

    fn choose_quorum<R: Rng>(
        &self,
        cluster: &Cluster,
        rng: &mut R,
    ) -> Result<bqs_core::bitset::ServerSet, ProtocolError> {
        let responsive = cluster.responsive_set();
        for _ in 0..8 {
            let sampled = self.system.sample_quorum(rng);
            if sampled.is_subset_of(&responsive) {
                return Ok(sampled);
            }
        }
        self.system
            .find_live_quorum(&responsive)
            .ok_or(ProtocolError::NoLiveQuorum)
    }

    /// Collects replies from a quorum and returns the safe entries (reported by at
    /// least `b + 1` servers), sorted by timestamp.
    fn safe_entries<R: Rng>(
        &self,
        cluster: &mut Cluster,
        rng: &mut R,
    ) -> Result<Vec<Entry>, ProtocolError> {
        let quorum = self.choose_quorum(cluster, rng)?;
        let replies = cluster.deliver_read(&quorum, rng);
        let mut support: Vec<(Entry, usize)> = Vec::new();
        for (_, reply) in replies.into_iter() {
            if let Some(entry) = reply {
                match support.iter_mut().find(|(e, _)| *e == entry) {
                    Some((_, count)) => *count += 1,
                    None => support.push((entry, 1)),
                }
            }
        }
        let mut safe: Vec<Entry> = support
            .into_iter()
            .filter(|&(_, count)| count > self.b)
            .map(|(e, _)| e)
            .collect();
        safe.sort_unstable();
        Ok(safe)
    }

    /// Reads the register.
    ///
    /// # Errors
    ///
    /// [`ProtocolError::NoLiveQuorum`] if no responsive quorum exists;
    /// [`ProtocolError::NoSafeValue`] before the first write completes.
    pub fn read<R: Rng>(&self, cluster: &mut Cluster, rng: &mut R) -> Result<Entry, ProtocolError> {
        let safe = self.safe_entries(cluster, rng)?;
        safe.into_iter()
            .max_by_key(|e| e.timestamp)
            .ok_or(ProtocolError::NoSafeValue)
    }

    /// Writes `value`, choosing a timestamp larger than any safe timestamp observed
    /// in a query round, tie-broken by writer id.
    ///
    /// # Errors
    ///
    /// [`ProtocolError::NoLiveQuorum`] if no responsive quorum exists for either the
    /// query or the write round.
    pub fn write<R: Rng>(
        &self,
        cluster: &mut Cluster,
        value: Value,
        rng: &mut R,
    ) -> Result<Timestamp, ProtocolError> {
        // Query round: the highest safe timestamp (0 if nothing was ever written).
        let highest = match self.safe_entries(cluster, rng) {
            Ok(entries) => entries.iter().map(|e| e.timestamp).max().unwrap_or(0),
            Err(ProtocolError::NoSafeValue) => 0,
            Err(e) => return Err(e),
        };
        // Next timestamp owned by this writer: round numbers are multiples of
        // writer_count plus writer_id, so distinct writers never collide.
        let current_round = highest / self.writer_count;
        let timestamp = (current_round + 1) * self.writer_count + self.writer_id;
        let quorum = self.choose_quorum(cluster, rng)?;
        cluster.deliver_write(&quorum, Entry { timestamp, value });
        Ok(timestamp)
    }
}

/// Result of a multi-writer workload.
#[derive(Debug, Clone)]
pub struct MultiWriterReport {
    /// Writes that completed, per writer.
    pub writes_per_writer: Vec<usize>,
    /// Reads that completed.
    pub reads_completed: usize,
    /// Reads that returned something other than the last completed write.
    pub safety_violations: usize,
    /// Operations that found no live quorum.
    pub unavailable_operations: usize,
}

impl MultiWriterReport {
    /// True when no read ever returned a stale or fabricated value.
    #[must_use]
    pub fn is_safe(&self) -> bool {
        self.safety_violations == 0
    }
}

/// Runs a sequential multi-writer workload: `writers` clients take turns writing and
/// a reader validates after every operation that the freshest completed write is
/// returned.
pub fn run_multi_writer_workload<Q, R>(
    make_system: impl Fn() -> Q,
    b: usize,
    writers: usize,
    plan: FaultPlan,
    operations: usize,
    rng: &mut R,
) -> MultiWriterReport
where
    Q: QuorumSystem,
    R: Rng,
{
    assert!(writers > 0, "need at least one writer");
    let mut cluster = Cluster::new(plan);
    let clients: Vec<MultiWriterClient<Q>> = (0..writers)
        .map(|w| MultiWriterClient::new(make_system(), b, w as u64, writers as u64))
        .collect();
    let reader = MultiWriterClient::new(make_system(), b, 0, writers as u64);

    let mut report = MultiWriterReport {
        writes_per_writer: vec![0; writers],
        reads_completed: 0,
        safety_violations: 0,
        unavailable_operations: 0,
    };
    let mut last_write: Option<(Timestamp, Value)> = None;
    let mut next_value: Value = 1;

    for op in 0..operations {
        let writer = op % writers;
        if last_write.is_none() || rng.gen::<f64>() < 0.4 {
            match clients[writer].write(&mut cluster, next_value, rng) {
                Ok(ts) => {
                    last_write = Some((ts, next_value));
                    next_value += 1;
                    report.writes_per_writer[writer] += 1;
                }
                Err(ProtocolError::NoLiveQuorum) => report.unavailable_operations += 1,
                Err(ProtocolError::NoSafeValue) => unreachable!("writes tolerate empty registers"),
            }
        } else {
            match reader.read(&mut cluster, rng) {
                Ok(entry) => {
                    report.reads_completed += 1;
                    if let Some((ts, value)) = last_write {
                        if entry.timestamp != ts || entry.value != value {
                            report.safety_violations += 1;
                        }
                    }
                }
                Err(ProtocolError::NoLiveQuorum) => report.unavailable_operations += 1,
                Err(ProtocolError::NoSafeValue) => {
                    if last_write.is_some() {
                        report.safety_violations += 1;
                    }
                }
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::ByzantineStrategy;
    use bqs_constructions::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn writer_identity_validation() {
        let sys = ThresholdSystem::minimal_masking(1).unwrap();
        let c = MultiWriterClient::new(sys, 1, 2, 3);
        assert_eq!(c.writer_id(), 2);
    }

    #[test]
    #[should_panic(expected = "invalid writer identity")]
    fn writer_id_must_be_in_range() {
        let sys = ThresholdSystem::minimal_masking(1).unwrap();
        let _ = MultiWriterClient::new(sys, 1, 3, 3);
    }

    #[test]
    fn timestamps_from_distinct_writers_never_collide() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut cluster = Cluster::new(FaultPlan::none(5));
        let make = || ThresholdSystem::minimal_masking(1).unwrap();
        let w0 = MultiWriterClient::new(make(), 1, 0, 2);
        let w1 = MultiWriterClient::new(make(), 1, 1, 2);
        let mut seen = Vec::new();
        for i in 0..10u64 {
            let ts = if i % 2 == 0 {
                w0.write(&mut cluster, i, &mut rng).unwrap()
            } else {
                w1.write(&mut cluster, i, &mut rng).unwrap()
            };
            assert!(!seen.contains(&ts), "timestamp {ts} reused");
            // Timestamps are strictly increasing across the sequential history.
            if let Some(&last) = seen.last() {
                assert!(ts > last);
            }
            seen.push(ts);
        }
    }

    #[test]
    fn sequential_multi_writer_history_is_consistent() {
        let mut rng = StdRng::seed_from_u64(2);
        let report = run_multi_writer_workload(
            || MGridSystem::new(5, 2).unwrap(),
            2,
            3,
            FaultPlan::none(25),
            400,
            &mut rng,
        );
        assert!(report.is_safe(), "{report:?}");
        assert!(report.reads_completed > 0);
        assert!(report.writes_per_writer.iter().all(|&w| w > 0));
        assert_eq!(report.unavailable_operations, 0);
    }

    #[test]
    fn multi_writer_masks_byzantine_servers() {
        let mut rng = StdRng::seed_from_u64(3);
        let plan = FaultPlan::none(9)
            .with_byzantine(1, ByzantineStrategy::FabricateHighTimestamp { value: 0xE7 })
            .with_byzantine(6, ByzantineStrategy::Equivocate);
        let report = run_multi_writer_workload(
            || ThresholdSystem::minimal_masking(2).unwrap(),
            2,
            2,
            plan,
            400,
            &mut rng,
        );
        assert!(report.is_safe(), "{report:?}");
    }

    #[test]
    fn multi_writer_with_crashes_degrades_to_unavailability_only() {
        let mut rng = StdRng::seed_from_u64(4);
        let plan = FaultPlan::none(5).with_crashed(0).with_crashed(1);
        let report = run_multi_writer_workload(
            || ThresholdSystem::minimal_masking(1).unwrap(),
            1,
            2,
            plan,
            100,
            &mut rng,
        );
        assert!(report.is_safe());
        assert_eq!(report.reads_completed, 0);
        assert_eq!(report.unavailable_operations, 100);
    }
}
