//! The simulated server cluster.
//!
//! A [`Cluster`] owns the replicas created from a [`FaultPlan`](crate::fault::FaultPlan)
//! and routes protocol messages to them, tracking per-server access counts so the
//! empirical load of an access strategy can be measured and compared with the
//! analytic load `L(Q)` of the quorum system in use.

use rand::Rng;

use bqs_core::bitset::ServerSet;

use crate::fault::FaultPlan;
use crate::server::{Entry, Replica};

/// A set of simulated replicas addressed by server index.
#[derive(Debug, Clone)]
pub struct Cluster {
    replicas: Vec<Replica>,
}

impl Cluster {
    /// Instantiates the cluster described by a fault plan.
    #[must_use]
    pub fn new(plan: FaultPlan) -> Self {
        Cluster {
            replicas: plan.build_replicas(),
        }
    }

    /// Number of servers.
    #[must_use]
    pub fn len(&self) -> usize {
        self.replicas.len()
    }

    /// True when the cluster has no servers.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.replicas.is_empty()
    }

    /// Read-only access to a replica (for assertions in tests and reports).
    #[must_use]
    pub fn replica(&self, i: usize) -> &Replica {
        &self.replicas[i]
    }

    /// The set of servers a client's failure detector would consider responsive
    /// (everything except crashed and silent-Byzantine servers).
    #[must_use]
    pub fn responsive_set(&self) -> ServerSet {
        ServerSet::from_indices(
            self.replicas.len(),
            self.replicas
                .iter()
                .enumerate()
                .filter(|(_, r)| r.is_responsive())
                .map(|(i, _)| i),
        )
    }

    /// Delivers a write to every server in `quorum`.
    pub fn deliver_write(&mut self, quorum: &ServerSet, entry: Entry) {
        for i in quorum.iter() {
            self.replicas[i].deliver_write(entry);
        }
    }

    /// Delivers a read to every server in `quorum`, collecting the replies.
    /// The single-threaded simulator has one implicit client, so the read
    /// carries origin 0; use [`Cluster::deliver_read_from`] to model distinct
    /// client identities (per-client equivocation).
    pub fn deliver_read<R: Rng + ?Sized>(
        &mut self,
        quorum: &ServerSet,
        rng: &mut R,
    ) -> Vec<(usize, Option<Entry>)> {
        self.deliver_read_from(0, quorum, rng)
    }

    /// Delivers a read on behalf of the client identified by `origin`.
    pub fn deliver_read_from<R: Rng + ?Sized>(
        &mut self,
        origin: u64,
        quorum: &ServerSet,
        rng: &mut R,
    ) -> Vec<(usize, Option<Entry>)> {
        quorum
            .iter()
            .map(|i| (i, self.replicas[i].deliver_read(origin, rng)))
            .collect()
    }

    /// Per-server access counts accumulated so far.
    #[must_use]
    pub fn access_counts(&self) -> Vec<u64> {
        self.replicas.iter().map(Replica::accesses).collect()
    }

    /// The empirical load: each server's access count divided by the number of
    /// operations, with the maximum corresponding to `L_w(Q)` of Definition 3.8.
    #[must_use]
    pub fn empirical_loads(&self, operations: u64) -> Vec<f64> {
        self.replicas
            .iter()
            .map(|r| r.accesses() as f64 / operations.max(1) as f64)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::ByzantineStrategy;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn responsive_set_excludes_crashed_and_silent() {
        let plan = FaultPlan::none(5)
            .with_crashed(1)
            .with_byzantine(3, ByzantineStrategy::Silent)
            .with_byzantine(4, ByzantineStrategy::Equivocate);
        let cluster = Cluster::new(plan);
        assert_eq!(cluster.responsive_set().to_vec(), vec![0, 2, 4]);
        assert_eq!(cluster.len(), 5);
        assert!(!cluster.is_empty());
    }

    #[test]
    fn writes_and_reads_are_routed_and_counted() {
        let mut cluster = Cluster::new(FaultPlan::none(4));
        let mut rng = StdRng::seed_from_u64(0);
        let quorum = ServerSet::from_indices(4, [0, 2]);
        cluster.deliver_write(
            &quorum,
            Entry {
                timestamp: 1,
                value: 9,
            },
        );
        let replies = cluster.deliver_read(&quorum, &mut rng);
        assert_eq!(replies.len(), 2);
        assert!(replies.iter().all(|(_, r)| r.map(|e| e.value) == Some(9)));
        assert_eq!(cluster.access_counts(), vec![2, 0, 2, 0]);
        let loads = cluster.empirical_loads(2);
        assert_eq!(loads, vec![1.0, 0.0, 1.0, 0.0]);
    }
}
