//! Whole-workload simulation and consistency checking.
//!
//! [`run_workload`] drives a single-writer/multi-reader workload over a cluster with
//! injected faults and checks, operation by operation, that every read returns the
//! value of the most recent completed write — the register semantics that a
//! b-masking quorum system is supposed to preserve under `b` Byzantine servers.
//! It also records per-server access frequencies so the empirical load of the
//! system's access strategy can be compared with the analytic `L(Q)`.

use rand::Rng;

use bqs_core::quorum::QuorumSystem;

use crate::client::{Client, ProtocolError};
use crate::cluster::Cluster;
use crate::fault::FaultPlan;

/// Configuration of a simulated workload.
#[derive(Debug, Clone, Copy)]
pub struct WorkloadConfig {
    /// Total number of operations to attempt.
    pub operations: usize,
    /// Fraction of operations that are writes (the rest are reads).
    pub write_fraction: f64,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        WorkloadConfig {
            operations: 1000,
            write_fraction: 0.2,
        }
    }
}

/// The result of a simulated workload.
#[derive(Debug, Clone)]
pub struct SimReport {
    /// Number of write operations that completed.
    pub writes_completed: usize,
    /// Number of read operations that completed.
    pub reads_completed: usize,
    /// Number of operations that could not find a live quorum (availability loss).
    pub unavailable_operations: usize,
    /// Number of reads that returned a value other than the last completed write —
    /// must be zero whenever the fault plan respects the system's masking level.
    pub safety_violations: usize,
    /// Number of reads whose safe set was empty (can only happen before any write).
    pub inconclusive_reads: usize,
    /// Per-server empirical access frequency (accesses / operations attempted).
    pub empirical_loads: Vec<f64>,
}

impl SimReport {
    /// The empirical system load: the busiest server's access frequency.
    #[must_use]
    pub fn max_empirical_load(&self) -> f64 {
        self.empirical_loads.iter().copied().fold(0.0, f64::max)
    }

    /// True when every completed read returned the freshest written value.
    #[must_use]
    pub fn is_safe(&self) -> bool {
        self.safety_violations == 0
    }
}

/// Runs a single-writer workload over `system` (masking level `b`) with the failures
/// described by `plan`.
pub fn run_workload<Q, R>(
    system: Q,
    b: usize,
    plan: FaultPlan,
    config: WorkloadConfig,
    rng: &mut R,
) -> SimReport
where
    Q: QuorumSystem,
    R: Rng,
{
    let mut cluster = Cluster::new(plan);
    let mut client = Client::new(system, b);
    let mut report = SimReport {
        writes_completed: 0,
        reads_completed: 0,
        unavailable_operations: 0,
        safety_violations: 0,
        inconclusive_reads: 0,
        empirical_loads: Vec::new(),
    };
    let mut last_written: Option<u64> = None;
    let mut next_value: u64 = 1;

    for op in 0..config.operations {
        let do_write = last_written.is_none() || rng.gen::<f64>() < config.write_fraction;
        if do_write {
            match client.write(&mut cluster, next_value, rng) {
                Ok(_) => {
                    last_written = Some(next_value);
                    next_value += 1;
                    report.writes_completed += 1;
                }
                Err(ProtocolError::NoLiveQuorum) => report.unavailable_operations += 1,
                Err(ProtocolError::NoSafeValue) => unreachable!("writes cannot lack safe values"),
            }
        } else {
            match client.read(&mut cluster, rng) {
                Ok(outcome) => {
                    report.reads_completed += 1;
                    if Some(outcome.value) != last_written {
                        report.safety_violations += 1;
                    }
                }
                Err(ProtocolError::NoLiveQuorum) => report.unavailable_operations += 1,
                Err(ProtocolError::NoSafeValue) => report.inconclusive_reads += 1,
            }
        }
        let _ = op;
    }

    report.empirical_loads = cluster.empirical_loads(config.operations as u64);
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::ByzantineStrategy;
    use bqs_constructions::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn failure_free_workload_is_safe_and_available() {
        let mut rng = StdRng::seed_from_u64(1);
        let sys = MGridSystem::new(5, 2).unwrap();
        let report = run_workload(
            sys,
            2,
            FaultPlan::none(25),
            WorkloadConfig {
                operations: 400,
                write_fraction: 0.3,
            },
            &mut rng,
        );
        assert!(report.is_safe());
        assert_eq!(report.unavailable_operations, 0);
        assert_eq!(report.inconclusive_reads, 0);
        assert!(report.writes_completed > 0 && report.reads_completed > 0);
    }

    #[test]
    fn empirical_load_matches_analytic_load_without_failures() {
        // With no failures every access uses the sampled (optimal-strategy) quorum,
        // so the busiest server's frequency converges to L(Q).
        let mut rng = StdRng::seed_from_u64(2);
        let sys = MGridSystem::new(7, 3).unwrap();
        let analytic = sys.analytic_load();
        let report = run_workload(
            sys,
            3,
            FaultPlan::none(49),
            WorkloadConfig {
                operations: 3000,
                write_fraction: 0.5,
            },
            &mut rng,
        );
        let empirical = report.max_empirical_load();
        assert!(
            (empirical - analytic).abs() < 0.08,
            "empirical {empirical} vs analytic {analytic}"
        );
    }

    #[test]
    fn byzantine_servers_up_to_b_never_violate_safety() {
        let mut rng = StdRng::seed_from_u64(3);
        let sys = ThresholdSystem::minimal_masking(2).unwrap();
        let plan = FaultPlan::none(9)
            .with_byzantine(
                0,
                ByzantineStrategy::FabricateHighTimestamp { value: 999_999 },
            )
            .with_byzantine(5, ByzantineStrategy::Equivocate);
        let report = run_workload(
            sys,
            2,
            plan,
            WorkloadConfig {
                operations: 500,
                write_fraction: 0.2,
            },
            &mut rng,
        );
        assert!(report.is_safe(), "{report:?}");
        assert_eq!(report.unavailable_operations, 0);
    }

    #[test]
    fn exceeding_b_byzantine_servers_can_violate_safety() {
        // Negative control: with 2b+1 colluding fabricators the masking threshold is
        // defeated and the simulator must detect safety violations. This is exactly
        // the attack the 2b+1 intersection bound defends against.
        let mut rng = StdRng::seed_from_u64(4);
        let sys = ThresholdSystem::minimal_masking(1).unwrap(); // b = 1, n = 5
        let plan = FaultPlan::none(5)
            .with_byzantine(0, ByzantineStrategy::FabricateHighTimestamp { value: 666 })
            .with_byzantine(1, ByzantineStrategy::FabricateHighTimestamp { value: 666 })
            .with_byzantine(2, ByzantineStrategy::FabricateHighTimestamp { value: 666 });
        let report = run_workload(
            sys,
            1,
            plan,
            WorkloadConfig {
                operations: 300,
                write_fraction: 0.2,
            },
            &mut rng,
        );
        assert!(
            report.safety_violations > 0,
            "3 fabricators against b=1 should break safety: {report:?}"
        );
    }

    #[test]
    fn crashes_beyond_resilience_cause_unavailability_not_unsafety() {
        let mut rng = StdRng::seed_from_u64(5);
        let sys = ThresholdSystem::minimal_masking(1).unwrap(); // 4-of-5, tolerates 1 crash
        let plan = FaultPlan::none(5).with_crashed(0).with_crashed(1);
        let report = run_workload(
            sys,
            1,
            plan,
            WorkloadConfig {
                operations: 100,
                write_fraction: 0.5,
            },
            &mut rng,
        );
        assert_eq!(report.unavailable_operations, 100);
        assert!(report.is_safe());
    }

    #[test]
    fn hybrid_faults_byzantine_plus_crashes() {
        // boostFPP(2, 1): b = 1 Byzantine plus several crashes (f = (b+1)(q+1)-1 = 5).
        let mut rng = StdRng::seed_from_u64(6);
        let sys = BoostFppSystem::new(2, 1).unwrap();
        let n = sys.universe_size();
        let plan = FaultPlan::none(n)
            .with_byzantine(
                3,
                ByzantineStrategy::FabricateHighTimestamp { value: 424_242 },
            )
            .with_crashed(10)
            .with_crashed(16)
            .with_crashed(22);
        let report = run_workload(
            sys,
            1,
            plan,
            WorkloadConfig {
                operations: 300,
                write_fraction: 0.3,
            },
            &mut rng,
        );
        assert!(report.is_safe(), "{report:?}");
        assert!(report.reads_completed > 0);
    }

    #[test]
    fn mpath_workload_with_faults_is_safe() {
        let mut rng = StdRng::seed_from_u64(7);
        let sys = MPathSystem::new(6, 2).unwrap();
        let plan = FaultPlan::none(36)
            .with_byzantine(14, ByzantineStrategy::Equivocate)
            .with_byzantine(21, ByzantineStrategy::StaleReplay)
            .with_crashed(0);
        let report = run_workload(
            sys,
            2,
            plan,
            WorkloadConfig {
                operations: 200,
                write_fraction: 0.3,
            },
            &mut rng,
        );
        assert!(report.is_safe(), "{report:?}");
        assert!(report.reads_completed > 0);
    }
}
