//! The masking-quorum read/write protocol ([MR98a]).
//!
//! The client implements the replicated read/write register that motivates b-masking
//! quorum systems:
//!
//! * **Write(v)** — pick a quorum, send `(ts, v)` with a fresh timestamp to every
//!   server in it.
//! * **Read()** — pick a quorum, collect each server's `(ts, v)` reply, keep only the
//!   pairs reported by at least `b + 1` servers (the *safe* set), and return the
//!   value with the highest timestamp among them.
//!
//! Because any read quorum intersects any write quorum in at least `2b + 1` servers
//! (Definition 3.5), at least `b + 1` *correct* servers in the intersection hold the
//! latest completed write, so its pair is always safe; and any pair fabricated by the
//! at most `b` Byzantine servers appears at most `b` times, so it never is. Under
//! failures the client selects its quorum among the servers its failure detector
//! considers responsive, using [`QuorumSystem::find_live_quorum`].

use rand::Rng;

use bqs_core::bitset::ServerSet;
use bqs_core::quorum::QuorumSystem;

use crate::cluster::Cluster;
use crate::server::{Entry, Timestamp, Value};

/// Errors surfaced by the protocol client.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProtocolError {
    /// No quorum consists entirely of responsive servers; the operation cannot make
    /// progress (availability loss, not a safety violation).
    NoLiveQuorum,
    /// A read gathered no safe value: fewer than `b + 1` servers agreed on any pair.
    /// With a correct quorum system and at most `b` Byzantine servers this can only
    /// happen before the first write completes.
    NoSafeValue,
}

impl std::fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtocolError::NoLiveQuorum => write!(f, "no quorum of responsive servers exists"),
            ProtocolError::NoSafeValue => {
                write!(f, "no value was reported by at least b+1 servers")
            }
        }
    }
}

impl std::error::Error for ProtocolError {}

/// The outcome of a successful read.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReadOutcome {
    /// The value returned to the application.
    pub value: Value,
    /// Its timestamp.
    pub timestamp: Timestamp,
    /// The quorum that was contacted.
    pub quorum: ServerSet,
    /// All safe (≥ b+1 supported) entries that were observed, for diagnostics.
    pub safe_entries: Vec<Entry>,
}

/// The outcome of a successful write.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WriteOutcome {
    /// The timestamp assigned to the write.
    pub timestamp: Timestamp,
    /// The quorum that was contacted.
    pub quorum: ServerSet,
}

/// Chooses an access quorum against a failure detector's `responsive` view: a
/// sampled quorum when every member is responsive (the fast path that realises
/// the access strategy's load profile), retrying the sample a few times under
/// sporadic failures, and falling back to deterministic live-quorum discovery
/// only when sampling repeatedly fails.
///
/// This is the shared quorum-selection policy of the single-threaded
/// simulator's [`Client`] and of the concurrent `bqs-service` clients.
///
/// # Errors
///
/// Returns [`ProtocolError::NoLiveQuorum`] when no quorum consists entirely of
/// responsive servers.
pub fn choose_access_quorum<Q, R>(
    system: &Q,
    responsive: &ServerSet,
    rng: &mut R,
) -> Result<ServerSet, ProtocolError>
where
    Q: QuorumSystem + ?Sized,
    R: Rng,
{
    const SAMPLE_ATTEMPTS: usize = 8;
    for _ in 0..SAMPLE_ATTEMPTS {
        let sampled = system.sample_quorum(rng);
        if sampled.is_subset_of(responsive) {
            return Ok(sampled);
        }
    }
    system
        .find_live_quorum(responsive)
        .ok_or(ProtocolError::NoLiveQuorum)
}

/// Resolves a read from per-server replies by the masking rule: keep only the
/// entries reported by at least `b + 1` servers (the *safe* set) and return
/// the one with the highest timestamp, together with the full safe set sorted
/// for diagnostics.
///
/// Shared by the simulator's [`Client::read`] and the concurrent
/// `bqs-service` clients — the safety argument (any pair fabricated by at
/// most `b` Byzantine servers has at most `b` supporters) lives here once.
///
/// # Errors
///
/// Returns [`ProtocolError::NoSafeValue`] when no pair had `b + 1` supporters.
pub fn resolve_read(
    replies: &[(usize, Option<Entry>)],
    b: usize,
) -> Result<(Entry, Vec<Entry>), ProtocolError> {
    // Count support per distinct entry.
    let mut support: Vec<(Entry, usize)> = Vec::new();
    for (_, reply) in replies {
        if let Some(entry) = reply {
            match support.iter_mut().find(|(e, _)| e == entry) {
                Some((_, count)) => *count += 1,
                None => support.push((*entry, 1)),
            }
        }
    }
    let mut safe_entries: Vec<Entry> = support
        .into_iter()
        .filter(|&(_, count)| count > b)
        .map(|(e, _)| e)
        .collect();
    safe_entries.sort_unstable();
    let best = safe_entries
        .iter()
        .max_by_key(|e| e.timestamp)
        .copied()
        .ok_or(ProtocolError::NoSafeValue)?;
    Ok((best, safe_entries))
}

/// A protocol client bound to a quorum system and a masking level `b`.
#[derive(Debug, Clone)]
pub struct Client<Q> {
    system: Q,
    b: usize,
    next_timestamp: Timestamp,
}

impl<Q: QuorumSystem> Client<Q> {
    /// Creates a client over the given b-masking quorum system.
    #[must_use]
    pub fn new(system: Q, b: usize) -> Self {
        Client {
            system,
            b,
            next_timestamp: 1,
        }
    }

    /// The quorum system the client uses.
    #[must_use]
    pub fn system(&self) -> &Q {
        &self.system
    }

    /// The masking level `b` the client assumes.
    #[must_use]
    pub fn masking_b(&self) -> usize {
        self.b
    }

    /// Chooses an access quorum via the shared [`choose_access_quorum`] policy
    /// against the cluster's failure-detector view.
    fn choose_quorum<R: Rng>(
        &self,
        cluster: &Cluster,
        rng: &mut R,
    ) -> Result<ServerSet, ProtocolError> {
        choose_access_quorum(&self.system, &cluster.responsive_set(), rng)
    }

    /// Writes `value` to the register.
    ///
    /// # Errors
    ///
    /// Returns [`ProtocolError::NoLiveQuorum`] when no quorum of responsive servers
    /// exists.
    pub fn write<R: Rng>(
        &mut self,
        cluster: &mut Cluster,
        value: Value,
        rng: &mut R,
    ) -> Result<WriteOutcome, ProtocolError> {
        let quorum = self.choose_quorum(cluster, rng)?;
        let timestamp = self.next_timestamp;
        self.next_timestamp += 1;
        cluster.deliver_write(&quorum, Entry { timestamp, value });
        Ok(WriteOutcome { timestamp, quorum })
    }

    /// Reads the register, masking up to `b` Byzantine replies.
    ///
    /// # Errors
    ///
    /// Returns [`ProtocolError::NoLiveQuorum`] when no quorum of responsive servers
    /// exists, or [`ProtocolError::NoSafeValue`] when no pair had `b + 1` supporters
    /// (only possible before the first write completes).
    pub fn read<R: Rng>(
        &self,
        cluster: &mut Cluster,
        rng: &mut R,
    ) -> Result<ReadOutcome, ProtocolError> {
        let quorum = self.choose_quorum(cluster, rng)?;
        let replies = cluster.deliver_read(&quorum, rng);
        let (best, safe_entries) = resolve_read(&replies, self.b)?;
        Ok(ReadOutcome {
            value: best.value,
            timestamp: best.timestamp,
            quorum,
            safe_entries,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::FaultPlan;
    use crate::server::ByzantineStrategy;
    use bqs_constructions::threshold::ThresholdSystem;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup(b: usize, plan: FaultPlan) -> (Client<ThresholdSystem>, Cluster, StdRng) {
        let system = ThresholdSystem::minimal_masking(b).unwrap();
        let cluster = Cluster::new(plan);
        (Client::new(system, b), cluster, StdRng::seed_from_u64(42))
    }

    #[test]
    fn read_your_write_without_failures() {
        let (mut client, mut cluster, mut rng) = setup(1, FaultPlan::none(5));
        client.write(&mut cluster, 77, &mut rng).unwrap();
        let read = client.read(&mut cluster, &mut rng).unwrap();
        assert_eq!(read.value, 77);
        assert_eq!(read.timestamp, 1);
    }

    #[test]
    fn read_before_any_write_has_no_safe_value() {
        let (client, mut cluster, mut rng) = setup(1, FaultPlan::none(5));
        assert_eq!(
            client.read(&mut cluster, &mut rng).unwrap_err(),
            ProtocolError::NoSafeValue
        );
    }

    #[test]
    fn fabricated_high_timestamp_is_masked() {
        // b = 1 over 5 servers; one Byzantine server fabricates value 666 with
        // timestamp MAX. The read must still return the honestly written value.
        let plan = FaultPlan::none(5)
            .with_byzantine(2, ByzantineStrategy::FabricateHighTimestamp { value: 666 });
        let (mut client, mut cluster, mut rng) = setup(1, plan);
        client.write(&mut cluster, 10, &mut rng).unwrap();
        for _ in 0..20 {
            let r = client.read(&mut cluster, &mut rng).unwrap();
            assert_eq!(r.value, 10, "fabricated value leaked through masking");
            assert!(r.safe_entries.iter().all(|e| e.value != 666));
        }
    }

    #[test]
    fn stale_replay_is_outvoted_by_fresh_writes() {
        let plan = FaultPlan::none(5).with_byzantine(0, ByzantineStrategy::StaleReplay);
        let (mut client, mut cluster, mut rng) = setup(1, plan);
        client.write(&mut cluster, 1, &mut rng).unwrap();
        client.write(&mut cluster, 2, &mut rng).unwrap();
        client.write(&mut cluster, 3, &mut rng).unwrap();
        let r = client.read(&mut cluster, &mut rng).unwrap();
        assert_eq!(r.value, 3);
    }

    #[test]
    fn crashes_up_to_resilience_do_not_block_progress() {
        // Thresh(4-of-5) has MT = 2, so it tolerates one crash.
        let plan = FaultPlan::none(5).with_crashed(4);
        let (mut client, mut cluster, mut rng) = setup(1, plan);
        client.write(&mut cluster, 5, &mut rng).unwrap();
        let r = client.read(&mut cluster, &mut rng).unwrap();
        assert_eq!(r.value, 5);
    }

    #[test]
    fn too_many_crashes_block_progress_but_not_safety() {
        let plan = FaultPlan::none(5).with_crashed(0).with_crashed(1);
        let (mut client, mut cluster, mut rng) = setup(1, plan);
        assert_eq!(
            client.write(&mut cluster, 5, &mut rng).unwrap_err(),
            ProtocolError::NoLiveQuorum
        );
    }

    #[test]
    fn equivocating_servers_cannot_reach_safety_threshold() {
        let plan = FaultPlan::none(9)
            .with_byzantine(0, ByzantineStrategy::Equivocate)
            .with_byzantine(1, ByzantineStrategy::Equivocate);
        let system = ThresholdSystem::minimal_masking(2).unwrap();
        let mut client = Client::new(system, 2);
        let mut cluster = Cluster::new(plan);
        let mut rng = StdRng::seed_from_u64(9);
        client.write(&mut cluster, 123, &mut rng).unwrap();
        for _ in 0..10 {
            let r = client.read(&mut cluster, &mut rng).unwrap();
            assert_eq!(r.value, 123);
        }
    }
}
