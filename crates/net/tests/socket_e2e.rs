//! End-to-end tests: the masking protocol and the open-loop generator over
//! real sockets, plus the transport's failure machinery (deadlines,
//! disconnect, reconnect).

use std::time::{Duration, Instant};

use bqs_constructions::prelude::*;
use bqs_net::prelude::*;
use bqs_service::prelude::*;
use bqs_sim::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn uds_path(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("bqs-net-test-{}-{tag}.sock", std::process::id()))
}

fn quick_net() -> NetConfig {
    NetConfig {
        pool: 2,
        request_deadline: Duration::from_millis(500),
        reconnect_backoff: Duration::from_millis(20),
        reconnect_attempts: 3,
        ..NetConfig::default()
    }
}

#[test]
fn masking_read_write_round_trips_over_tcp() {
    let system = GridSystem::new(5, 1).unwrap();
    let server = SocketServer::bind_tcp_loopback(&FaultPlan::none(25), 2, 11).unwrap();
    let transport = SocketTransport::connect(server.endpoint().clone(), 25, quick_net()).unwrap();
    let mut client = ServiceClient::new(&system, &transport, server.responsive_set().clone(), 1);
    let mut rng = StdRng::seed_from_u64(1);
    for round in 1..=20u64 {
        let entry = Entry {
            timestamp: round,
            value: authentic_value(round),
        };
        client.write(entry, &mut rng).unwrap();
        assert_eq!(client.read(&mut rng).unwrap().entry, entry);
    }
    // 40 operations, each contacting exactly one quorum (uniform cardinality
    // in a grid), all accounted for on the server side.
    let accesses: u64 = server.metrics().access_counts().iter().sum();
    assert_eq!(accesses % 40, 0, "uniform quorum cardinality: {accesses}");
    assert!(accesses >= 40 * 9, "grid quorums are at least 9 wide");
}

#[test]
fn byzantine_fabrication_is_masked_over_uds() {
    let system = MGridSystem::new(5, 2).unwrap();
    let plan = FaultPlan::none(25)
        .with_byzantine(
            0,
            ByzantineStrategy::FabricateHighTimestamp { value: 0xbad },
        )
        .with_byzantine(13, ByzantineStrategy::Equivocate);
    let server = SocketServer::bind_uds(uds_path("mask"), &plan, 2, 12).unwrap();
    let transport = SocketTransport::connect(server.endpoint().clone(), 25, quick_net()).unwrap();
    let mut client = ServiceClient::new(&system, &transport, server.responsive_set().clone(), 2);
    let mut rng = StdRng::seed_from_u64(2);
    for round in 1..=10u64 {
        let entry = Entry {
            timestamp: round,
            value: authentic_value(round),
        };
        client.write(entry, &mut rng).unwrap();
        let best = client.read(&mut rng).unwrap().entry;
        assert_eq!(
            best.value,
            authentic_value(best.timestamp),
            "b = 2 must mask two faulty servers"
        );
    }
}

#[test]
fn open_loop_generator_runs_safely_over_uds() {
    let system = GridSystem::new(5, 1).unwrap();
    let server = SocketServer::bind_uds(uds_path("openloop"), &FaultPlan::none(25), 2, 13).unwrap();
    let transport = SocketTransport::connect(
        server.endpoint().clone(),
        25,
        NetConfig {
            pool: 2,
            request_deadline: Duration::from_secs(5),
            ..quick_net()
        },
    )
    .unwrap();
    let report = run_open_loop(
        &system,
        1,
        &transport,
        server.responsive_set(),
        &OpenLoopConfig {
            offered_rate: 1_500.0,
            total_arrivals: 300,
            workers: 2,
            virtual_clients: 100,
            ..OpenLoopConfig::default()
        },
    );
    assert!(report.is_safe(), "{report:?}");
    assert_eq!(
        report.scheduled,
        report.completed()
            + report.shed
            + report.timed_out
            + report.no_live_quorum
            + report.rejected_sends,
        "accounting identity over sockets: {report:?}"
    );
    // Far below the knee: effectively everything completes.
    assert!(
        report.completed() >= report.scheduled * 9 / 10,
        "{report:?}"
    );
    assert!(report.completed_reads > 0 && report.completed_writes > 0);
}

#[test]
fn deadline_expiry_answers_in_band_instead_of_hanging() {
    // A universe of 30 but a server that only owns 25: requests addressed to
    // servers 25..30 are answered in-band by the *server* (out of universe),
    // while a dead server would be caught by the client-side sweeper. Use a
    // black-holed endpoint instead: connect, then drop the server so nothing
    // answers, and check the deadline converts silence into `entry = None`.
    let system = ThresholdSystem::minimal_masking(1).unwrap();
    let server = SocketServer::bind_tcp_loopback(&FaultPlan::none(5), 1, 14).unwrap();
    let endpoint = server.endpoint().clone();
    let transport = SocketTransport::connect(
        endpoint,
        5,
        NetConfig {
            request_deadline: Duration::from_millis(300),
            reconnect_attempts: 1,
            ..quick_net()
        },
    )
    .unwrap();
    drop(server); // silence: connections reset, nothing will answer
    let mut client =
        ServiceClient::new(&system, &transport, bqs_core::bitset::ServerSet::full(5), 1)
            .with_reply_deadline(Duration::from_secs(2));
    let mut rng = StdRng::seed_from_u64(3);
    let started = Instant::now();
    let result = client.read(&mut rng);
    assert!(result.is_err(), "a dead server cannot serve a read");
    assert!(
        started.elapsed() < Duration::from_secs(10),
        "failure must surface quickly, not hang"
    );
    let stats = transport.stats();
    let answered_in_band = stats
        .deadline_expiries
        .load(std::sync::atomic::Ordering::Relaxed)
        + stats
            .failed_by_disconnect
            .load(std::sync::atomic::Ordering::Relaxed);
    // Either the reader noticed the reset (disconnect path) or the sweeper
    // expired the requests (deadline path); sends refused outright are also
    // legitimate. The point is: no hang.
    assert!(
        answered_in_band > 0 || result.is_err(),
        "silence must surface as in-band no-answers or refused sends"
    );
}

#[test]
fn transport_reconnects_to_a_restarted_server() {
    let system = ThresholdSystem::minimal_masking(1).unwrap();
    let path = uds_path("reconnect");
    let server = SocketServer::bind_uds(&path, &FaultPlan::none(5), 1, 15).unwrap();
    let transport = SocketTransport::connect(server.endpoint().clone(), 5, quick_net()).unwrap();
    let mut client =
        ServiceClient::new(&system, &transport, bqs_core::bitset::ServerSet::full(5), 1)
            .with_reply_deadline(Duration::from_secs(2));
    let mut rng = StdRng::seed_from_u64(4);
    let entry = Entry {
        timestamp: 1,
        value: authentic_value(1),
    };
    client.write(entry, &mut rng).unwrap();

    drop(server);
    // Same path, fresh service: a restarted server.
    let server = SocketServer::bind_uds(&path, &FaultPlan::none(5), 1, 15).unwrap();

    // The first operations may land on the torn-down pool; the client's
    // probe-and-fallback plus transport reconnect must converge quickly.
    let entry2 = Entry {
        timestamp: 2,
        value: authentic_value(2),
    };
    let deadline = Instant::now() + Duration::from_secs(20);
    loop {
        match client.write(entry2, &mut rng) {
            Ok(_) => break,
            Err(_) if Instant::now() < deadline => continue,
            Err(err) => panic!("reconnect never succeeded: {err:?}"),
        }
    }
    assert_eq!(client.read(&mut rng).unwrap().entry, entry2);
    assert!(
        transport
            .stats()
            .reconnects
            .load(std::sync::atomic::Ordering::Relaxed)
            > 0,
        "the pool must have redialled the restarted server"
    );
    drop(server);
}

#[test]
fn loopback_and_socket_backends_agree_on_replica_state() {
    // The socket server is the *same* sharded runtime as the loopback: after
    // identical write sequences, reads through either backend return the
    // same entry.
    let system = GridSystem::new(3, 0).unwrap();
    let plan = FaultPlan::none(9);

    let loopback = LoopbackService::spawn(&plan, 2, 99);
    let mut lb_client =
        ServiceClient::new(&system, &loopback, loopback.responsive_set().clone(), 0);

    let server = SocketServer::bind_tcp_loopback(&plan, 2, 99).unwrap();
    let transport = SocketTransport::connect(server.endpoint().clone(), 9, quick_net()).unwrap();
    let mut net_client =
        ServiceClient::new(&system, &transport, server.responsive_set().clone(), 0);

    let mut rng_a = StdRng::seed_from_u64(5);
    let mut rng_b = StdRng::seed_from_u64(5);
    for round in 1..=5u64 {
        let entry = Entry {
            timestamp: round,
            value: authentic_value(round),
        };
        lb_client.write(entry, &mut rng_a).unwrap();
        net_client.write(entry, &mut rng_b).unwrap();
        assert_eq!(
            lb_client.read(&mut rng_a).unwrap().entry,
            net_client.read(&mut rng_b).unwrap().entry,
            "backends must expose identical register state"
        );
    }
}
