//! Corruption striking *inside* a `WireBatch` frame, spanning a reconnect
//! boundary: the frame decoder must reject the damaged batch whole, resync to
//! the next magic, and the server connection (old and new) must keep serving
//! well-formed traffic as if nothing happened.

use std::io::{Read, Write};
use std::time::{Duration, Instant};

use bqs_constructions::prelude::*;
use bqs_net::codec::{
    encode_request, encode_request_batch, FrameReader, WireMessage, WireRequest, HEADER_LEN, MAGIC,
};
use bqs_net::prelude::*;
use bqs_service::prelude::*;
use bqs_sim::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn read_batch(first_id: u64, servers: &[usize]) -> Vec<WireRequest> {
    servers
        .iter()
        .enumerate()
        .map(|(i, &server)| WireRequest {
            request_id: first_id + i as u64,
            server,
            epoch: 0,
            op: Operation::Read,
        })
        .collect()
}

/// Pumps `stream` through a fresh [`FrameReader`] until `want` replies arrive
/// (or panics at the deadline).
fn collect_replies(stream: &mut Stream, want: usize) -> Vec<Reply> {
    stream
        .set_read_timeout(Some(Duration::from_millis(100)))
        .unwrap();
    let mut reader = FrameReader::new();
    let mut replies = Vec::new();
    let mut chunk = [0u8; 512];
    let deadline = Instant::now() + Duration::from_secs(10);
    while replies.len() < want {
        assert!(Instant::now() < deadline, "server stopped answering");
        match stream.read(&mut chunk) {
            Ok(0) => panic!("server closed the connection"),
            Ok(n) => {
                reader.push(&chunk[..n]);
                while let Some(message) = reader.next_message() {
                    match message {
                        WireMessage::Reply(reply) => replies.push(reply),
                        WireMessage::Request(_) => panic!("server must only send replies"),
                    }
                }
            }
            Err(ref err) if Stream::is_timeout(err) => continue,
            Err(err) => panic!("read failed: {err}"),
        }
    }
    replies
}

/// A reader fed the *tail* of a batch frame — what a peer that reconnected
/// mid-frame replays — must scan past the orphaned item bytes and decode the
/// next well-formed frame.
#[test]
fn frame_reader_resyncs_from_a_mid_batch_cut() {
    let batch = read_batch(10, &[0, 1, 2, 3]);
    let mut wire = Vec::new();
    encode_request_batch(&batch, &mut wire);

    // Cut inside the second item: the bytes after the cut start mid-item,
    // with no header in sight.
    let cut = HEADER_LEN + 2 + 22 + 7;
    let tail = &wire[cut..];
    let good = WireRequest {
        request_id: 99,
        server: 4,
        epoch: 0,
        op: Operation::Read,
    };
    let mut replayed = tail.to_vec();
    encode_request(&good, &mut replayed);

    let mut reader = FrameReader::new();
    reader.push(&replayed);
    assert_eq!(
        reader.next_message(),
        Some(WireMessage::Request(good)),
        "the orphaned batch tail must be scanned past, not misparsed"
    );
    assert_eq!(reader.next_message(), None);
    assert!(reader.resyncs() >= 1, "the scan must be counted");
    assert_eq!(reader.buffered(), 0);
}

/// Corruption lands mid-`WireBatch` on a live server connection, the client
/// tears the connection down (a truncated batch dies with it), reconnects,
/// and sends a batch whose middle item is garbled followed by clean traffic.
/// The server must discard the damaged batch whole, resync, and answer every
/// well-formed request — on both sides of the reconnect boundary.
#[test]
fn server_survives_batch_corruption_across_a_reconnect() {
    let server = SocketServer::bind_tcp_loopback(&FaultPlan::none(5), 1, 21).unwrap();

    // Connection one: a healthy batch (proves the path works), then a batch
    // frame truncated mid-item, then a hard teardown.
    let mut first = server.endpoint().connect().unwrap();
    let healthy = read_batch(1, &[0, 1, 2]);
    let mut wire = Vec::new();
    encode_request_batch(&healthy, &mut wire);
    first.write_all(&wire).unwrap();
    let replies = collect_replies(&mut first, 3);
    assert!(replies.iter().all(|r| r.entry.is_none()), "empty register");

    let truncated_batch = read_batch(4, &[0, 1, 2, 3]);
    let mut wire = Vec::new();
    encode_request_batch(&truncated_batch, &mut wire);
    first.write_all(&wire[..HEADER_LEN + 2 + 22 + 5]).unwrap();
    first.flush().unwrap();
    first.shutdown();
    drop(first);

    // Connection two: a batch with its middle item corrupted, then a good
    // single frame. The batch is rejected whole; the single frame answers.
    let mut second = server.endpoint().connect().unwrap();
    let damaged = read_batch(20, &[0, 1, 2]);
    let mut wire = Vec::new();
    encode_request_batch(&damaged, &mut wire);
    wire[HEADER_LEN + 2 + 22] = 0xee; // second item's kind byte
    let good = WireRequest {
        request_id: 42,
        server: 4,
        epoch: 0,
        op: Operation::Write(Entry {
            timestamp: 1,
            value: authentic_value(1),
        }),
    };
    encode_request(&good, &mut wire);
    second.write_all(&wire).unwrap();
    let replies = collect_replies(&mut second, 1);
    assert_eq!(replies[0].request_id, 42, "only the clean frame answers");
    assert_eq!(replies[0].server, 4);
    assert_eq!(replies[0].entry, None, "write acks carry no entry");

    // The write behind the corrupted batch must have been applied, and none
    // of the damaged batch's reads may have been salvaged and answered.
    let probe = WireRequest {
        request_id: 43,
        server: 4,
        epoch: 0,
        op: Operation::Read,
    };
    let mut wire = Vec::new();
    encode_request(&probe, &mut wire);
    second.write_all(&wire).unwrap();
    let replies = collect_replies(&mut second, 1);
    assert_eq!(replies[0].request_id, 43);
    assert_eq!(
        replies[0].entry,
        Some(Entry {
            timestamp: 1,
            value: authentic_value(1),
        }),
        "the clean write after the damaged batch was applied"
    );
    drop(second);

    // And the full pooled transport still runs the masking protocol against
    // the same server instance: the corruption episodes left no debris.
    let system = ThresholdSystem::minimal_masking(1).unwrap();
    let transport = SocketTransport::connect(
        server.endpoint().clone(),
        5,
        NetConfig {
            pool: 2,
            request_deadline: Duration::from_millis(500),
            ..NetConfig::default()
        },
    )
    .unwrap();
    let mut client = ServiceClient::new(&system, &transport, server.responsive_set().clone(), 1);
    let mut rng = StdRng::seed_from_u64(6);
    let entry = Entry {
        timestamp: 2,
        value: authentic_value(2),
    };
    client.write(entry, &mut rng).unwrap();
    assert_eq!(client.read(&mut rng).unwrap().entry, entry);
}

/// Garbage with an embedded magic *inside* a corrupt batch payload must not
/// derail recovery: the resync scan starts inside the frame and may land on
/// that embedded header, then keeps scanning to the genuine next frame.
#[test]
fn embedded_magic_inside_a_corrupt_batch_does_not_derail_resync() {
    let batch = read_batch(30, &[0, 1]);
    let mut wire = Vec::new();
    encode_request_batch(&batch, &mut wire);
    // Garble the first item AND plant a magic mid-payload with a bogus length.
    wire[HEADER_LEN + 2] = 0xee;
    wire[HEADER_LEN + 2 + 3..HEADER_LEN + 2 + 3 + MAGIC.len()].copy_from_slice(&MAGIC);
    let good = WireRequest {
        request_id: 77,
        server: 3,
        epoch: 0,
        op: Operation::Read,
    };
    encode_request(&good, &mut wire);

    let mut reader = FrameReader::new();
    reader.push(&wire);
    assert_eq!(reader.next_message(), Some(WireMessage::Request(good)));
    assert!(reader.resyncs() >= 1);
}
