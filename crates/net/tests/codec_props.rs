//! Property tests for the wire codec (satellite of the socket-transport PR):
//! random-message round-trips, torn-frame re-synchronisation under random
//! chunking and garbage injection, and oversized-frame rejection.

use bqs_net::codec::{
    encode_reply, encode_reply_batch, encode_request, encode_request_batch, FrameReader,
    WireMessage, WireRequest, HEADER_LEN, MAGIC, MAX_PAYLOAD,
};
use bqs_service::transport::{Operation, Reply};
use bqs_sim::server::Entry;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Deterministic pseudo-random message batch derived from one seed.
fn random_messages(seed: u64, count: usize) -> Vec<WireMessage> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..count)
        .map(|_| {
            let request_id: u64 = rng.gen();
            let server = rng.gen_range_u64(0, u64::from(u32::MAX)) as usize;
            let epoch: u64 = rng.gen();
            let entry = Entry {
                timestamp: rng.gen(),
                value: rng.gen(),
            };
            match rng.gen_range_u64(0, 5) {
                0 => WireMessage::Request(WireRequest {
                    request_id,
                    server,
                    epoch,
                    op: Operation::Read,
                }),
                1 => WireMessage::Request(WireRequest {
                    request_id,
                    server,
                    epoch,
                    op: Operation::Write(entry),
                }),
                2 => WireMessage::Reply(Reply {
                    server,
                    request_id,
                    entry: None,
                    epoch,
                    stale: false,
                }),
                3 => WireMessage::Reply(Reply {
                    server,
                    request_id,
                    entry: Some(entry),
                    epoch,
                    stale: false,
                }),
                // The fenced frame: stale flag set, no entry, the epoch is
                // the server's current one.
                _ => WireMessage::Reply(Reply {
                    server,
                    request_id,
                    entry: None,
                    epoch,
                    stale: true,
                }),
            }
        })
        .collect()
}

fn encode_all(messages: &[WireMessage]) -> Vec<u8> {
    let mut wire = Vec::new();
    for message in messages {
        match message {
            WireMessage::Request(request) => encode_request(request, &mut wire),
            WireMessage::Reply(reply) => encode_reply(reply, &mut wire),
        }
    }
    wire
}

/// Encodes the same message sequence through the batch encoders: maximal
/// same-kind runs become `WireBatch` frames (chunked at `MAX_BATCH` inside
/// the encoders), preserving order across run boundaries.
fn encode_all_batched(messages: &[WireMessage]) -> Vec<u8> {
    let mut wire = Vec::new();
    let mut requests: Vec<WireRequest> = Vec::new();
    let mut replies: Vec<Reply> = Vec::new();
    for message in messages {
        match message {
            WireMessage::Request(request) => {
                if !replies.is_empty() {
                    encode_reply_batch(&replies, &mut wire);
                    replies.clear();
                }
                requests.push(*request);
            }
            WireMessage::Reply(reply) => {
                if !requests.is_empty() {
                    encode_request_batch(&requests, &mut wire);
                    requests.clear();
                }
                replies.push(*reply);
            }
        }
    }
    encode_request_batch(&requests, &mut wire);
    encode_reply_batch(&replies, &mut wire);
    wire
}

fn decode_all(reader: &mut FrameReader) -> Vec<WireMessage> {
    let mut out = Vec::new();
    while let Some(message) = reader.next_message() {
        out.push(message);
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Whatever goes in comes back out, frame for frame.
    fn round_trip_random_messages(seed in 0u64..1_000_000, count in 1usize..40) {
        let messages = random_messages(seed, count);
        let mut reader = FrameReader::new();
        reader.push(&encode_all(&messages));
        prop_assert_eq!(decode_all(&mut reader), messages);
        prop_assert_eq!(reader.resyncs(), 0);
        prop_assert_eq!(reader.buffered(), 0);
    }

    /// Message boundaries never matter: any chunking of the byte stream
    /// (including 1-byte dribbles) decodes to the same frames in order.
    fn round_trip_survives_arbitrary_chunking(
        seed in 0u64..1_000_000,
        count in 1usize..16,
        chunk in 1usize..64,
    ) {
        let messages = random_messages(seed, count);
        let wire = encode_all(&messages);
        let mut reader = FrameReader::new();
        let mut decoded = Vec::new();
        for piece in wire.chunks(chunk) {
            reader.push(piece);
            decoded.extend(decode_all(&mut reader));
        }
        prop_assert_eq!(decoded, messages);
    }

    /// A torn/corrupt prefix costs the frames it overlaps, never the stream:
    /// after random garbage, the next intact frame decodes.
    fn resynchronises_after_garbage(
        seed in 0u64..1_000_000,
        garbage_len in 1usize..48,
        count in 1usize..8,
    ) {
        let messages = random_messages(seed, count);
        let mut rng = StdRng::seed_from_u64(seed ^ 0xdead);
        // Garbage that never contains a full magic: flip one magic byte.
        let garbage: Vec<u8> = (0..garbage_len)
            .map(|_| {
                let b = rng.gen::<u64>() as u8;
                if b == MAGIC[0] { b ^ 0x80 } else { b }
            })
            .collect();
        let mut wire = garbage;
        wire.extend_from_slice(&encode_all(&messages));
        let mut reader = FrameReader::new();
        reader.push(&wire);
        prop_assert_eq!(decode_all(&mut reader), messages);
        prop_assert!(reader.resyncs() >= 1);
    }

    /// A length prefix above the cap is rejected without buffering the
    /// claimed payload, and decoding resumes at the next intact frame.
    fn oversized_frames_are_rejected(
        seed in 0u64..1_000_000,
        excess in 1u64..1_000_000_000,
        count in 1usize..8,
    ) {
        let messages = random_messages(seed, count);
        let claimed = (MAX_PAYLOAD as u64 + excess).min(u64::from(u32::MAX)) as u32;
        let mut wire = Vec::new();
        wire.extend_from_slice(&MAGIC);
        wire.extend_from_slice(&claimed.to_le_bytes());
        wire.extend_from_slice(&encode_all(&messages));
        let mut reader = FrameReader::new();
        reader.push(&wire);
        prop_assert_eq!(decode_all(&mut reader), messages);
        prop_assert!(reader.oversized() >= 1);
        prop_assert!(reader.buffered() < HEADER_LEN + MAX_PAYLOAD);
    }

    /// Batched encoding is transparent: the same message sequence, pushed
    /// through the batch encoders, decodes to the identical frame stream —
    /// and never costs more bytes than one frame per message.
    fn batched_round_trip_matches_unbatched(seed in 0u64..1_000_000, count in 1usize..200) {
        let messages = random_messages(seed, count);
        let batched = encode_all_batched(&messages);
        prop_assert!(batched.len() <= encode_all(&messages).len());
        let mut reader = FrameReader::new();
        reader.push(&batched);
        prop_assert_eq!(decode_all(&mut reader), messages);
        prop_assert_eq!(reader.resyncs(), 0);
        prop_assert_eq!(reader.buffered(), 0);
    }

    /// Batch frame boundaries never matter either: any chunking of the
    /// batched byte stream (1-byte dribbles included) decodes to the same
    /// messages in order.
    fn batched_round_trip_survives_arbitrary_chunking(
        seed in 0u64..1_000_000,
        count in 1usize..80,
        chunk in 1usize..64,
    ) {
        let messages = random_messages(seed, count);
        let wire = encode_all_batched(&messages);
        let mut reader = FrameReader::new();
        let mut decoded = Vec::new();
        for piece in wire.chunks(chunk) {
            reader.push(piece);
            decoded.extend(decode_all(&mut reader));
        }
        prop_assert_eq!(decoded, messages);
    }

    /// The resync contract holds for batch frames: after random garbage, the
    /// next intact batch decodes in full.
    fn batched_stream_resynchronises_after_garbage(
        seed in 0u64..1_000_000,
        garbage_len in 1usize..48,
        count in 1usize..40,
    ) {
        let messages = random_messages(seed, count);
        let mut rng = StdRng::seed_from_u64(seed ^ 0xbeef);
        let garbage: Vec<u8> = (0..garbage_len)
            .map(|_| {
                let b = rng.gen::<u64>() as u8;
                if b == MAGIC[0] { b ^ 0x80 } else { b }
            })
            .collect();
        let mut wire = garbage;
        wire.extend_from_slice(&encode_all_batched(&messages));
        let mut reader = FrameReader::new();
        reader.push(&wire);
        prop_assert_eq!(decode_all(&mut reader), messages);
        prop_assert!(reader.resyncs() >= 1);
    }

    /// A batch whose count byte is corrupted — any flip, any batch size — is
    /// rejected *whole* (one resync, no partial salvage, no fabrication) and
    /// the next intact frames decode untouched.
    fn corrupt_batch_count_rejects_the_whole_batch(
        seed in 0u64..1_000_000,
        count in 2usize..65,
        flip in 1u32..256,
    ) {
        let flip = flip as u8;
        // All requests, 2..=MAX_BATCH of them: exactly one batch frame.
        let mut rng = StdRng::seed_from_u64(seed);
        let requests: Vec<WireRequest> = (0..count)
            .map(|_| WireRequest {
                request_id: rng.gen(),
                server: rng.gen_range_u64(0, u64::from(u32::MAX)) as usize,
                epoch: rng.gen(),
                op: if rng.gen_range_u64(0, 2) == 0 {
                    Operation::Read
                } else {
                    Operation::Write(Entry { timestamp: rng.gen(), value: rng.gen() })
                },
            })
            .collect();
        let mut wire = Vec::new();
        encode_request_batch(&requests, &mut wire);
        prop_assert_eq!(wire[HEADER_LEN + 1] as usize, count, "count byte location");
        let tail = random_messages(seed ^ 1, 3);
        wire.extend_from_slice(&encode_all_batched(&tail));
        // Any corruption of the count makes the item bytes inconsistent with
        // the claimed count, so the whole batch must be rejected.
        wire[HEADER_LEN + 1] ^= flip;
        let mut reader = FrameReader::new();
        reader.push(&wire);
        prop_assert_eq!(decode_all(&mut reader), tail);
        prop_assert!(reader.resyncs() >= 1);
    }

    /// Pure noise never panics the reader and never fabricates a frame
    /// stream longer than the noise could encode.
    fn random_noise_never_panics(seed in 0u64..1_000_000, len in 0usize..512) {
        let mut rng = StdRng::seed_from_u64(seed);
        let noise: Vec<u8> = (0..len).map(|_| rng.gen::<u64>() as u8).collect();
        let mut reader = FrameReader::new();
        reader.push(&noise);
        let decoded = decode_all(&mut reader);
        // Every fabricated frame consumes at least a header's worth of noise.
        prop_assert!(decoded.len() <= len / HEADER_LEN + 1);
    }
}
