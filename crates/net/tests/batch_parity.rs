//! Batched-vs-unbatched parity: coalescing is a transport optimisation, not
//! a semantic change. The same deterministic operation sequence must produce
//! the identical reply stream whether requests travel as per-request frames
//! or as coalesced `WireBatch` frames, and whether the backend is the
//! in-process loopback, a Unix-domain socket, or TCP.

use std::time::Duration;

use bqs_constructions::prelude::*;
use bqs_net::prelude::*;
use bqs_service::prelude::*;
use bqs_sim::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

const UNIVERSE: usize = 25;
const SHARDS: usize = 2;
const SERVICE_SEED: u64 = 41;
const CLIENT_SEED: u64 = 42;

fn net(batching: bool) -> NetConfig {
    NetConfig {
        pool: 2,
        request_deadline: Duration::from_secs(5),
        batching,
        ..NetConfig::default()
    }
}

/// Runs the canonical operation sequence — interleaved writes and reads,
/// deterministic quorum choices from a fixed seed — and returns the stream
/// of entries the reads observed.
fn run_sequence(transport: &dyn Transport, responsive: bqs_core::bitset::ServerSet) -> Vec<Entry> {
    let system = GridSystem::new(5, 1).unwrap();
    let mut client = ServiceClient::new(&system, transport, responsive, 1);
    let mut rng = StdRng::seed_from_u64(CLIENT_SEED);
    let mut observed = Vec::new();
    for round in 1..=15u64 {
        let entry = Entry {
            timestamp: round,
            value: authentic_value(round),
        };
        client.write(entry, &mut rng).unwrap();
        observed.push(client.read(&mut rng).unwrap().entry);
        // A second read per round exercises read-after-read stability too.
        observed.push(client.read(&mut rng).unwrap().entry);
    }
    observed
}

#[test]
fn reply_streams_agree_across_backends_and_batching_modes() {
    let plan = FaultPlan::none(UNIVERSE);
    let uds_path = |tag: &str| {
        std::env::temp_dir().join(format!("bqs-parity-{}-{tag}.sock", std::process::id()))
    };

    // Reference: the in-process loopback (always batched via `send_batch`).
    let loopback = LoopbackService::spawn(&plan, SHARDS, SERVICE_SEED);
    let reference = run_sequence(&loopback, loopback.responsive_set().clone());
    assert_eq!(reference.len(), 30);

    // Every socket variant must reproduce the reference stream exactly.
    for (label, batching, tcp) in [
        ("uds batched", true, false),
        ("uds unbatched", false, false),
        ("tcp batched", true, true),
        ("tcp unbatched", false, true),
    ] {
        let server = if tcp {
            SocketServer::bind_tcp_loopback(&plan, SHARDS, SERVICE_SEED).unwrap()
        } else {
            SocketServer::bind_uds(uds_path(label), &plan, SHARDS, SERVICE_SEED).unwrap()
        };
        let transport =
            SocketTransport::connect(server.endpoint().clone(), UNIVERSE, net(batching)).unwrap();
        let observed = run_sequence(&transport, server.responsive_set().clone());
        assert_eq!(
            observed, reference,
            "{label}: reply stream diverged from the loopback reference"
        );
    }
}

#[test]
fn batching_survives_a_byzantine_plan_identically() {
    // Parity must hold under faults too: the masking protocol's view of a
    // fabricating server cannot depend on how frames were coalesced.
    let plan = FaultPlan::none(UNIVERSE)
        .with_byzantine(
            3,
            ByzantineStrategy::FabricateHighTimestamp { value: 0xbad },
        )
        .with_crashed(7);
    let run = |batching: bool| {
        let server = SocketServer::bind_tcp_loopback(&plan, SHARDS, SERVICE_SEED).unwrap();
        let transport =
            SocketTransport::connect(server.endpoint().clone(), UNIVERSE, net(batching)).unwrap();
        run_sequence(&transport, server.responsive_set().clone())
    };
    let batched = run(true);
    let unbatched = run(false);
    assert_eq!(batched, unbatched);
    // And the masking rule held throughout: every observed value authentic.
    for entry in &batched {
        assert_eq!(entry.value, authentic_value(entry.timestamp));
    }
}
