//! The client side: a pooled socket [`Transport`] with reconnection and
//! per-request deadlines.
//!
//! [`SocketTransport`] implements the service's [`Transport`] seam over a
//! small pool of connections to one [`crate::server::SocketServer`]. The
//! protocol and generator layers above it are unchanged from the loopback
//! path — that is the point of the seam.
//!
//! Three mechanisms make the socket path honest about failure:
//!
//! * **Correlation.** Requests from many client threads multiplex onto the
//!   pooled connections, so replies are matched back through
//!   [`Reply::request_id`] in a per-connection pending table. Requests map to
//!   connections by server index, preserving per-server FIFO ordering.
//! * **Deadlines as the failure detector.** A background sweeper expires
//!   pending requests whose reply has not arrived within
//!   [`NetConfig::request_deadline`] and answers them *in-band* with the
//!   "no answer" frame (`entry = None`) — exactly what a crashed replica
//!   produces — so the masking protocol's `b + 1`-support rule handles lost
//!   messages and dead servers uniformly, and no caller ever hangs on an
//!   accepted request.
//! * **Reconnect with backoff.** A dead connection fails its in-flight
//!   requests immediately (in-band, again) and is re-established lazily by
//!   the next send, with linearly growing backoff between attempts. Requests
//!   that cannot be written after the attempt budget are refused
//!   (`send` returns `false`), which callers already treat as transport
//!   failure.
//!
//! One id must be in flight at most once per transport (the pending table is
//! keyed on it); the open-loop generator and `ServiceClient` both allocate
//! ids that way.

use std::collections::HashMap;
use std::io::Write;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use bqs_service::transport::{Reply, Request, Transport};

use crate::codec::{encode_request, FrameReader, WireMessage, WireRequest};
use crate::stream::{Endpoint, Stream};

/// How often blocked reads and the deadline sweeper wake.
const TICK: Duration = Duration::from_millis(20);

/// Tuning for a [`SocketTransport`].
#[derive(Debug, Clone, Copy)]
pub struct NetConfig {
    /// Connections in the pool (requests map to them by server index).
    pub pool: usize,
    /// How long a request may await its reply before the sweeper answers it
    /// with the in-band no-answer frame.
    pub request_deadline: Duration,
    /// Base pause between reconnect attempts (grows linearly per attempt).
    pub reconnect_backoff: Duration,
    /// Reconnect attempts per send before the send is refused.
    pub reconnect_attempts: u32,
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig {
            pool: 2,
            request_deadline: Duration::from_secs(5),
            reconnect_backoff: Duration::from_millis(50),
            reconnect_attempts: 4,
        }
    }
}

/// Observability counters for a transport's failure machinery.
#[derive(Debug, Default)]
pub struct NetStats {
    /// Successful (re)connections beyond the initial pool setup.
    pub reconnects: AtomicU64,
    /// Requests answered in-band by the deadline sweeper.
    pub deadline_expiries: AtomicU64,
    /// Requests answered in-band because their connection died.
    pub failed_by_disconnect: AtomicU64,
}

/// A request awaiting its wire reply.
struct Pending {
    server: usize,
    deadline: Instant,
    reply: std::sync::mpsc::Sender<Reply>,
}

/// The write half of one pooled connection.
struct Writer {
    stream: Option<Stream>,
    buf: Vec<u8>,
}

/// One pooled connection: pending table + write half; the read half lives in
/// a per-stream reader thread.
struct Conn {
    endpoint: Endpoint,
    pending: Mutex<HashMap<u64, Pending>>,
    writer: Mutex<Writer>,
    /// Bumped per (re)connection so a dying reader only tears down its own
    /// generation's stream, never a fresh replacement.
    generation: AtomicU64,
    shutdown: Arc<AtomicBool>,
    readers: Mutex<Vec<JoinHandle<()>>>,
    stats: Arc<NetStats>,
}

/// A pooled, reconnecting client transport to one socket server.
pub struct SocketTransport {
    universe: usize,
    config: NetConfig,
    conns: Vec<Arc<Conn>>,
    shutdown: Arc<AtomicBool>,
    stats: Arc<NetStats>,
    sweeper: Option<JoinHandle<()>>,
}

impl std::fmt::Debug for SocketTransport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SocketTransport")
            .field("universe", &self.universe)
            .field("pool", &self.conns.len())
            .finish_non_exhaustive()
    }
}

impl SocketTransport {
    /// Connects a pool of [`NetConfig::pool`] streams to `endpoint`, serving
    /// a universe of `universe` servers. Fails if the initial connections
    /// cannot be established.
    pub fn connect(
        endpoint: Endpoint,
        universe: usize,
        config: NetConfig,
    ) -> std::io::Result<Self> {
        assert!(universe > 0, "a transport needs a non-empty universe");
        let config = NetConfig {
            pool: config.pool.max(1),
            ..config
        };
        let shutdown = Arc::new(AtomicBool::new(false));
        let stats = Arc::new(NetStats::default());
        let mut conns = Vec::with_capacity(config.pool);
        for _ in 0..config.pool {
            let conn = Arc::new(Conn {
                endpoint: endpoint.clone(),
                pending: Mutex::new(HashMap::new()),
                writer: Mutex::new(Writer {
                    stream: None,
                    buf: Vec::with_capacity(256),
                }),
                generation: AtomicU64::new(0),
                shutdown: Arc::clone(&shutdown),
                readers: Mutex::new(Vec::new()),
                stats: Arc::clone(&stats),
            });
            {
                let mut writer = conn.writer.lock().expect("writer lock");
                open_stream(&conn, &mut writer)?;
            }
            conns.push(conn);
        }
        let sweeper = {
            let conns = conns.clone();
            let shutdown = Arc::clone(&shutdown);
            let stats = Arc::clone(&stats);
            std::thread::spawn(move || sweep_deadlines(&conns, &shutdown, &stats))
        };
        Ok(SocketTransport {
            universe,
            config,
            conns,
            shutdown,
            stats,
            sweeper: Some(sweeper),
        })
    }

    /// The transport's failure-machinery counters.
    #[must_use]
    pub fn stats(&self) -> &NetStats {
        &self.stats
    }
}

impl Transport for SocketTransport {
    fn universe_size(&self) -> usize {
        self.universe
    }

    fn send(&self, request: Request) -> bool {
        if self.shutdown.load(Ordering::SeqCst) || request.server >= self.universe {
            return false;
        }
        let conn = &self.conns[request.server % self.conns.len()];
        // Register before writing: the reply can race back before the write
        // call even returns.
        conn.pending.lock().expect("pending lock").insert(
            request.request_id,
            Pending {
                server: request.server,
                deadline: Instant::now() + self.config.request_deadline,
                reply: request.reply,
            },
        );
        let wire = WireRequest {
            request_id: request.request_id,
            server: request.server,
            op: request.op,
        };
        let written = {
            let mut writer = conn.writer.lock().expect("writer lock");
            write_with_reconnect(conn, &mut writer, &wire, &self.config)
        };
        if !written {
            conn.pending
                .lock()
                .expect("pending lock")
                .remove(&request.request_id);
        }
        written
    }
}

impl Drop for SocketTransport {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        for conn in &self.conns {
            if let Some(stream) = &conn.writer.lock().expect("writer lock").stream {
                stream.shutdown();
            }
        }
        if let Some(handle) = self.sweeper.take() {
            let _ = handle.join();
        }
        for conn in &self.conns {
            let readers = std::mem::take(&mut *conn.readers.lock().expect("reader registry"));
            for handle in readers {
                let _ = handle.join();
            }
        }
    }
}

/// Encodes and writes one request, re-establishing the connection with
/// backoff when it is down. Returns `false` once the attempt budget is
/// exhausted (the caller unregisters the request).
fn write_with_reconnect(
    conn: &Arc<Conn>,
    writer: &mut Writer,
    wire: &WireRequest,
    config: &NetConfig,
) -> bool {
    for attempt in 0..=config.reconnect_attempts {
        if conn.shutdown.load(Ordering::SeqCst) {
            return false;
        }
        if attempt > 0 {
            std::thread::sleep(config.reconnect_backoff * attempt);
        }
        if writer.stream.is_none() {
            if open_stream(conn, writer).is_err() {
                continue;
            }
            conn.stats.reconnects.fetch_add(1, Ordering::Relaxed);
        }
        writer.buf.clear();
        encode_request(wire, &mut writer.buf);
        let stream = writer.stream.as_mut().expect("stream was just ensured");
        if stream.write_all(&writer.buf).is_ok() {
            return true;
        }
        // Dead connection: drop it so the next attempt redials, and fail
        // whatever else was in flight on it (the reader usually beats us to
        // this when the peer resets cleanly).
        stream.shutdown();
        writer.stream = None;
        fail_all_pending(conn);
    }
    false
}

/// Dials the connection's endpoint and spawns the reader thread for the new
/// stream. Called under the writer lock.
fn open_stream(conn: &Arc<Conn>, writer: &mut Writer) -> std::io::Result<()> {
    let stream = conn.endpoint.connect()?;
    let _ = stream.set_nodelay();
    let reader_stream = stream.try_clone()?;
    let _ = reader_stream.set_read_timeout(Some(TICK));
    let generation = conn.generation.fetch_add(1, Ordering::SeqCst) + 1;
    writer.stream = Some(stream);
    let handle = {
        let conn = Arc::clone(conn);
        std::thread::spawn(move || read_replies(&conn, reader_stream, generation))
    };
    conn.readers.lock().expect("reader registry").push(handle);
    Ok(())
}

/// Reads reply frames off one stream and routes them to their waiting
/// requests; on stream death, fails this connection's in-flight requests
/// in-band.
fn read_replies(conn: &Arc<Conn>, mut stream: Stream, my_generation: u64) {
    use std::io::Read;
    let mut frames = FrameReader::new();
    let mut chunk = [0u8; 16 * 1024];
    loop {
        if conn.shutdown.load(Ordering::SeqCst) {
            return;
        }
        match stream.read(&mut chunk) {
            Ok(0) => break,
            Ok(got) => {
                frames.push(&chunk[..got]);
                while let Some(message) = frames.next_message() {
                    let reply = match message {
                        WireMessage::Reply(reply) => reply,
                        WireMessage::Request(_) => continue, // confused peer
                    };
                    let pending = conn
                        .pending
                        .lock()
                        .expect("pending lock")
                        .remove(&reply.request_id);
                    if let Some(pending) = pending {
                        let _ = pending.reply.send(reply);
                    }
                }
            }
            Err(err) if Stream::is_timeout(&err) => continue,
            Err(_) => break,
        }
    }
    // Only tear down the stream if no reconnect has superseded this reader.
    if conn.generation.load(Ordering::SeqCst) == my_generation {
        if let Ok(mut writer) = conn.writer.lock() {
            if conn.generation.load(Ordering::SeqCst) == my_generation {
                writer.stream = None;
            }
        }
        fail_all_pending(conn);
    }
}

/// Answers every in-flight request on `conn` with the in-band no-answer
/// frame: their connection is gone, and a lost reply is indistinguishable
/// from a crashed server — which is exactly how the protocol treats it.
fn fail_all_pending(conn: &Conn) {
    let drained: Vec<(u64, Pending)> = conn.pending.lock().expect("pending lock").drain().collect();
    for (request_id, pending) in drained {
        conn.stats
            .failed_by_disconnect
            .fetch_add(1, Ordering::Relaxed);
        let _ = pending.reply.send(Reply {
            server: pending.server,
            request_id,
            entry: None,
        });
    }
}

/// Expires requests whose reply deadline has passed, answering them in-band.
fn sweep_deadlines(conns: &[Arc<Conn>], shutdown: &AtomicBool, stats: &NetStats) {
    while !shutdown.load(Ordering::SeqCst) {
        std::thread::sleep(TICK);
        let now = Instant::now();
        for conn in conns {
            let expired: Vec<(u64, Pending)> = {
                let mut pending = conn.pending.lock().expect("pending lock");
                let ids: Vec<u64> = pending
                    .iter()
                    .filter(|(_, p)| now >= p.deadline)
                    .map(|(&id, _)| id)
                    .collect();
                ids.into_iter()
                    .filter_map(|id| pending.remove(&id).map(|p| (id, p)))
                    .collect()
            };
            for (request_id, pending) in expired {
                stats.deadline_expiries.fetch_add(1, Ordering::Relaxed);
                let _ = pending.reply.send(Reply {
                    server: pending.server,
                    request_id,
                    entry: None,
                });
            }
        }
    }
}
