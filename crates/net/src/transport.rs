//! The client side: a pooled socket [`Transport`] with slot-table
//! completions, batched writes, reconnection, and per-request deadlines.
//!
//! [`SocketTransport`] implements the service's [`Transport`] seam over a
//! small pool of connections to one [`crate::server::SocketServer`]. The
//! protocol and generator layers above it are unchanged from the loopback
//! path — that is the point of the seam.
//!
//! # Completions: the slot table
//!
//! Requests from many client threads multiplex onto the pooled connections,
//! so replies must be matched back to their callers. Instead of a
//! `Mutex<HashMap>` keyed by caller id (a hash, an allocation, and a map
//! rebalance per operation), each connection owns a [`SlotTable`]: a
//! pre-allocated vector of completion slots with freelist reuse. Registering
//! an in-flight request pops a free slot and stamps it with the caller's id
//! and reply sink; the **wire** id is `generation << 32 | slot_index`, so
//! reply matching is an array index plus a generation check (the generation
//! increments every time a slot is freed, which makes stale wire ids — late
//! replies to expired requests, duplicates from a confused peer — miss
//! harmlessly instead of completing the slot's new occupant). Requests map to
//! connections by server index, preserving per-server FIFO ordering.
//!
//! Deadlines ride in a min-heap beside the table (`BinaryHeap` keyed by
//! expiry instant): the sweeper pops entries up to `now` instead of scanning
//! every pending request per tick, with lazy deletion — a popped entry whose
//! generation no longer matches its slot belongs to an already-completed
//! request and is skipped.
//!
//! # Batching
//!
//! [`Transport::send_batch`] groups a fan-out by destination connection,
//! registers every request's slot, and writes **one** coalesced
//! `WireBatch` frame per connection ([`crate::codec::encode_request_batch`])
//! — a quorum-of-9 fan-out over a 2-connection pool costs 2 syscalls instead
//! of 9. [`NetConfig::batching`] (default on) gates the coalescing so
//! batched and single-frame paths can be compared like for like; semantics
//! are identical either way.
//!
//! # Failure honesty
//!
//! * **Deadlines as the failure detector.** The sweeper expires pending
//!   requests whose reply has not arrived within
//!   [`NetConfig::request_deadline`] and answers them *in-band* with the
//!   "no answer" frame (`entry = None`) — exactly what a crashed replica
//!   produces — so the masking protocol's `b + 1`-support rule handles lost
//!   messages and dead servers uniformly, and no caller ever hangs on an
//!   accepted request.
//! * **Reconnect with jittered backoff.** A dead connection fails its
//!   in-flight requests immediately (in-band, again) and is re-established
//!   lazily by the next send. The pause before attempt `k` is
//!   `reconnect_backoff * k` scaled by a deterministic per-connection jitter
//!   factor in `[0.5, 1.5)` (a splitmix64 hash of the seed, connection index
//!   and attempt — no RNG state, no `rand` dependency on the hot path), so
//!   the clients of a restarted server do not redial in lockstep. Requests
//!   that cannot be written after the attempt budget are refused (`send`
//!   returns `false`), which callers already treat as transport failure.
//!
//! One caller id must be in flight at most once per transport (expiry and
//! straggler filtering assume it); the open-loop generator and
//! `ServiceClient` both allocate ids that way.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::io::Write;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use bqs_service::mailbox::ReplyHandle;
use bqs_service::transport::{Reply, Request, Transport};

use crate::codec::{encode_request, encode_request_batch, FrameReader, WireMessage, WireRequest};
use crate::stream::{Endpoint, Stream};

/// How often blocked reads and the deadline sweeper wake.
const TICK: Duration = Duration::from_millis(20);

/// Tuning for a [`SocketTransport`].
#[derive(Debug, Clone, Copy)]
pub struct NetConfig {
    /// Connections in the pool (requests map to them by server index).
    pub pool: usize,
    /// How long a request may await its reply before the sweeper answers it
    /// with the in-band no-answer frame.
    pub request_deadline: Duration,
    /// Base pause between reconnect attempts (grows linearly per attempt,
    /// scaled by deterministic per-connection jitter).
    pub reconnect_backoff: Duration,
    /// Reconnect attempts per send before the send is refused.
    pub reconnect_attempts: u32,
    /// Seed for the deterministic reconnect jitter. Two transports (or two
    /// connections of one transport) with the same base backoff but
    /// different seeds/indices retry on diverging schedules.
    pub backoff_seed: u64,
    /// Coalesce batched sends into multi-message `WireBatch` frames (one
    /// write per destination connection). Off, every request is its own
    /// frame and syscall — semantically identical, measurably slower; the
    /// switch exists so the two paths can be compared like for like.
    pub batching: bool,
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig {
            pool: 2,
            request_deadline: Duration::from_secs(5),
            reconnect_backoff: Duration::from_millis(50),
            reconnect_attempts: 4,
            backoff_seed: 0xb05c_0ff5,
            batching: true,
        }
    }
}

/// Observability counters for a transport's failure machinery.
#[derive(Debug, Default)]
pub struct NetStats {
    /// Successful (re)connections beyond the initial pool setup.
    pub reconnects: AtomicU64,
    /// Requests answered in-band by the deadline sweeper.
    pub deadline_expiries: AtomicU64,
    /// Requests answered in-band because their connection died.
    pub failed_by_disconnect: AtomicU64,
}

/// One completed (expired / failed / taken) request's routing information.
struct Taken {
    caller_id: u64,
    server: usize,
    /// The request's epoch stamp, echoed on synthesized in-band replies so
    /// they are byte-identical to what a crashed (not reconfigured!) server
    /// would produce.
    epoch: u64,
    reply: ReplyHandle,
}

/// A completion slot's occupancy.
enum SlotState {
    /// On the freelist; `next_free` chains to the next free slot.
    Free { next_free: Option<u32> },
    /// Holds an in-flight request.
    Pending {
        caller_id: u64,
        server: usize,
        epoch: u64,
        reply: ReplyHandle,
    },
}

struct Slot {
    /// Incremented every time the slot is freed; the high half of the wire
    /// id. A late reply carrying an old generation misses instead of
    /// completing the slot's new occupant (ABA protection).
    generation: u32,
    state: SlotState,
}

/// Pre-allocated completion slots with freelist reuse and a deadline
/// min-heap (see the module docs). One per connection, behind one mutex.
struct SlotTable {
    slots: Vec<Slot>,
    free_head: Option<u32>,
    /// Min-heap of `(deadline, slot, generation)`. Lazy deletion: entries
    /// whose generation no longer matches their slot are skipped when
    /// popped.
    deadlines: BinaryHeap<Reverse<(Instant, u32, u32)>>,
    /// In-flight count (the heap's length overcounts by the lazily deleted).
    pending: usize,
}

impl SlotTable {
    fn new() -> Self {
        SlotTable {
            slots: Vec::new(),
            free_head: None,
            deadlines: BinaryHeap::new(),
            pending: 0,
        }
    }

    /// Registers an in-flight request and returns the wire id its reply will
    /// carry (`generation << 32 | slot`).
    fn register(
        &mut self,
        caller_id: u64,
        server: usize,
        epoch: u64,
        reply: ReplyHandle,
        deadline: Instant,
    ) -> u64 {
        let index = match self.free_head {
            Some(index) => {
                let slot = &mut self.slots[index as usize];
                let SlotState::Free { next_free } = slot.state else {
                    unreachable!("freelist points at a pending slot");
                };
                self.free_head = next_free;
                slot.state = SlotState::Pending {
                    caller_id,
                    server,
                    epoch,
                    reply,
                };
                index
            }
            None => {
                let index = u32::try_from(self.slots.len()).expect("slot count fits u32");
                self.slots.push(Slot {
                    generation: 0,
                    state: SlotState::Pending {
                        caller_id,
                        server,
                        epoch,
                        reply,
                    },
                });
                index
            }
        };
        let generation = self.slots[index as usize].generation;
        self.deadlines.push(Reverse((deadline, index, generation)));
        self.pending += 1;
        (u64::from(generation) << 32) | u64::from(index)
    }

    /// Completes the request behind `wire_id`, freeing its slot. `None` when
    /// the id is stale (expired, failed, or fabricated) — the caller drops
    /// the reply.
    fn take(&mut self, wire_id: u64) -> Option<Taken> {
        let index = (wire_id & 0xffff_ffff) as usize;
        let generation = (wire_id >> 32) as u32;
        let slot = self.slots.get_mut(index)?;
        if slot.generation != generation || !matches!(slot.state, SlotState::Pending { .. }) {
            return None;
        }
        self.free_slot(index as u32)
    }

    /// Expires every request whose deadline has passed, freeing the slots.
    /// Pops the heap only down to `now` — O(expired log pending), not
    /// O(pending) per sweep.
    fn pop_expired(&mut self, now: Instant, out: &mut Vec<Taken>) {
        while let Some(&Reverse((deadline, index, generation))) = self.deadlines.peek() {
            if deadline > now {
                break;
            }
            self.deadlines.pop();
            let slot = &self.slots[index as usize];
            if slot.generation != generation || !matches!(slot.state, SlotState::Pending { .. }) {
                continue; // lazily deleted: completed before it expired
            }
            out.extend(self.free_slot(index));
        }
    }

    /// Fails every in-flight request (connection teardown).
    fn take_all(&mut self, out: &mut Vec<Taken>) {
        for index in 0..self.slots.len() as u32 {
            if matches!(self.slots[index as usize].state, SlotState::Pending { .. }) {
                out.extend(self.free_slot(index));
            }
        }
    }

    /// Frees one pending slot: bumps its generation (invalidating every wire
    /// id and heap entry that references the old one) and chains it onto the
    /// freelist.
    fn free_slot(&mut self, index: u32) -> Option<Taken> {
        let slot = &mut self.slots[index as usize];
        let state = std::mem::replace(
            &mut slot.state,
            SlotState::Free {
                next_free: self.free_head,
            },
        );
        let SlotState::Pending {
            caller_id,
            server,
            epoch,
            reply,
        } = state
        else {
            unreachable!("free_slot is only called on pending slots");
        };
        slot.generation = slot.generation.wrapping_add(1);
        self.free_head = Some(index);
        self.pending -= 1;
        Some(Taken {
            caller_id,
            server,
            epoch,
            reply,
        })
    }
}

/// The write half of one pooled connection.
struct Writer {
    stream: Option<Stream>,
    buf: Vec<u8>,
}

/// One pooled connection: slot table + write half; the read half lives in
/// a per-stream reader thread.
struct Conn {
    endpoint: Endpoint,
    /// This connection's index in the pool (jitter derivation).
    index: usize,
    table: Mutex<SlotTable>,
    writer: Mutex<Writer>,
    /// Bumped per (re)connection so a dying reader only tears down its own
    /// generation's stream, never a fresh replacement.
    generation: AtomicU64,
    shutdown: Arc<AtomicBool>,
    readers: Mutex<Vec<JoinHandle<()>>>,
    stats: Arc<NetStats>,
}

/// A pooled, reconnecting client transport to one socket server.
pub struct SocketTransport {
    universe: usize,
    config: NetConfig,
    conns: Vec<Arc<Conn>>,
    shutdown: Arc<AtomicBool>,
    stats: Arc<NetStats>,
    sweeper: Option<JoinHandle<()>>,
}

impl std::fmt::Debug for SocketTransport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SocketTransport")
            .field("universe", &self.universe)
            .field("pool", &self.conns.len())
            .finish_non_exhaustive()
    }
}

impl SocketTransport {
    /// Connects a pool of [`NetConfig::pool`] streams to `endpoint`, serving
    /// a universe of `universe` servers. Fails if the initial connections
    /// cannot be established.
    pub fn connect(
        endpoint: Endpoint,
        universe: usize,
        config: NetConfig,
    ) -> std::io::Result<Self> {
        assert!(universe > 0, "a transport needs a non-empty universe");
        let config = NetConfig {
            pool: config.pool.max(1),
            ..config
        };
        let shutdown = Arc::new(AtomicBool::new(false));
        let stats = Arc::new(NetStats::default());
        let mut conns = Vec::with_capacity(config.pool);
        for index in 0..config.pool {
            let conn = Arc::new(Conn {
                endpoint: endpoint.clone(),
                index,
                table: Mutex::new(SlotTable::new()),
                writer: Mutex::new(Writer {
                    stream: None,
                    buf: Vec::with_capacity(4096),
                }),
                generation: AtomicU64::new(0),
                shutdown: Arc::clone(&shutdown),
                readers: Mutex::new(Vec::new()),
                stats: Arc::clone(&stats),
            });
            {
                let mut writer = conn.writer.lock().expect("writer lock");
                open_stream(&conn, &mut writer)?;
            }
            conns.push(conn);
        }
        let sweeper = {
            let conns = conns.clone();
            let shutdown = Arc::clone(&shutdown);
            let stats = Arc::clone(&stats);
            std::thread::spawn(move || sweep_deadlines(&conns, &shutdown, &stats))
        };
        Ok(SocketTransport {
            universe,
            config,
            conns,
            shutdown,
            stats,
            sweeper: Some(sweeper),
        })
    }

    /// The transport's failure-machinery counters.
    #[must_use]
    pub fn stats(&self) -> &NetStats {
        &self.stats
    }

    /// Registers `request` on `conn`'s slot table and returns the wire
    /// request carrying the slot-derived id.
    fn register_on(&self, conn: &Conn, request: Request) -> WireRequest {
        let wire_id = conn.table.lock().expect("slot table lock").register(
            request.request_id,
            request.server,
            request.epoch,
            request.reply,
            Instant::now() + self.config.request_deadline,
        );
        WireRequest {
            request_id: wire_id,
            server: request.server,
            epoch: request.epoch,
            op: request.op,
        }
    }

    /// Silently drops a registered wire request whose write failed (no
    /// in-band reply: `send`'s `false` return is the refusal signal).
    fn unregister_on(&self, conn: &Conn, wire_id: u64) {
        let _ = conn.table.lock().expect("slot table lock").take(wire_id);
    }
}

impl Transport for SocketTransport {
    fn universe_size(&self) -> usize {
        self.universe
    }

    fn send(&self, request: Request) -> bool {
        if self.shutdown.load(Ordering::SeqCst) || request.server >= self.universe {
            return false;
        }
        let conn = &self.conns[request.server % self.conns.len()];
        // Register before writing: the reply can race back before the write
        // call even returns.
        let wire = self.register_on(conn, request);
        let written = {
            let mut writer = conn.writer.lock().expect("writer lock");
            writer.buf.clear();
            encode_request(&wire, &mut writer.buf);
            write_with_reconnect(conn, &mut writer, &self.config)
        };
        if !written {
            self.unregister_on(conn, wire.request_id);
        }
        written
    }

    /// Groups the fan-out by destination connection and writes one coalesced
    /// `WireBatch` run per connection — the syscall count is the number of
    /// distinct connections touched, not the number of requests.
    fn send_batch(&self, requests: &mut Vec<Request>) -> bool {
        if !self.config.batching {
            // Comparison mode: identical semantics, one frame+write per
            // request.
            let mut ok = true;
            for request in requests.drain(..) {
                ok &= self.send(request);
            }
            return ok;
        }
        if self.shutdown.load(Ordering::SeqCst) {
            requests.clear();
            return false;
        }
        let pool = self.conns.len();
        let mut ok = true;
        let mut per_conn: Vec<Vec<Request>> = (0..pool).map(|_| Vec::new()).collect();
        for request in requests.drain(..) {
            if request.server >= self.universe {
                ok = false;
                continue;
            }
            per_conn[request.server % pool].push(request);
        }
        let mut wires: Vec<WireRequest> = Vec::new();
        for (conn, batch) in self.conns.iter().zip(per_conn) {
            if batch.is_empty() {
                continue;
            }
            wires.clear();
            {
                let mut table = conn.table.lock().expect("slot table lock");
                let deadline = Instant::now() + self.config.request_deadline;
                for request in batch {
                    let wire_id = table.register(
                        request.request_id,
                        request.server,
                        request.epoch,
                        request.reply,
                        deadline,
                    );
                    wires.push(WireRequest {
                        request_id: wire_id,
                        server: request.server,
                        epoch: request.epoch,
                        op: request.op,
                    });
                }
            }
            let written = {
                let mut writer = conn.writer.lock().expect("writer lock");
                writer.buf.clear();
                encode_request_batch(&wires, &mut writer.buf);
                write_with_reconnect(conn, &mut writer, &self.config)
            };
            if !written {
                for wire in &wires {
                    self.unregister_on(conn, wire.request_id);
                }
                ok = false;
            }
        }
        ok
    }
}

impl Drop for SocketTransport {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        for conn in &self.conns {
            if let Some(stream) = &conn.writer.lock().expect("writer lock").stream {
                stream.shutdown();
            }
        }
        if let Some(handle) = self.sweeper.take() {
            let _ = handle.join();
        }
        for conn in &self.conns {
            let readers = std::mem::take(&mut *conn.readers.lock().expect("reader registry"));
            for handle in readers {
                let _ = handle.join();
            }
        }
    }
}

/// One splitmix64 scramble — the standard 64-bit finaliser, enough bits to
/// decorrelate (seed, connection, attempt) triples without any RNG state.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// The pause before reconnect attempt `attempt` (1-based) on connection
/// `conn_index`: linear growth scaled by a deterministic jitter factor in
/// `[0.5, 1.5)`, so distinct connections (or distinct seeds) back off on
/// diverging schedules instead of redialling a restarted server in lockstep.
fn reconnect_delay(seed: u64, conn_index: usize, attempt: u32, base: Duration) -> Duration {
    let hash = splitmix64(
        seed ^ (conn_index as u64).wrapping_mul(0xd192_ed03_a5a5_0001) ^ (u64::from(attempt) << 48),
    );
    // 53 high bits → uniform in [0, 1); jitter factor in [0.5, 1.5).
    let unit = (hash >> 11) as f64 / (1u64 << 53) as f64;
    base.mul_f64(f64::from(attempt) * (0.5 + unit))
}

/// Writes `writer.buf`, re-establishing the connection with jittered backoff
/// when it is down. Returns `false` once the attempt budget is exhausted
/// (the caller unregisters the affected requests).
fn write_with_reconnect(conn: &Arc<Conn>, writer: &mut Writer, config: &NetConfig) -> bool {
    for attempt in 0..=config.reconnect_attempts {
        if conn.shutdown.load(Ordering::SeqCst) {
            return false;
        }
        if attempt > 0 {
            std::thread::sleep(reconnect_delay(
                config.backoff_seed,
                conn.index,
                attempt,
                config.reconnect_backoff,
            ));
        }
        if writer.stream.is_none() {
            if open_stream(conn, writer).is_err() {
                continue;
            }
            conn.stats.reconnects.fetch_add(1, Ordering::Relaxed);
        }
        let stream = writer.stream.as_mut().expect("stream was just ensured");
        if stream.write_all(&writer.buf).is_ok() {
            return true;
        }
        // Dead connection: drop it so the next attempt redials, and fail
        // whatever else was in flight on it (the reader usually beats us to
        // this when the peer resets cleanly).
        stream.shutdown();
        writer.stream = None;
        fail_all_pending(conn);
    }
    false
}

/// Dials the connection's endpoint and spawns the reader thread for the new
/// stream. Called under the writer lock.
fn open_stream(conn: &Arc<Conn>, writer: &mut Writer) -> std::io::Result<()> {
    let stream = conn.endpoint.connect()?;
    let _ = stream.set_nodelay();
    let reader_stream = stream.try_clone()?;
    let _ = reader_stream.set_read_timeout(Some(TICK));
    let generation = conn.generation.fetch_add(1, Ordering::SeqCst) + 1;
    writer.stream = Some(stream);
    let handle = {
        let conn = Arc::clone(conn);
        std::thread::spawn(move || read_replies(&conn, reader_stream, generation))
    };
    conn.readers.lock().expect("reader registry").push(handle);
    Ok(())
}

/// Reads reply frames off one stream and routes them to their waiting
/// requests through the slot table; on stream death, fails this connection's
/// in-flight requests in-band.
fn read_replies(conn: &Arc<Conn>, mut stream: Stream, my_generation: u64) {
    use std::io::Read;
    let mut frames = FrameReader::new();
    let mut chunk = [0u8; 16 * 1024];
    loop {
        if conn.shutdown.load(Ordering::SeqCst) {
            return;
        }
        match stream.read(&mut chunk) {
            Ok(0) => break,
            Ok(got) => {
                frames.push(&chunk[..got]);
                while let Some(message) = frames.next_message() {
                    let reply = match message {
                        WireMessage::Reply(reply) => reply,
                        WireMessage::Request(_) => continue, // confused peer
                    };
                    let taken = conn
                        .table
                        .lock()
                        .expect("slot table lock")
                        .take(reply.request_id);
                    if let Some(taken) = taken {
                        // The caller sees its own id, not the wire id. Epoch
                        // and staleness pass through from the wire: a fenced
                        // reply's epoch is the *server's* current epoch.
                        taken.reply.complete(Reply {
                            server: reply.server,
                            request_id: taken.caller_id,
                            entry: reply.entry,
                            epoch: reply.epoch,
                            stale: reply.stale,
                        });
                    }
                }
            }
            Err(err) if Stream::is_timeout(&err) => continue,
            Err(_) => break,
        }
    }
    // Only tear down the stream if no reconnect has superseded this reader.
    if conn.generation.load(Ordering::SeqCst) == my_generation {
        if let Ok(mut writer) = conn.writer.lock() {
            if conn.generation.load(Ordering::SeqCst) == my_generation {
                writer.stream = None;
            }
        }
        fail_all_pending(conn);
    }
}

/// Answers every in-flight request on `conn` with the in-band no-answer
/// frame: their connection is gone, and a lost reply is indistinguishable
/// from a crashed server — which is exactly how the protocol treats it.
fn fail_all_pending(conn: &Conn) {
    let mut failed = Vec::new();
    conn.table
        .lock()
        .expect("slot table lock")
        .take_all(&mut failed);
    for taken in failed {
        conn.stats
            .failed_by_disconnect
            .fetch_add(1, Ordering::Relaxed);
        taken.reply.complete(Reply {
            server: taken.server,
            request_id: taken.caller_id,
            entry: None,
            epoch: taken.epoch,
            stale: false,
        });
    }
}

/// Expires requests whose reply deadline has passed, answering them in-band.
/// Each sweep pops the per-connection deadline heap down to `now` —
/// proportional to what actually expired, not to what is pending.
fn sweep_deadlines(conns: &[Arc<Conn>], shutdown: &AtomicBool, stats: &NetStats) {
    let mut expired = Vec::new();
    while !shutdown.load(Ordering::SeqCst) {
        std::thread::sleep(TICK);
        let now = Instant::now();
        for conn in conns {
            debug_assert!(expired.is_empty());
            conn.table
                .lock()
                .expect("slot table lock")
                .pop_expired(now, &mut expired);
            for taken in expired.drain(..) {
                stats.deadline_expiries.fetch_add(1, Ordering::Relaxed);
                taken.reply.complete(Reply {
                    server: taken.server,
                    request_id: taken.caller_id,
                    entry: None,
                    epoch: taken.epoch,
                    stale: false,
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bqs_service::mailbox::ReplyMailbox;

    fn sink() -> (Arc<ReplyMailbox>, ReplyHandle) {
        let mb = Arc::new(ReplyMailbox::new());
        let handle = Arc::clone(&mb) as ReplyHandle;
        (mb, handle)
    }

    #[test]
    fn slot_table_expires_in_deadline_order() {
        let mut table = SlotTable::new();
        let t0 = Instant::now();
        let (_mb, handle) = sink();
        // Registered out of deadline order on purpose.
        let late = table.register(3, 0, 0, Arc::clone(&handle), t0 + Duration::from_millis(30));
        let early = table.register(1, 1, 0, Arc::clone(&handle), t0 + Duration::from_millis(10));
        let mid = table.register(2, 2, 0, Arc::clone(&handle), t0 + Duration::from_millis(20));
        assert_eq!(table.pending, 3);

        let mut out = Vec::new();
        table.pop_expired(t0 + Duration::from_millis(15), &mut out);
        assert_eq!(
            out.iter().map(|t| t.caller_id).collect::<Vec<_>>(),
            vec![1],
            "only the earliest deadline has passed"
        );
        out.clear();
        table.pop_expired(t0 + Duration::from_millis(60), &mut out);
        assert_eq!(
            out.iter().map(|t| t.caller_id).collect::<Vec<_>>(),
            vec![2, 3],
            "remaining requests expire in deadline order, not registration order"
        );
        assert_eq!(table.pending, 0);
        // All three wire ids are now stale.
        for id in [early, mid, late] {
            assert!(table.take(id).is_none());
        }
    }

    #[test]
    fn completed_requests_are_lazily_deleted_from_the_heap() {
        let mut table = SlotTable::new();
        let t0 = Instant::now();
        let (_mb, handle) = sink();
        let a = table.register(10, 0, 0, Arc::clone(&handle), t0 + Duration::from_millis(5));
        let _b = table.register(
            11,
            1,
            0,
            Arc::clone(&handle),
            t0 + Duration::from_millis(50),
        );
        // Complete `a` before it expires.
        assert_eq!(table.take(a).map(|t| t.caller_id), Some(10));
        let mut out = Vec::new();
        table.pop_expired(t0 + Duration::from_millis(25), &mut out);
        assert!(
            out.is_empty(),
            "a's heap entry is stale and must be skipped, b has not expired"
        );
        assert_eq!(table.pending, 1);
    }

    #[test]
    fn freed_slots_are_reused_with_a_new_generation() {
        let mut table = SlotTable::new();
        let t0 = Instant::now();
        let (_mb, handle) = sink();
        let first = table.register(1, 0, 0, Arc::clone(&handle), t0 + Duration::from_secs(1));
        assert!(table.take(first).is_some());
        let second = table.register(2, 0, 0, Arc::clone(&handle), t0 + Duration::from_secs(1));
        // Same slot index, different generation: the stale id misses.
        assert_eq!(first & 0xffff_ffff, second & 0xffff_ffff);
        assert_ne!(first, second);
        assert!(table.take(first).is_none(), "stale generation must miss");
        assert_eq!(table.take(second).map(|t| t.caller_id), Some(2));
        assert_eq!(table.slots.len(), 1, "freelist reuse, no growth");
    }

    #[test]
    fn take_all_fails_everything_pending() {
        let mut table = SlotTable::new();
        let t0 = Instant::now();
        let (_mb, handle) = sink();
        for i in 0..5 {
            table.register(
                i,
                i as usize,
                0,
                Arc::clone(&handle),
                t0 + Duration::from_secs(1),
            );
        }
        let mut out = Vec::new();
        table.take_all(&mut out);
        assert_eq!(out.len(), 5);
        assert_eq!(table.pending, 0);
    }

    #[test]
    fn reconnect_schedules_diverge_between_connections() {
        let base = Duration::from_millis(50);
        let seed = NetConfig::default().backoff_seed;
        let schedule = |conn: usize| -> Vec<Duration> {
            (1..=4)
                .map(|a| reconnect_delay(seed, conn, a, base))
                .collect()
        };
        let a = schedule(0);
        let b = schedule(1);
        assert_ne!(a, b, "two connections must not retry in lockstep");
        // Deterministic: the same (seed, conn, attempt) always yields the
        // same pause.
        assert_eq!(a, schedule(0));
        // Jitter stays within the documented [0.5, 1.5) envelope around the
        // linear schedule.
        for (attempt, &delay) in (1u32..).zip(a.iter()) {
            let nominal = base * attempt;
            assert!(
                delay >= nominal.mul_f64(0.5),
                "attempt {attempt}: {delay:?}"
            );
            assert!(delay < nominal.mul_f64(1.5), "attempt {attempt}: {delay:?}");
        }
    }
}
