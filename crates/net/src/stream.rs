//! Backend-neutral socket plumbing: one [`Stream`]/[`Listener`]/[`Endpoint`]
//! surface over TCP and Unix-domain sockets.
//!
//! The server and client transport are written once against these enums, so
//! the choice of backend is purely a bind-time decision. TCP exercises the
//! full loopback network stack (the closest stand-in for cross-host
//! deployment); Unix-domain sockets skip the TCP/IP layers and measure the
//! socket + scheduling overhead alone.

use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::time::Duration;

/// Where a socket server can be reached.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Endpoint {
    /// A TCP address, e.g. `127.0.0.1:9100`.
    Tcp(SocketAddr),
    /// A Unix-domain socket path.
    Uds(PathBuf),
}

impl Endpoint {
    /// Opens a fresh stream to this endpoint.
    pub fn connect(&self) -> io::Result<Stream> {
        match self {
            Endpoint::Tcp(addr) => TcpStream::connect(addr).map(Stream::Tcp),
            Endpoint::Uds(path) => UnixStream::connect(path).map(Stream::Uds),
        }
    }

    /// A short human-readable backend label (`"tcp"` / `"uds"`).
    #[must_use]
    pub fn backend_name(&self) -> &'static str {
        match self {
            Endpoint::Tcp(_) => "tcp",
            Endpoint::Uds(_) => "uds",
        }
    }
}

impl std::fmt::Display for Endpoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Endpoint::Tcp(addr) => write!(f, "tcp://{addr}"),
            Endpoint::Uds(path) => write!(f, "uds://{}", path.display()),
        }
    }
}

/// A connected byte stream over either backend.
#[derive(Debug)]
pub enum Stream {
    /// A TCP connection.
    Tcp(TcpStream),
    /// A Unix-domain connection.
    Uds(UnixStream),
}

impl Stream {
    /// An independently owned handle to the same connection (for split
    /// reader/writer threads).
    pub fn try_clone(&self) -> io::Result<Stream> {
        match self {
            Stream::Tcp(s) => s.try_clone().map(Stream::Tcp),
            Stream::Uds(s) => s.try_clone().map(Stream::Uds),
        }
    }

    /// Bounds blocking reads so reader threads can observe shutdown flags.
    pub fn set_read_timeout(&self, timeout: Option<Duration>) -> io::Result<()> {
        match self {
            Stream::Tcp(s) => s.set_read_timeout(timeout),
            Stream::Uds(s) => s.set_read_timeout(timeout),
        }
    }

    /// Disables Nagle batching on TCP (request/reply traffic is latency
    /// sensitive); a no-op for Unix-domain sockets.
    pub fn set_nodelay(&self) -> io::Result<()> {
        match self {
            Stream::Tcp(s) => s.set_nodelay(true),
            Stream::Uds(_) => Ok(()),
        }
    }

    /// Shuts down both directions, waking any thread blocked on the stream.
    pub fn shutdown(&self) {
        let _ = match self {
            Stream::Tcp(s) => s.shutdown(std::net::Shutdown::Both),
            Stream::Uds(s) => s.shutdown(std::net::Shutdown::Both),
        };
    }

    /// True when a `read` error is the read-timeout tick rather than a dead
    /// connection (`WouldBlock`/`TimedOut` depending on the platform).
    #[must_use]
    pub fn is_timeout(err: &io::Error) -> bool {
        matches!(
            err.kind(),
            io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
        )
    }
}

impl Read for Stream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Stream::Tcp(s) => s.read(buf),
            Stream::Uds(s) => s.read(buf),
        }
    }
}

impl Write for Stream {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            Stream::Tcp(s) => s.write(buf),
            Stream::Uds(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            Stream::Tcp(s) => s.flush(),
            Stream::Uds(s) => s.flush(),
        }
    }
}

/// A bound accept socket over either backend.
#[derive(Debug)]
pub enum Listener {
    /// A TCP listener.
    Tcp(TcpListener),
    /// A Unix-domain listener (unlinks its path on drop).
    Uds(UnixListener, PathBuf),
}

impl Listener {
    /// Binds a TCP listener on `addr` (pass port 0 for an ephemeral port).
    pub fn bind_tcp(addr: SocketAddr) -> io::Result<Listener> {
        TcpListener::bind(addr).map(Listener::Tcp)
    }

    /// Binds a Unix-domain listener at `path`, replacing a stale socket file
    /// left by a previous run.
    pub fn bind_uds(path: PathBuf) -> io::Result<Listener> {
        let _ = std::fs::remove_file(&path);
        UnixListener::bind(&path).map(|l| Listener::Uds(l, path))
    }

    /// The endpoint clients connect to.
    pub fn endpoint(&self) -> io::Result<Endpoint> {
        match self {
            Listener::Tcp(l) => l.local_addr().map(Endpoint::Tcp),
            Listener::Uds(_, path) => Ok(Endpoint::Uds(path.clone())),
        }
    }

    /// Blocks for the next inbound connection.
    pub fn accept(&self) -> io::Result<Stream> {
        match self {
            Listener::Tcp(l) => l.accept().map(|(s, _)| Stream::Tcp(s)),
            Listener::Uds(l, _) => l.accept().map(|(s, _)| Stream::Uds(s)),
        }
    }
}

impl Drop for Listener {
    fn drop(&mut self) {
        if let Listener::Uds(_, path) = self {
            let _ = std::fs::remove_file(path);
        }
    }
}
