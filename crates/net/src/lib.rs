//! Real socket transport for the quorum service runtime.
//!
//! `bqs-service` measures the masking register's behaviour through a
//! [`bqs_service::transport::Transport`] seam, but the seed workspace only
//! had one implementation — the in-process loopback. This crate adds the
//! other side of the seam: the same sharded replica runtime served over
//! actual sockets, so the certified load `L(Q)` and the saturation behaviour
//! of the paper's constructions can be observed through a real network stack
//! rather than a channel send.
//!
//! * [`codec`] — a hand-rolled length-prefixed binary wire format for
//!   protocol requests and replies (no serialisation dependency), including
//!   multi-message `WireBatch` frames that coalesce up to
//!   [`codec::MAX_BATCH`] messages behind one length prefix, with an
//!   incremental [`codec::FrameReader`] that resynchronises after torn or
//!   corrupt input and rejects oversized frames before allocation;
//! * [`stream`] — one [`stream::Endpoint`]/[`stream::Stream`] surface over
//!   TCP and Unix-domain sockets, so backend choice is a bind-time decision;
//! * [`server`] — [`server::SocketServer`]: a
//!   [`bqs_service::shard::LoopbackService`] behind a listener, one
//!   reader/writer thread pair per connection (reader hands each read
//!   chunk's requests to the shards in one batched send, writer drains its
//!   reply mailbox a whole batch per wakeup), per-server addressing
//!   preserved end to end;
//! * [`transport`] — [`transport::SocketTransport`]: the client side, a
//!   connection pool with slot-table completions (pre-allocated slots,
//!   freelist reuse, generation-tagged wire ids), coalesced batch writes,
//!   jittered reconnect backoff, and a min-heap deadline sweeper whose
//!   expiries surface as in-band "no answer" replies (timeouts as the
//!   failure detector, per the transport contract).
//!
//! Everything above the seam — `ServiceClient`, the closed-loop runner, the
//! open-loop generator — runs unmodified over either backend; `bench_net`
//! sweeps offered load across loopback, UDS, and TCP to locate each
//! backend's saturation knee (`BENCH_net.json`).
//!
//! # Example
//!
//! ```
//! use bqs_constructions::prelude::*;
//! use bqs_net::prelude::*;
//! use bqs_service::prelude::*;
//! use bqs_sim::prelude::*;
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//!
//! // A 5x5 grid served over TCP loopback, read through the masking client.
//! let system = GridSystem::new(5, 1).unwrap();
//! let server = SocketServer::bind_tcp_loopback(&FaultPlan::none(25), 2, 1).unwrap();
//! let transport =
//!     SocketTransport::connect(server.endpoint().clone(), 25, NetConfig::default()).unwrap();
//! let mut client = ServiceClient::new(
//!     &system,
//!     &transport,
//!     server.responsive_set().clone(),
//!     1,
//! );
//! let mut rng = StdRng::seed_from_u64(7);
//! let entry = Entry { timestamp: 1, value: bqs_service::authentic_value(1) };
//! client.write(entry, &mut rng).unwrap();
//! assert_eq!(client.read(&mut rng).unwrap().entry, entry);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod codec;
pub mod server;
pub mod stream;
pub mod transport;

pub use codec::{
    encode_reply_batch, encode_request_batch, FrameReader, WireMessage, WireRequest, MAX_BATCH,
    MAX_PAYLOAD,
};
pub use server::SocketServer;
pub use stream::{Endpoint, Listener, Stream};
pub use transport::{NetConfig, NetStats, SocketTransport};

/// Convenient glob import for examples and benches.
pub mod prelude {
    pub use crate::codec::{
        encode_reply_batch, encode_request_batch, FrameReader, WireMessage, WireRequest, MAX_BATCH,
        MAX_PAYLOAD,
    };
    pub use crate::server::SocketServer;
    pub use crate::stream::{Endpoint, Listener, Stream};
    pub use crate::transport::{NetConfig, NetStats, SocketTransport};
}
