//! Length-prefixed binary wire codec for protocol messages.
//!
//! Every frame is `MAGIC (4 bytes) | LEN (u32 LE) | payload (LEN bytes)`.
//! The payload layouts are fixed — a kind byte, little-endian fixed-width
//! integers, and a presence byte for the optional entry — so encoding and
//! decoding are straight byte shuffles with no schema machinery and no
//! external serialisation dependency:
//!
//! ```text
//! request  = 0x01 | request_id u64 LE | server u32 LE | epoch u64 LE | op
//! op       = 0x00 (read)  |  0x01 ts u64 LE value u64 LE (write)
//! reply    = 0x02 | request_id u64 LE | server u32 LE | epoch u64 LE | entry
//! entry    = 0x00 (none)  |  0x01 ts u64 LE value u64 LE (some)
//!          | 0x02 (stale: fenced by the epoch gate — replies only)
//! batch    = 0x03 | count u8 (1..=64) | item{count}
//! item     = request | reply          (self-describing 22/38-byte layouts)
//! ```
//!
//! Wire-format version 2 (`BQN2`) added the epoch stamp to both directions
//! and the `stale` entry tag, carrying the reconfiguration protocol's fencing
//! signal: a stale reply's epoch field is the *server's* current epoch (what
//! the lagging client should resynchronise to), while every served reply
//! echoes the request's stamp.
//!
//! # Batched frames
//!
//! A **`WireBatch`** frame (kind `0x03`) carries up to [`MAX_BATCH`]
//! messages under one `MAGIC | LEN` header, so a writer that has several
//! messages queued — a client's pipelined quorum fan-outs, a server's
//! coalesced replies — pays one header and one syscall for the lot instead
//! of one each. Items reuse the single-message payload layouts verbatim
//! (each item is self-describing: its entry/op tag determines whether it is
//! 14 or 30 bytes), so batching changes *framing only*, never message
//! semantics: [`FrameReader`] delivers the items of a batch one at a time
//! through the same [`FrameReader::next_message`] the single-message frames
//! use, in order. A batch that fails validation anywhere (bad count, corrupt
//! item, trailing bytes) is discarded **whole** and counted as one resync —
//! per-item salvage could silently reorder the stream.
//!
//! [`encode_request_batch`] / [`encode_reply_batch`] chunk arbitrarily long
//! message runs into maximal batch frames, emitting a plain single-message
//! frame when a chunk has only one message (a single-message frame is 2
//! bytes shorter than a 1-batch).
//!
//! # Robustness
//!
//! [`FrameReader`] is an incremental decoder fed arbitrary byte chunks (TCP
//! gives no message boundaries). It tolerates the two classic stream
//! corruptions:
//!
//! * **torn / garbled input** — when the buffer does not start with the
//!   magic, or a payload fails to decode, the reader discards bytes up to the
//!   next magic occurrence and counts a *resync*; a later well-formed frame
//!   decodes normally;
//! * **oversized frames** — a length prefix above [`MAX_PAYLOAD`] is rejected
//!   *before* any allocation (a 4 GiB length in a corrupt frame must not
//!   become a 4 GiB buffer), counted, and scanned past like garbage.
//!
//! The counters ([`FrameReader::resyncs`], [`FrameReader::oversized`]) let
//! transports expose corruption instead of silently riding through it.

use bqs_service::transport::{Operation, Reply};
use bqs_sim::server::Entry;

/// Frame preamble: "BQN" + wire-format version 2 (epoch stamps).
pub const MAGIC: [u8; 4] = *b"BQN2";

/// Hard ceiling on a frame's payload length. The largest legal payload is a
/// full batch of entry-bearing messages (`2 + 64 * 38 = 2434` bytes);
/// anything above this is corruption and is rejected before allocation.
pub const MAX_PAYLOAD: usize = 2560;

/// Maximum messages one `WireBatch` frame may carry (the batch `count` byte
/// is `1..=MAX_BATCH`). Sized so a full batch of 38-byte items stays under
/// [`MAX_PAYLOAD`] while amortising the frame header and the per-write
/// syscall ~64×.
pub const MAX_BATCH: usize = 64;

/// Bytes of `MAGIC | LEN` preceding every payload.
pub const HEADER_LEN: usize = MAGIC.len() + 4;

const KIND_REQUEST: u8 = 0x01;
const KIND_REPLY: u8 = 0x02;
const KIND_BATCH: u8 = 0x03;
const OP_READ: u8 = 0x00;
const OP_WRITE: u8 = 0x01;
const ENTRY_NONE: u8 = 0x00;
const ENTRY_SOME: u8 = 0x01;
/// Reply-only tag: the request was fenced by the server's epoch gate. The
/// body is empty (a fenced reply never carries an entry).
const ENTRY_STALE: u8 = 0x02;

/// Wire size of one message payload/item: the kind byte, id, server, epoch,
/// and the tagged 0- or 16-byte entry body.
const ITEM_SHORT: usize = 22;
const ITEM_LONG: usize = 38;

/// A request as it travels on the wire: [`bqs_service::transport::Request`]
/// minus the in-process reply channel (the connection itself is the reply
/// path on a socket transport).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WireRequest {
    /// Correlation id, echoed verbatim by the server.
    pub request_id: u64,
    /// The server index the operation is addressed to.
    pub server: usize,
    /// The client's configuration epoch, checked against the server's gate.
    pub epoch: u64,
    /// The operation to perform.
    pub op: Operation,
}

/// Any decoded frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireMessage {
    /// A client-to-server request.
    Request(WireRequest),
    /// A server-to-client reply.
    Reply(Reply),
}

/// Wire size of a request's payload/item.
fn request_item_len(request: &WireRequest) -> usize {
    match request.op {
        Operation::Read => ITEM_SHORT,
        Operation::Write(_) => ITEM_LONG,
    }
}

/// Wire size of a reply's payload/item.
fn reply_item_len(reply: &Reply) -> usize {
    match reply.entry {
        None => ITEM_SHORT,
        Some(_) => ITEM_LONG,
    }
}

/// Appends one request item (the single-message payload layout) to `buf`.
fn encode_request_item(request: &WireRequest, buf: &mut Vec<u8>) {
    let server = u32::try_from(request.server).expect("server index fits the wire format");
    buf.push(KIND_REQUEST);
    buf.extend_from_slice(&request.request_id.to_le_bytes());
    buf.extend_from_slice(&server.to_le_bytes());
    buf.extend_from_slice(&request.epoch.to_le_bytes());
    match request.op {
        Operation::Read => buf.push(OP_READ),
        Operation::Write(entry) => {
            buf.push(OP_WRITE);
            buf.extend_from_slice(&entry.timestamp.to_le_bytes());
            buf.extend_from_slice(&entry.value.to_le_bytes());
        }
    }
}

/// Appends one reply item (the single-message payload layout) to `buf`.
/// A stale (fenced) reply never carries an entry, so the `stale` flag fits
/// the entry tag: `0x02` instead of `0x00`.
fn encode_reply_item(reply: &Reply, buf: &mut Vec<u8>) {
    let server = u32::try_from(reply.server).expect("server index fits the wire format");
    debug_assert!(
        !(reply.stale && reply.entry.is_some()),
        "a fenced reply never carries an entry"
    );
    buf.push(KIND_REPLY);
    buf.extend_from_slice(&reply.request_id.to_le_bytes());
    buf.extend_from_slice(&server.to_le_bytes());
    buf.extend_from_slice(&reply.epoch.to_le_bytes());
    match (reply.stale, reply.entry) {
        (true, _) => buf.push(ENTRY_STALE),
        (false, None) => buf.push(ENTRY_NONE),
        (false, Some(entry)) => {
            buf.push(ENTRY_SOME);
            buf.extend_from_slice(&entry.timestamp.to_le_bytes());
            buf.extend_from_slice(&entry.value.to_le_bytes());
        }
    }
}

fn frame_header(payload_len: usize, buf: &mut Vec<u8>) {
    debug_assert!(payload_len <= MAX_PAYLOAD);
    buf.extend_from_slice(&MAGIC);
    buf.extend_from_slice(&(payload_len as u32).to_le_bytes());
}

/// Appends one encoded request frame to `buf`.
///
/// # Panics
///
/// Panics if `server` does not fit the wire's `u32` server index.
pub fn encode_request(request: &WireRequest, buf: &mut Vec<u8>) {
    frame_header(request_item_len(request), buf);
    encode_request_item(request, buf);
}

/// Appends one encoded reply frame to `buf`.
///
/// # Panics
///
/// Panics if `reply.server` does not fit the wire's `u32` server index.
pub fn encode_reply(reply: &Reply, buf: &mut Vec<u8>) {
    frame_header(reply_item_len(reply), buf);
    encode_reply_item(reply, buf);
}

/// Appends `requests` to `buf` as a run of maximal `WireBatch` frames
/// (chunks of one message fall back to the plain single-message frame).
/// Encoding nothing appends nothing.
///
/// # Panics
///
/// Panics if any server index does not fit the wire's `u32`.
pub fn encode_request_batch(requests: &[WireRequest], buf: &mut Vec<u8>) {
    for chunk in requests.chunks(MAX_BATCH) {
        match chunk {
            [] => {}
            [single] => encode_request(single, buf),
            _ => {
                let payload_len = 2 + chunk.iter().map(request_item_len).sum::<usize>();
                frame_header(payload_len, buf);
                buf.push(KIND_BATCH);
                buf.push(chunk.len() as u8);
                for request in chunk {
                    encode_request_item(request, buf);
                }
            }
        }
    }
}

/// Appends `replies` to `buf` as a run of maximal `WireBatch` frames (chunks
/// of one message fall back to the plain single-message frame). Encoding
/// nothing appends nothing.
///
/// # Panics
///
/// Panics if any server index does not fit the wire's `u32`.
pub fn encode_reply_batch(replies: &[Reply], buf: &mut Vec<u8>) {
    for chunk in replies.chunks(MAX_BATCH) {
        match chunk {
            [] => {}
            [single] => encode_reply(single, buf),
            _ => {
                let payload_len = 2 + chunk.iter().map(reply_item_len).sum::<usize>();
                frame_header(payload_len, buf);
                buf.push(KIND_BATCH);
                buf.push(chunk.len() as u8);
                for reply in chunk {
                    encode_reply_item(reply, buf);
                }
            }
        }
    }
}

/// Decodes one message item from the front of `bytes`, returning it with the
/// number of bytes it occupied. `None` means the item is malformed.
fn decode_item(bytes: &[u8]) -> Option<(WireMessage, usize)> {
    let (&kind, rest) = bytes.split_first()?;
    let (id_bytes, rest) = rest.split_first_chunk::<8>()?;
    let request_id = u64::from_le_bytes(*id_bytes);
    let (server_bytes, rest) = rest.split_first_chunk::<4>()?;
    let server = u32::from_le_bytes(*server_bytes) as usize;
    let (epoch_bytes, rest) = rest.split_first_chunk::<8>()?;
    let epoch = u64::from_le_bytes(*epoch_bytes);
    let (&tag, rest) = rest.split_first()?;
    let (entry, stale, consumed) = match tag {
        ENTRY_NONE => (None, false, ITEM_SHORT),
        ENTRY_STALE => (None, true, ITEM_SHORT),
        ENTRY_SOME => {
            let (ts_bytes, rest) = rest.split_first_chunk::<8>()?;
            let (value_bytes, _) = rest.split_first_chunk::<8>()?;
            (
                Some(Entry {
                    timestamp: u64::from_le_bytes(*ts_bytes),
                    value: u64::from_le_bytes(*value_bytes),
                }),
                false,
                ITEM_LONG,
            )
        }
        _ => return None,
    };
    let message = match (kind, entry) {
        // The stale tag is reply-only: a "fenced request" is not a thing.
        (KIND_REQUEST, _) if stale => return None,
        (KIND_REQUEST, None) => WireMessage::Request(WireRequest {
            request_id,
            server,
            epoch,
            op: Operation::Read,
        }),
        (KIND_REQUEST, Some(entry)) => WireMessage::Request(WireRequest {
            request_id,
            server,
            epoch,
            op: Operation::Write(entry),
        }),
        (KIND_REPLY, entry) => WireMessage::Reply(Reply {
            server,
            request_id,
            entry,
            epoch,
            stale,
        }),
        _ => return None,
    };
    Some((message, consumed))
}

/// Decodes one payload (the bytes after `MAGIC | LEN`) — a single message or
/// a whole batch — appending the decoded messages to `out` in wire order.
/// `None` means the payload is malformed (nothing is appended — a batch is
/// accepted or rejected whole); the caller resynchronises.
fn decode_payload(payload: &[u8], out: &mut std::collections::VecDeque<WireMessage>) -> Option<()> {
    if payload.first() == Some(&KIND_BATCH) {
        let count = *payload.get(1)? as usize;
        if count == 0 || count > MAX_BATCH {
            return None;
        }
        let mut items = payload.get(2..)?;
        let mut decoded = Vec::with_capacity(count);
        for _ in 0..count {
            let (message, consumed) = decode_item(items)?;
            decoded.push(message);
            items = &items[consumed..];
        }
        if !items.is_empty() {
            return None; // trailing bytes: the count lied, reject the frame
        }
        out.extend(decoded);
        return Some(());
    }
    let (message, consumed) = decode_item(payload)?;
    if consumed != payload.len() {
        return None;
    }
    out.push_back(message);
    Some(())
}

/// Incremental frame decoder over a byte stream with resynchronisation.
///
/// Feed it chunks as they arrive ([`FrameReader::push`]) and drain decoded
/// messages ([`FrameReader::next_message`]); partial frames simply wait for
/// more bytes. Batch frames are delivered item by item through the same
/// `next_message` (the `ready` queue holds a decoded batch's remainder).
/// See the module docs for the corruption-handling rules.
#[derive(Debug, Default)]
pub struct FrameReader {
    buf: Vec<u8>,
    ready: std::collections::VecDeque<WireMessage>,
    resyncs: u64,
    oversized: u64,
}

impl FrameReader {
    /// An empty reader.
    #[must_use]
    pub fn new() -> Self {
        FrameReader::default()
    }

    /// Appends received bytes to the internal buffer.
    pub fn push(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Times the stream lost framing and had to scan for the next magic.
    #[must_use]
    pub fn resyncs(&self) -> u64 {
        self.resyncs
    }

    /// Frames rejected for an over-limit length prefix.
    #[must_use]
    pub fn oversized(&self) -> u64 {
        self.oversized
    }

    /// Bytes currently buffered (partial frame awaiting more input).
    #[must_use]
    pub fn buffered(&self) -> usize {
        self.buf.len()
    }

    /// Decodes the next complete message, or `None` when the buffer holds no
    /// complete frame (garbage is scanned past; corrupt frames are skipped).
    /// The items of a batch frame come out one call at a time, in wire order.
    pub fn next_message(&mut self) -> Option<WireMessage> {
        loop {
            if let Some(message) = self.ready.pop_front() {
                return Some(message);
            }
            self.skip_to_magic();
            if self.buf.len() < HEADER_LEN {
                return None;
            }
            let len_bytes: [u8; 4] = self.buf[MAGIC.len()..HEADER_LEN]
                .try_into()
                .expect("slice is 4 bytes");
            let payload_len = u32::from_le_bytes(len_bytes) as usize;
            if payload_len > MAX_PAYLOAD {
                // Reject before buffering/allocating anything of that size:
                // drop the magic so the scan moves past this header.
                self.oversized += 1;
                self.buf.drain(..MAGIC.len());
                continue;
            }
            if self.buf.len() < HEADER_LEN + payload_len {
                return None; // partial frame: wait for more bytes
            }
            match decode_payload(
                &self.buf[HEADER_LEN..HEADER_LEN + payload_len],
                &mut self.ready,
            ) {
                Some(()) => {
                    self.buf.drain(..HEADER_LEN + payload_len);
                }
                None => {
                    // Corrupt payload (a batch is rejected whole): skip the
                    // magic and rescan from inside the frame (the payload may
                    // contain the next real magic).
                    self.resyncs += 1;
                    self.buf.drain(..MAGIC.len());
                }
            }
        }
    }

    /// Drops leading bytes up to the first magic occurrence (or down to a
    /// possible magic prefix at the tail), counting a resync when anything
    /// was dropped.
    fn skip_to_magic(&mut self) {
        let mut start = 0;
        while start < self.buf.len() {
            let window = &self.buf[start..];
            if window.len() >= MAGIC.len() {
                if window[..MAGIC.len()] == MAGIC {
                    break;
                }
            } else if MAGIC.starts_with(window) {
                break; // possible magic prefix: keep the tail, wait for more
            }
            start += 1;
        }
        if start > 0 {
            self.resyncs += 1;
            self.buf.drain(..start);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn read_all(reader: &mut FrameReader) -> Vec<WireMessage> {
        let mut out = Vec::new();
        while let Some(m) = reader.next_message() {
            out.push(m);
        }
        out
    }

    #[test]
    fn request_frames_round_trip() {
        let requests = [
            WireRequest {
                request_id: 0,
                server: 0,
                epoch: 0,
                op: Operation::Read,
            },
            WireRequest {
                request_id: u64::MAX,
                server: u32::MAX as usize,
                epoch: u64::MAX,
                op: Operation::Write(Entry {
                    timestamp: u64::MAX,
                    value: 0x0123_4567_89ab_cdef,
                }),
            },
        ];
        let mut wire = Vec::new();
        for r in &requests {
            encode_request(r, &mut wire);
        }
        let mut reader = FrameReader::new();
        reader.push(&wire);
        let decoded = read_all(&mut reader);
        assert_eq!(
            decoded,
            requests.map(WireMessage::Request).to_vec(),
            "round trip"
        );
        assert_eq!(reader.resyncs(), 0);
        assert_eq!(reader.buffered(), 0);
    }

    #[test]
    fn reply_frames_round_trip() {
        let replies = [
            Reply {
                server: 7,
                request_id: 42,
                entry: None,
                epoch: 3,
                stale: false,
            },
            Reply {
                server: 1023,
                request_id: 0xdead_beef,
                entry: Some(Entry {
                    timestamp: 9,
                    value: 81,
                }),
                epoch: u64::MAX,
                stale: false,
            },
            // A fenced reply: the epoch field carries the server's current
            // epoch, the entry tag is the stale marker.
            Reply {
                server: 5,
                request_id: 77,
                entry: None,
                epoch: 12,
                stale: true,
            },
        ];
        let mut wire = Vec::new();
        for r in &replies {
            encode_reply(r, &mut wire);
        }
        let mut reader = FrameReader::new();
        reader.push(&wire);
        assert_eq!(
            read_all(&mut reader),
            replies.map(WireMessage::Reply).to_vec()
        );
    }

    #[test]
    fn torn_frames_decode_byte_by_byte() {
        let reply = Reply {
            server: 3,
            request_id: 99,
            entry: Some(Entry {
                timestamp: 5,
                value: 55,
            }),
            epoch: 1,
            stale: false,
        };
        let mut wire = Vec::new();
        encode_reply(&reply, &mut wire);
        let mut reader = FrameReader::new();
        for &byte in &wire[..wire.len() - 1] {
            reader.push(&[byte]);
            assert_eq!(reader.next_message(), None, "frame is still incomplete");
        }
        reader.push(&wire[wire.len() - 1..]);
        assert_eq!(reader.next_message(), Some(WireMessage::Reply(reply)));
    }

    #[test]
    fn garbage_prefix_resynchronises() {
        let reply = Reply {
            server: 0,
            request_id: 1,
            entry: None,
            epoch: 0,
            stale: false,
        };
        let mut wire = b"noise noise".to_vec();
        encode_reply(&reply, &mut wire);
        let mut reader = FrameReader::new();
        reader.push(&wire);
        assert_eq!(reader.next_message(), Some(WireMessage::Reply(reply)));
        assert!(reader.resyncs() >= 1);
    }

    #[test]
    fn oversized_length_is_rejected_without_allocation() {
        let mut wire = Vec::new();
        wire.extend_from_slice(&MAGIC);
        wire.extend_from_slice(&u32::MAX.to_le_bytes()); // a 4 GiB claim
        let good = Reply {
            server: 2,
            request_id: 7,
            entry: None,
            epoch: 0,
            stale: false,
        };
        encode_reply(&good, &mut wire);
        let mut reader = FrameReader::new();
        reader.push(&wire);
        assert_eq!(reader.next_message(), Some(WireMessage::Reply(good)));
        assert_eq!(reader.oversized(), 1);
        assert!(reader.buffered() < HEADER_LEN);
    }

    #[test]
    fn batch_frames_round_trip_in_order() {
        let requests: Vec<WireRequest> = (0..5)
            .map(|i| WireRequest {
                request_id: i,
                server: i as usize,
                epoch: i / 2,
                op: if i % 2 == 0 {
                    Operation::Read
                } else {
                    Operation::Write(Entry {
                        timestamp: i,
                        value: i * 10,
                    })
                },
            })
            .collect();
        let mut wire = Vec::new();
        encode_request_batch(&requests, &mut wire);
        // One batch frame: a single header for all five messages.
        assert_eq!(wire.len(), HEADER_LEN + 2 + 3 * 22 + 2 * 38);
        let mut reader = FrameReader::new();
        reader.push(&wire);
        let decoded = read_all(&mut reader);
        assert_eq!(
            decoded,
            requests
                .iter()
                .copied()
                .map(WireMessage::Request)
                .collect::<Vec<_>>()
        );
        assert_eq!(reader.resyncs(), 0);
        assert_eq!(reader.buffered(), 0);
    }

    #[test]
    fn reply_batches_chunk_at_max_batch_and_single_chunks_fall_back() {
        // MAX_BATCH + 1 replies: one full batch frame plus one plain frame.
        let replies: Vec<Reply> = (0..=MAX_BATCH as u64)
            .map(|i| Reply {
                server: (i % 7) as usize,
                request_id: i,
                entry: (i % 3 == 0).then_some(Entry {
                    timestamp: i,
                    value: i + 1,
                }),
                epoch: i % 5,
                stale: i % 3 == 1,
            })
            .collect();
        let mut wire = Vec::new();
        encode_reply_batch(&replies, &mut wire);
        let mut reader = FrameReader::new();
        reader.push(&wire);
        let decoded = read_all(&mut reader);
        assert_eq!(
            decoded,
            replies
                .iter()
                .copied()
                .map(WireMessage::Reply)
                .collect::<Vec<_>>()
        );
        // A one-message "batch" is exactly the single-message encoding.
        let mut single_batch = Vec::new();
        encode_reply_batch(&replies[..1], &mut single_batch);
        let mut single = Vec::new();
        encode_reply(&replies[0], &mut single);
        assert_eq!(single_batch, single);
        // And encoding nothing emits nothing.
        let mut empty = Vec::new();
        encode_reply_batch(&[], &mut empty);
        encode_request_batch(&[], &mut empty);
        assert!(empty.is_empty());
    }

    #[test]
    fn batch_frames_survive_torn_delivery() {
        let requests: Vec<WireRequest> = (0..3)
            .map(|i| WireRequest {
                request_id: 100 + i,
                server: i as usize,
                epoch: 2,
                op: Operation::Read,
            })
            .collect();
        let mut wire = Vec::new();
        encode_request_batch(&requests, &mut wire);
        let mut reader = FrameReader::new();
        // Nothing decodes until the last byte of the batch arrives; then
        // everything does.
        for &byte in &wire[..wire.len() - 1] {
            reader.push(&[byte]);
            assert_eq!(reader.next_message(), None);
        }
        reader.push(&wire[wire.len() - 1..]);
        assert_eq!(read_all(&mut reader).len(), 3);
    }

    #[test]
    fn corrupt_batch_is_rejected_whole_and_the_stream_recovers() {
        let requests: Vec<WireRequest> = (0..3)
            .map(|i| WireRequest {
                request_id: i,
                server: 0,
                epoch: 0,
                op: Operation::Read,
            })
            .collect();
        let mut wire = Vec::new();
        encode_request_batch(&requests, &mut wire);
        // Corrupt the *second* item's kind byte: items 1 and 3 are intact,
        // but the frame must be discarded whole — no partial salvage.
        wire[HEADER_LEN + 2 + 22] = 0xee;
        let good = Reply {
            server: 1,
            request_id: 50,
            entry: None,
            epoch: 0,
            stale: false,
        };
        encode_reply(&good, &mut wire);
        let mut reader = FrameReader::new();
        reader.push(&wire);
        assert_eq!(read_all(&mut reader), vec![WireMessage::Reply(good)]);
        assert!(reader.resyncs() >= 1);
    }

    #[test]
    fn batch_with_a_lying_count_is_rejected() {
        for bad_count in [0u8, 3] {
            let mut wire = Vec::new();
            // A batch frame claiming `bad_count` items but carrying two.
            let items: Vec<WireRequest> = (0..2)
                .map(|i| WireRequest {
                    request_id: i,
                    server: 0,
                    epoch: 0,
                    op: Operation::Read,
                })
                .collect();
            frame_header(2 + 2 * 22, &mut wire);
            wire.push(KIND_BATCH);
            wire.push(bad_count);
            for item in &items {
                encode_request_item(item, &mut wire);
            }
            let good = Reply {
                server: 2,
                request_id: 9,
                entry: None,
                epoch: 0,
                stale: false,
            };
            encode_reply(&good, &mut wire);
            let mut reader = FrameReader::new();
            reader.push(&wire);
            assert_eq!(
                read_all(&mut reader),
                vec![WireMessage::Reply(good)],
                "count {bad_count} must reject the frame"
            );
            assert!(reader.resyncs() >= 1);
        }
    }

    #[test]
    fn stale_replies_round_trip_with_the_servers_epoch() {
        let fenced = Reply {
            server: 9,
            request_id: 4096,
            entry: None,
            epoch: 7, // the server's current epoch, not the request's
            stale: true,
        };
        let mut wire = Vec::new();
        encode_reply(&fenced, &mut wire);
        assert_eq!(
            wire.len(),
            HEADER_LEN + ITEM_SHORT,
            "fenced replies stay short"
        );
        let mut reader = FrameReader::new();
        reader.push(&wire);
        assert_eq!(reader.next_message(), Some(WireMessage::Reply(fenced)));
        assert_eq!(reader.resyncs(), 0);
    }

    #[test]
    fn the_stale_tag_on_a_request_is_rejected() {
        let request = WireRequest {
            request_id: 5,
            server: 1,
            epoch: 0,
            op: Operation::Read,
        };
        let mut wire = Vec::new();
        encode_request(&request, &mut wire);
        *wire.last_mut().unwrap() = ENTRY_STALE; // flip the op tag
        let good = Reply {
            server: 2,
            request_id: 6,
            entry: None,
            epoch: 0,
            stale: false,
        };
        encode_reply(&good, &mut wire);
        let mut reader = FrameReader::new();
        reader.push(&wire);
        assert_eq!(read_all(&mut reader), vec![WireMessage::Reply(good)]);
        assert!(reader.resyncs() >= 1);
    }

    #[test]
    fn corrupt_payload_is_skipped_and_the_stream_recovers() {
        let mut wire = Vec::new();
        wire.extend_from_slice(&MAGIC);
        wire.extend_from_slice(&22u32.to_le_bytes());
        wire.extend_from_slice(&[0xff; 22]); // bad kind byte
        let good = Reply {
            server: 4,
            request_id: 11,
            entry: None,
            epoch: 0,
            stale: false,
        };
        encode_reply(&good, &mut wire);
        let mut reader = FrameReader::new();
        reader.push(&wire);
        assert_eq!(reader.next_message(), Some(WireMessage::Reply(good)));
        assert!(reader.resyncs() >= 1);
    }
}
