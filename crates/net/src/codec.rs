//! Length-prefixed binary wire codec for protocol messages.
//!
//! Every frame is `MAGIC (4 bytes) | LEN (u32 LE) | payload (LEN bytes)`.
//! The payload layouts are fixed — a kind byte, little-endian fixed-width
//! integers, and a presence byte for the optional entry — so encoding and
//! decoding are straight byte shuffles with no schema machinery and no
//! external serialisation dependency:
//!
//! ```text
//! request  = 0x01 | request_id u64 LE | server u32 LE | op
//! op       = 0x00 (read)  |  0x01 ts u64 LE value u64 LE (write)
//! reply    = 0x02 | request_id u64 LE | server u32 LE | entry
//! entry    = 0x00 (none)  |  0x01 ts u64 LE value u64 LE (some)
//! ```
//!
//! # Robustness
//!
//! [`FrameReader`] is an incremental decoder fed arbitrary byte chunks (TCP
//! gives no message boundaries). It tolerates the two classic stream
//! corruptions:
//!
//! * **torn / garbled input** — when the buffer does not start with the
//!   magic, or a payload fails to decode, the reader discards bytes up to the
//!   next magic occurrence and counts a *resync*; a later well-formed frame
//!   decodes normally;
//! * **oversized frames** — a length prefix above [`MAX_PAYLOAD`] is rejected
//!   *before* any allocation (a 4 GiB length in a corrupt frame must not
//!   become a 4 GiB buffer), counted, and scanned past like garbage.
//!
//! The counters ([`FrameReader::resyncs`], [`FrameReader::oversized`]) let
//! transports expose corruption instead of silently riding through it.

use bqs_service::transport::{Operation, Reply};
use bqs_sim::server::Entry;

/// Frame preamble: "BQN" + wire-format version 1.
pub const MAGIC: [u8; 4] = *b"BQN1";

/// Hard ceiling on a frame's payload length. The largest legal payload (a
/// write request or entry-bearing reply) is 30 bytes; anything above this is
/// corruption and is rejected before allocation.
pub const MAX_PAYLOAD: usize = 64;

/// Bytes of `MAGIC | LEN` preceding every payload.
pub const HEADER_LEN: usize = MAGIC.len() + 4;

const KIND_REQUEST: u8 = 0x01;
const KIND_REPLY: u8 = 0x02;
const OP_READ: u8 = 0x00;
const OP_WRITE: u8 = 0x01;
const ENTRY_NONE: u8 = 0x00;
const ENTRY_SOME: u8 = 0x01;

/// A request as it travels on the wire: [`bqs_service::transport::Request`]
/// minus the in-process reply channel (the connection itself is the reply
/// path on a socket transport).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WireRequest {
    /// Correlation id, echoed verbatim by the server.
    pub request_id: u64,
    /// The server index the operation is addressed to.
    pub server: usize,
    /// The operation to perform.
    pub op: Operation,
}

/// Any decoded frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireMessage {
    /// A client-to-server request.
    Request(WireRequest),
    /// A server-to-client reply.
    Reply(Reply),
}

/// Appends one encoded request frame to `buf`.
///
/// # Panics
///
/// Panics if `server` does not fit the wire's `u32` server index.
pub fn encode_request(request: &WireRequest, buf: &mut Vec<u8>) {
    let server = u32::try_from(request.server).expect("server index fits the wire format");
    let payload_len: u32 = match request.op {
        Operation::Read => 14,
        Operation::Write(_) => 30,
    };
    buf.extend_from_slice(&MAGIC);
    buf.extend_from_slice(&payload_len.to_le_bytes());
    buf.push(KIND_REQUEST);
    buf.extend_from_slice(&request.request_id.to_le_bytes());
    buf.extend_from_slice(&server.to_le_bytes());
    match request.op {
        Operation::Read => buf.push(OP_READ),
        Operation::Write(entry) => {
            buf.push(OP_WRITE);
            buf.extend_from_slice(&entry.timestamp.to_le_bytes());
            buf.extend_from_slice(&entry.value.to_le_bytes());
        }
    }
}

/// Appends one encoded reply frame to `buf`.
///
/// # Panics
///
/// Panics if `reply.server` does not fit the wire's `u32` server index.
pub fn encode_reply(reply: &Reply, buf: &mut Vec<u8>) {
    let server = u32::try_from(reply.server).expect("server index fits the wire format");
    let payload_len: u32 = match reply.entry {
        None => 14,
        Some(_) => 30,
    };
    buf.extend_from_slice(&MAGIC);
    buf.extend_from_slice(&payload_len.to_le_bytes());
    buf.push(KIND_REPLY);
    buf.extend_from_slice(&reply.request_id.to_le_bytes());
    buf.extend_from_slice(&server.to_le_bytes());
    match reply.entry {
        None => buf.push(ENTRY_NONE),
        Some(entry) => {
            buf.push(ENTRY_SOME);
            buf.extend_from_slice(&entry.timestamp.to_le_bytes());
            buf.extend_from_slice(&entry.value.to_le_bytes());
        }
    }
}

/// Decodes one payload (the bytes after `MAGIC | LEN`). `None` means the
/// payload is malformed — the caller resynchronises.
fn decode_payload(payload: &[u8]) -> Option<WireMessage> {
    let (&kind, rest) = payload.split_first()?;
    let (id_bytes, rest) = rest.split_first_chunk::<8>()?;
    let request_id = u64::from_le_bytes(*id_bytes);
    let (server_bytes, rest) = rest.split_first_chunk::<4>()?;
    let server = u32::from_le_bytes(*server_bytes) as usize;
    let (&tag, rest) = rest.split_first()?;
    let entry = match tag {
        ENTRY_NONE => {
            if !rest.is_empty() {
                return None;
            }
            None
        }
        ENTRY_SOME => {
            let (ts_bytes, rest) = rest.split_first_chunk::<8>()?;
            let (value_bytes, rest) = rest.split_first_chunk::<8>()?;
            if !rest.is_empty() {
                return None;
            }
            Some(Entry {
                timestamp: u64::from_le_bytes(*ts_bytes),
                value: u64::from_le_bytes(*value_bytes),
            })
        }
        _ => return None,
    };
    match (kind, entry) {
        (KIND_REQUEST, None) => Some(WireMessage::Request(WireRequest {
            request_id,
            server,
            op: Operation::Read,
        })),
        (KIND_REQUEST, Some(entry)) => Some(WireMessage::Request(WireRequest {
            request_id,
            server,
            op: Operation::Write(entry),
        })),
        (KIND_REPLY, entry) => Some(WireMessage::Reply(Reply {
            server,
            request_id,
            entry,
        })),
        _ => None,
    }
}

/// Incremental frame decoder over a byte stream with resynchronisation.
///
/// Feed it chunks as they arrive ([`FrameReader::push`]) and drain decoded
/// messages ([`FrameReader::next_message`]); partial frames simply wait for
/// more bytes. See the module docs for the corruption-handling rules.
#[derive(Debug, Default)]
pub struct FrameReader {
    buf: Vec<u8>,
    resyncs: u64,
    oversized: u64,
}

impl FrameReader {
    /// An empty reader.
    #[must_use]
    pub fn new() -> Self {
        FrameReader::default()
    }

    /// Appends received bytes to the internal buffer.
    pub fn push(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Times the stream lost framing and had to scan for the next magic.
    #[must_use]
    pub fn resyncs(&self) -> u64 {
        self.resyncs
    }

    /// Frames rejected for an over-limit length prefix.
    #[must_use]
    pub fn oversized(&self) -> u64 {
        self.oversized
    }

    /// Bytes currently buffered (partial frame awaiting more input).
    #[must_use]
    pub fn buffered(&self) -> usize {
        self.buf.len()
    }

    /// Decodes the next complete message, or `None` when the buffer holds no
    /// complete frame (garbage is scanned past; corrupt frames are skipped).
    pub fn next_message(&mut self) -> Option<WireMessage> {
        loop {
            self.skip_to_magic();
            if self.buf.len() < HEADER_LEN {
                return None;
            }
            let len_bytes: [u8; 4] = self.buf[MAGIC.len()..HEADER_LEN]
                .try_into()
                .expect("slice is 4 bytes");
            let payload_len = u32::from_le_bytes(len_bytes) as usize;
            if payload_len > MAX_PAYLOAD {
                // Reject before buffering/allocating anything of that size:
                // drop the magic so the scan moves past this header.
                self.oversized += 1;
                self.buf.drain(..MAGIC.len());
                continue;
            }
            if self.buf.len() < HEADER_LEN + payload_len {
                return None; // partial frame: wait for more bytes
            }
            let message = decode_payload(&self.buf[HEADER_LEN..HEADER_LEN + payload_len]);
            match message {
                Some(message) => {
                    self.buf.drain(..HEADER_LEN + payload_len);
                    return Some(message);
                }
                None => {
                    // Corrupt payload: skip the magic and rescan from inside
                    // the frame (the payload may contain the next real magic).
                    self.resyncs += 1;
                    self.buf.drain(..MAGIC.len());
                }
            }
        }
    }

    /// Drops leading bytes up to the first magic occurrence (or down to a
    /// possible magic prefix at the tail), counting a resync when anything
    /// was dropped.
    fn skip_to_magic(&mut self) {
        let mut start = 0;
        while start < self.buf.len() {
            let window = &self.buf[start..];
            if window.len() >= MAGIC.len() {
                if window[..MAGIC.len()] == MAGIC {
                    break;
                }
            } else if MAGIC.starts_with(window) {
                break; // possible magic prefix: keep the tail, wait for more
            }
            start += 1;
        }
        if start > 0 {
            self.resyncs += 1;
            self.buf.drain(..start);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn read_all(reader: &mut FrameReader) -> Vec<WireMessage> {
        let mut out = Vec::new();
        while let Some(m) = reader.next_message() {
            out.push(m);
        }
        out
    }

    #[test]
    fn request_frames_round_trip() {
        let requests = [
            WireRequest {
                request_id: 0,
                server: 0,
                op: Operation::Read,
            },
            WireRequest {
                request_id: u64::MAX,
                server: u32::MAX as usize,
                op: Operation::Write(Entry {
                    timestamp: u64::MAX,
                    value: 0x0123_4567_89ab_cdef,
                }),
            },
        ];
        let mut wire = Vec::new();
        for r in &requests {
            encode_request(r, &mut wire);
        }
        let mut reader = FrameReader::new();
        reader.push(&wire);
        let decoded = read_all(&mut reader);
        assert_eq!(
            decoded,
            requests.map(WireMessage::Request).to_vec(),
            "round trip"
        );
        assert_eq!(reader.resyncs(), 0);
        assert_eq!(reader.buffered(), 0);
    }

    #[test]
    fn reply_frames_round_trip() {
        let replies = [
            Reply {
                server: 7,
                request_id: 42,
                entry: None,
            },
            Reply {
                server: 1023,
                request_id: 0xdead_beef,
                entry: Some(Entry {
                    timestamp: 9,
                    value: 81,
                }),
            },
        ];
        let mut wire = Vec::new();
        for r in &replies {
            encode_reply(r, &mut wire);
        }
        let mut reader = FrameReader::new();
        reader.push(&wire);
        assert_eq!(
            read_all(&mut reader),
            replies.map(WireMessage::Reply).to_vec()
        );
    }

    #[test]
    fn torn_frames_decode_byte_by_byte() {
        let reply = Reply {
            server: 3,
            request_id: 99,
            entry: Some(Entry {
                timestamp: 5,
                value: 55,
            }),
        };
        let mut wire = Vec::new();
        encode_reply(&reply, &mut wire);
        let mut reader = FrameReader::new();
        for &byte in &wire[..wire.len() - 1] {
            reader.push(&[byte]);
            assert_eq!(reader.next_message(), None, "frame is still incomplete");
        }
        reader.push(&wire[wire.len() - 1..]);
        assert_eq!(reader.next_message(), Some(WireMessage::Reply(reply)));
    }

    #[test]
    fn garbage_prefix_resynchronises() {
        let reply = Reply {
            server: 0,
            request_id: 1,
            entry: None,
        };
        let mut wire = b"noise noise".to_vec();
        encode_reply(&reply, &mut wire);
        let mut reader = FrameReader::new();
        reader.push(&wire);
        assert_eq!(reader.next_message(), Some(WireMessage::Reply(reply)));
        assert!(reader.resyncs() >= 1);
    }

    #[test]
    fn oversized_length_is_rejected_without_allocation() {
        let mut wire = Vec::new();
        wire.extend_from_slice(&MAGIC);
        wire.extend_from_slice(&u32::MAX.to_le_bytes()); // a 4 GiB claim
        let good = Reply {
            server: 2,
            request_id: 7,
            entry: None,
        };
        encode_reply(&good, &mut wire);
        let mut reader = FrameReader::new();
        reader.push(&wire);
        assert_eq!(reader.next_message(), Some(WireMessage::Reply(good)));
        assert_eq!(reader.oversized(), 1);
        assert!(reader.buffered() < HEADER_LEN);
    }

    #[test]
    fn corrupt_payload_is_skipped_and_the_stream_recovers() {
        let mut wire = Vec::new();
        wire.extend_from_slice(&MAGIC);
        wire.extend_from_slice(&14u32.to_le_bytes());
        wire.extend_from_slice(&[0xff; 14]); // bad kind byte
        let good = Reply {
            server: 4,
            request_id: 11,
            entry: None,
        };
        encode_reply(&good, &mut wire);
        let mut reader = FrameReader::new();
        reader.push(&wire);
        assert_eq!(reader.next_message(), Some(WireMessage::Reply(good)));
        assert!(reader.resyncs() >= 1);
    }
}
