//! The socket server: sharded replicas behind a TCP or Unix-domain listener.
//!
//! [`SocketServer`] owns a [`LoopbackService`] — the same sharded replica
//! runtime the in-process benchmarks drive — and exposes it on a socket. The
//! thread structure per accepted connection is the classic split pair:
//!
//! * a **reader** thread decodes request frames ([`crate::codec`]) and hands
//!   each one to the service exactly as an in-process client would
//!   (`Transport::send` with the connection's reply channel), so replica
//!   semantics, fault injection, and metrics are byte-identical to the
//!   loopback path;
//! * a **writer** thread drains the connection's reply channel, encodes
//!   frames, and batches consecutive ready replies into single `write_all`
//!   calls (syscall coalescing matters at high offered rates).
//!
//! Per-server addressing is preserved end to end: a frame addressed to
//! server `i` reaches replica `i`'s owning shard, and only that shard. A
//! request naming a server outside the universe — or arriving while the
//! service is shutting down — is answered with the in-band "no answer" frame
//! (`entry = None`) rather than dropped, keeping the transport contract's
//! "every accepted request gets a reply" promise cheap to rely on.
//!
//! Connections are independent: each gets its own reply channel, so one slow
//! or dead client only ever stalls its own writer.

use std::io::{Read, Write};
use std::net::{Ipv4Addr, SocketAddr};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use bqs_service::metrics::ServiceMetrics;
use bqs_service::shard::LoopbackService;
use bqs_service::transport::{Reply, Request, Transport};
use bqs_sim::fault::FaultPlan;

use crate::codec::{encode_reply, FrameReader, WireMessage};
use crate::stream::{Endpoint, Listener, Stream};

/// How often blocked reads wake to check the shutdown flag.
const READ_TICK: Duration = Duration::from_millis(50);

/// A quorum service listening on a socket.
///
/// Dropping the server shuts it down: the listener is woken, every
/// connection thread is joined, and the underlying sharded service stops.
#[derive(Debug)]
pub struct SocketServer {
    service: Arc<LoopbackService>,
    endpoint: Endpoint,
    shutdown: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
    conns: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl SocketServer {
    /// Binds on an ephemeral TCP loopback port; read the actual address back
    /// from [`SocketServer::endpoint`].
    pub fn bind_tcp_loopback(plan: &FaultPlan, shards: usize, seed: u64) -> std::io::Result<Self> {
        let addr = SocketAddr::from((Ipv4Addr::LOCALHOST, 0));
        SocketServer::bind(Listener::bind_tcp(addr)?, plan, shards, seed)
    }

    /// Binds on a Unix-domain socket at `path` (a stale socket file from a
    /// previous run is replaced).
    pub fn bind_uds(
        path: impl Into<PathBuf>,
        plan: &FaultPlan,
        shards: usize,
        seed: u64,
    ) -> std::io::Result<Self> {
        SocketServer::bind(Listener::bind_uds(path.into())?, plan, shards, seed)
    }

    /// Serves a fresh sharded service (replica faults from `plan`, `shards`
    /// worker shards, deterministic per-shard RNG streams from `seed`) on an
    /// already-bound listener.
    pub fn bind(
        listener: Listener,
        plan: &FaultPlan,
        shards: usize,
        seed: u64,
    ) -> std::io::Result<Self> {
        let endpoint = listener.endpoint()?;
        let service = Arc::new(LoopbackService::spawn(plan, shards, seed));
        let shutdown = Arc::new(AtomicBool::new(false));
        let conns = Arc::new(Mutex::new(Vec::new()));
        let accept = {
            let service = Arc::clone(&service);
            let shutdown = Arc::clone(&shutdown);
            let conns = Arc::clone(&conns);
            std::thread::spawn(move || accept_loop(&listener, &service, &shutdown, &conns))
        };
        Ok(SocketServer {
            service,
            endpoint,
            shutdown,
            accept: Some(accept),
            conns,
        })
    }

    /// The address clients connect to.
    #[must_use]
    pub fn endpoint(&self) -> &Endpoint {
        &self.endpoint
    }

    /// Number of servers behind this endpoint.
    #[must_use]
    pub fn universe_size(&self) -> usize {
        self.service.universe_size()
    }

    /// The service's lock-free metrics (per-server access counts feeding the
    /// empirical load check, operation counters, latency histogram).
    #[must_use]
    pub fn metrics(&self) -> &Arc<ServiceMetrics> {
        self.service.metrics()
    }

    /// The servers a failure detector would report responsive under the
    /// bound fault plan.
    #[must_use]
    pub fn responsive_set(&self) -> &bqs_core::bitset::ServerSet {
        self.service.responsive_set()
    }
}

impl Drop for SocketServer {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        // Wake the accept loop: a throwaway connection makes `accept` return
        // so the thread can observe the flag and exit.
        let _ = self.endpoint.connect();
        if let Some(handle) = self.accept.take() {
            let _ = handle.join();
        }
        let handles = std::mem::take(&mut *self.conns.lock().expect("conn registry lock"));
        for handle in handles {
            let _ = handle.join();
        }
    }
}

/// Accepts connections until shutdown, spawning a reader/writer pair per
/// connection.
fn accept_loop(
    listener: &Listener,
    service: &Arc<LoopbackService>,
    shutdown: &Arc<AtomicBool>,
    conns: &Mutex<Vec<JoinHandle<()>>>,
) {
    loop {
        let stream = match listener.accept() {
            Ok(stream) => stream,
            Err(_) => {
                if shutdown.load(Ordering::SeqCst) {
                    return;
                }
                continue; // transient accept error: keep serving
            }
        };
        if shutdown.load(Ordering::SeqCst) {
            return; // the wake-up poke (or a late client): drop and exit
        }
        let _ = stream.set_nodelay();
        let writer_stream = match stream.try_clone() {
            Ok(clone) => clone,
            Err(_) => continue,
        };
        let (reply_tx, reply_rx) = mpsc::channel::<Reply>();
        let reader = {
            let service = Arc::clone(service);
            let shutdown = Arc::clone(shutdown);
            std::thread::spawn(move || connection_reader(stream, &service, &reply_tx, &shutdown))
        };
        let writer = std::thread::spawn(move || connection_writer(writer_stream, &reply_rx));
        let mut registry = conns.lock().expect("conn registry lock");
        registry.push(reader);
        registry.push(writer);
    }
}

/// Decodes inbound frames and forwards each request to its replica's shard.
fn connection_reader(
    mut stream: Stream,
    service: &LoopbackService,
    reply_tx: &mpsc::Sender<Reply>,
    shutdown: &AtomicBool,
) {
    let _ = stream.set_read_timeout(Some(READ_TICK));
    let n = service.universe_size();
    let mut frames = FrameReader::new();
    let mut chunk = [0u8; 16 * 1024];
    loop {
        if shutdown.load(Ordering::SeqCst) {
            stream.shutdown();
            return;
        }
        match stream.read(&mut chunk) {
            Ok(0) => return, // clean EOF: client went away
            Ok(got) => {
                frames.push(&chunk[..got]);
                while let Some(message) = frames.next_message() {
                    let request = match message {
                        WireMessage::Request(request) => request,
                        WireMessage::Reply(_) => continue, // confused peer
                    };
                    let delivered = request.server < n
                        && service.send(Request {
                            server: request.server,
                            op: request.op,
                            request_id: request.request_id,
                            reply: reply_tx.clone(),
                        });
                    if !delivered {
                        // Out-of-universe address or a shard that is gone:
                        // answer in-band so the client's deadline machinery
                        // is a backstop, not the common path.
                        let _ = reply_tx.send(Reply {
                            server: request.server,
                            request_id: request.request_id,
                            entry: None,
                        });
                    }
                }
            }
            Err(err) if Stream::is_timeout(&err) => continue,
            Err(_) => return, // connection reset
        }
    }
}

/// Encodes replies back onto the connection, batching ready frames into one
/// write.
fn connection_writer(mut stream: Stream, replies: &mpsc::Receiver<Reply>) {
    let mut buf = Vec::with_capacity(4096);
    while let Ok(first) = replies.recv() {
        buf.clear();
        encode_reply(&first, &mut buf);
        // Coalesce everything already queued into the same syscall.
        while buf.len() < 60 * 1024 {
            match replies.try_recv() {
                Ok(reply) => encode_reply(&reply, &mut buf),
                Err(_) => break,
            }
        }
        if stream.write_all(&buf).is_err() {
            return; // connection reset: shard sends into a closed channel now
        }
    }
    // Channel disconnected: the reader (and any in-flight shard handles) are
    // done with this connection.
}
