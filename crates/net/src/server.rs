//! The socket server: sharded replicas behind a TCP or Unix-domain listener.
//!
//! [`SocketServer`] owns a [`LoopbackService`] — the same sharded replica
//! runtime the in-process benchmarks drive — and exposes it on a socket. The
//! thread structure per accepted connection is the classic split pair, and
//! both halves are batched end to end:
//!
//! * a **reader** thread decodes request frames ([`crate::codec`], including
//!   multi-message `WireBatch` frames) and hands every request decoded from
//!   one read chunk to the service in a single
//!   [`Transport::send_batch`] call — one shard-mailbox wakeup per
//!   destination shard per chunk, exactly as an in-process batching client
//!   would, so replica semantics, fault injection, and metrics are
//!   byte-identical to the loopback path;
//! * a **writer** thread drains the connection's reply
//!   [`Mailbox`](bqs_service::mailbox::Mailbox) a whole
//!   batch per wakeup and encodes each drained batch into coalesced
//!   `WireBatch` frames ([`crate::codec::encode_reply_batch`]) written with
//!   one `write_all` — syscall count scales with wakeups, not replies.
//!
//! Per-server addressing is preserved end to end: a frame addressed to
//! server `i` reaches replica `i`'s owning shard, and only that shard. A
//! request naming a server outside the universe is answered with the in-band
//! "no answer" frame (`entry = None`) rather than dropped. Requests that
//! arrive while the service itself is tearing down can be dropped by their
//! closing shard mailbox; the client's deadline sweeper backstops that
//! (shutdown-only) window.
//!
//! Connections are independent: each gets its own reply mailbox, so one slow
//! or dead client only ever stalls its own writer. The reader closes the
//! mailbox when its connection dies, which both wakes the writer to exit and
//! turns any still-in-flight shard completions into silent no-ops.

use std::io::{Read, Write};
use std::net::{Ipv4Addr, SocketAddr};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use bqs_service::mailbox::{ReplyHandle, ReplyMailbox};
use bqs_service::metrics::ServiceMetrics;
use bqs_service::shard::LoopbackService;
use bqs_service::transport::{Reply, Request, Transport};
use bqs_sim::fault::FaultPlan;

use crate::codec::{encode_reply_batch, FrameReader, WireMessage};
use crate::stream::{Endpoint, Listener, Stream};

/// How often blocked reads wake to check the shutdown flag.
const READ_TICK: Duration = Duration::from_millis(50);

/// A quorum service listening on a socket.
///
/// Dropping the server shuts it down: the listener is woken, every
/// connection thread is joined, and the underlying sharded service stops.
#[derive(Debug)]
pub struct SocketServer {
    service: Arc<LoopbackService>,
    endpoint: Endpoint,
    shutdown: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
    conns: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl SocketServer {
    /// Binds on an ephemeral TCP loopback port; read the actual address back
    /// from [`SocketServer::endpoint`].
    pub fn bind_tcp_loopback(plan: &FaultPlan, shards: usize, seed: u64) -> std::io::Result<Self> {
        let addr = SocketAddr::from((Ipv4Addr::LOCALHOST, 0));
        SocketServer::bind(Listener::bind_tcp(addr)?, plan, shards, seed)
    }

    /// Binds on a Unix-domain socket at `path` (a stale socket file from a
    /// previous run is replaced).
    pub fn bind_uds(
        path: impl Into<PathBuf>,
        plan: &FaultPlan,
        shards: usize,
        seed: u64,
    ) -> std::io::Result<Self> {
        SocketServer::bind(Listener::bind_uds(path.into())?, plan, shards, seed)
    }

    /// Serves a fresh sharded service (replica faults from `plan`, `shards`
    /// worker shards, deterministic per-shard RNG streams from `seed`) on an
    /// already-bound listener.
    pub fn bind(
        listener: Listener,
        plan: &FaultPlan,
        shards: usize,
        seed: u64,
    ) -> std::io::Result<Self> {
        let endpoint = listener.endpoint()?;
        let service = Arc::new(LoopbackService::spawn(plan, shards, seed));
        let shutdown = Arc::new(AtomicBool::new(false));
        let conns = Arc::new(Mutex::new(Vec::new()));
        let accept = {
            let service = Arc::clone(&service);
            let shutdown = Arc::clone(&shutdown);
            let conns = Arc::clone(&conns);
            std::thread::spawn(move || accept_loop(&listener, &service, &shutdown, &conns))
        };
        Ok(SocketServer {
            service,
            endpoint,
            shutdown,
            accept: Some(accept),
            conns,
        })
    }

    /// The address clients connect to.
    #[must_use]
    pub fn endpoint(&self) -> &Endpoint {
        &self.endpoint
    }

    /// Number of servers behind this endpoint.
    #[must_use]
    pub fn universe_size(&self) -> usize {
        self.service.universe_size()
    }

    /// The service's lock-free metrics (per-server access counts feeding the
    /// empirical load check, operation counters, latency histogram).
    #[must_use]
    pub fn metrics(&self) -> &Arc<ServiceMetrics> {
        self.service.metrics()
    }

    /// The servers a failure detector would report responsive under the
    /// bound fault plan.
    #[must_use]
    pub fn responsive_set(&self) -> &bqs_core::bitset::ServerSet {
        self.service.responsive_set()
    }

    /// The epoch gate shared by every replica shard — the reconfiguration
    /// manager's server-side handle (see [`bqs_sim::epoch::EpochGate`]).
    #[must_use]
    pub fn epoch_gate(&self) -> &Arc<bqs_sim::epoch::EpochGate> {
        self.service.epoch_gate()
    }

    /// Crashes the named replicas at runtime (fault injection for
    /// reconfiguration drills). The responsive view is deliberately left
    /// stale — detecting the crash is the suspicion engine's job.
    pub fn crash_servers(&self, servers: &[usize]) {
        self.service.crash_servers(servers);
    }
}

impl Drop for SocketServer {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        // Wake the accept loop: a throwaway connection makes `accept` return
        // so the thread can observe the flag and exit.
        let _ = self.endpoint.connect();
        if let Some(handle) = self.accept.take() {
            let _ = handle.join();
        }
        let handles = std::mem::take(&mut *self.conns.lock().expect("conn registry lock"));
        for handle in handles {
            let _ = handle.join();
        }
    }
}

/// Accepts connections until shutdown, spawning a reader/writer pair per
/// connection.
fn accept_loop(
    listener: &Listener,
    service: &Arc<LoopbackService>,
    shutdown: &Arc<AtomicBool>,
    conns: &Mutex<Vec<JoinHandle<()>>>,
) {
    // Connection counter feeding `Request::origin`: the server's notion of
    // client identity is the connection, exactly what a real adversary can
    // distinguish. Ids start at 1 so origin 0 stays "anonymous".
    let next_origin = AtomicU64::new(1);
    loop {
        let stream = match listener.accept() {
            Ok(stream) => stream,
            Err(_) => {
                if shutdown.load(Ordering::SeqCst) {
                    return;
                }
                continue; // transient accept error: keep serving
            }
        };
        if shutdown.load(Ordering::SeqCst) {
            return; // the wake-up poke (or a late client): drop and exit
        }
        let _ = stream.set_nodelay();
        let writer_stream = match stream.try_clone() {
            Ok(clone) => clone,
            Err(_) => continue,
        };
        let mailbox = Arc::new(ReplyMailbox::new());
        let origin = next_origin.fetch_add(1, Ordering::Relaxed);
        let reader = {
            let service = Arc::clone(service);
            let shutdown = Arc::clone(shutdown);
            let mailbox = Arc::clone(&mailbox);
            std::thread::spawn(move || {
                connection_reader(stream, &service, &mailbox, &shutdown, origin)
            })
        };
        let writer = std::thread::spawn(move || connection_writer(writer_stream, &mailbox));
        let mut registry = conns.lock().expect("conn registry lock");
        registry.push(reader);
        registry.push(writer);
    }
}

/// Decodes inbound frames and forwards every request decoded from one read
/// chunk to the service in a single batched send — shard wakeups scale with
/// read chunks, not with individual requests.
fn connection_reader(
    mut stream: Stream,
    service: &LoopbackService,
    mailbox: &Arc<ReplyMailbox>,
    shutdown: &AtomicBool,
    origin: u64,
) {
    let _ = stream.set_read_timeout(Some(READ_TICK));
    let n = service.universe_size();
    let mut frames = FrameReader::new();
    let mut chunk = [0u8; 16 * 1024];
    let mut batch: Vec<Request> = Vec::new();
    loop {
        if shutdown.load(Ordering::SeqCst) {
            stream.shutdown();
            break;
        }
        match stream.read(&mut chunk) {
            Ok(0) => break, // clean EOF: client went away
            Ok(got) => {
                frames.push(&chunk[..got]);
                debug_assert!(batch.is_empty());
                while let Some(message) = frames.next_message() {
                    let request = match message {
                        WireMessage::Request(request) => request,
                        WireMessage::Reply(_) => continue, // confused peer
                    };
                    if request.server >= n {
                        // Out-of-universe address: answer in-band so the
                        // client's deadline machinery is a backstop, not the
                        // common path.
                        let _ = mailbox.push(Reply {
                            server: request.server,
                            request_id: request.request_id,
                            entry: None,
                            epoch: request.epoch,
                            stale: false,
                        });
                        continue;
                    }
                    batch.push(Request {
                        server: request.server,
                        op: request.op,
                        request_id: request.request_id,
                        // Client identity is not on the wire; the accepting
                        // connection *is* the identity (pool one connection
                        // per client when per-client adversaries are in play).
                        origin,
                        epoch: request.epoch,
                        reply: Arc::clone(mailbox) as ReplyHandle,
                    });
                }
                // One batched hand-off per read chunk. A `false` here means a
                // shard mailbox has closed — service teardown — and the
                // affected requests are backstopped by the client's deadline
                // sweeper.
                if !batch.is_empty() {
                    let _ = service.send_batch(&mut batch);
                    batch.clear();
                }
            }
            Err(err) if Stream::is_timeout(&err) => continue,
            Err(_) => break, // connection reset
        }
    }
    // Wake the writer to exit and turn late shard completions into no-ops.
    mailbox.close();
}

/// Encodes drained reply batches back onto the connection — one mailbox
/// drain, one batched encode, one write per wakeup.
fn connection_writer(mut stream: Stream, mailbox: &ReplyMailbox) {
    let mut batch: Vec<Reply> = Vec::new();
    let mut buf = Vec::with_capacity(4096);
    while mailbox.drain_blocking(&mut batch) {
        buf.clear();
        encode_reply_batch(&batch, &mut buf);
        batch.clear();
        if stream.write_all(&buf).is_err() {
            // Connection reset: the reader's next read on the same socket
            // fails too and closes the mailbox, so late shard completions
            // become no-ops rather than piling up.
            return;
        }
    }
    // Mailbox closed and drained: the reader is done with this connection.
}
