//! Transversals, `MT(Q)` and resilience (Definitions 3.3 and 3.4).
//!
//! A transversal is a set of servers hitting every quorum; the size of the smallest
//! transversal `MT(Q)` determines the resilience `f = MT(Q) − 1`: the largest number
//! of crashes the system is *guaranteed* to survive. Computing `MT(Q)` exactly is the
//! minimum hitting-set problem (NP-hard in general); explicit systems in this
//! workspace are small enough for an exact branch-and-bound search, with a greedy
//! upper bound used both on its own and to prune the exact search.

use crate::bitset::ServerSet;

/// A greedy transversal: repeatedly pick the server covering the most un-hit quorums.
/// Its size upper-bounds `MT(Q)` and seeds the branch-and-bound search.
#[must_use]
pub fn greedy_transversal(quorums: &[ServerSet], universe_size: usize) -> ServerSet {
    let mut chosen = ServerSet::new(universe_size);
    let mut unhit: Vec<usize> = (0..quorums.len()).collect();
    while !unhit.is_empty() {
        let mut counts = vec![0usize; universe_size];
        for &qi in &unhit {
            for u in quorums[qi].iter() {
                counts[u] += 1;
            }
        }
        let best = counts
            .iter()
            .enumerate()
            .max_by_key(|&(_, &c)| c)
            .map(|(u, _)| u)
            .expect("universe must be non-empty when quorums remain un-hit");
        chosen.insert(best);
        unhit.retain(|&qi| !quorums[qi].contains(best));
    }
    chosen
}

/// The exact minimal transversal size `MT(Q)`, by branch and bound.
///
/// # Panics
///
/// Panics if `quorums` is empty.
#[must_use]
pub fn min_transversal_size(quorums: &[ServerSet], universe_size: usize) -> usize {
    min_transversal(quorums, universe_size).len()
}

/// An exact minimum transversal (hitting set) of the quorums.
///
/// The search branches on the servers of an arbitrary un-hit quorum (one of them must
/// be in any transversal), pruning with the greedy upper bound.
///
/// # Panics
///
/// Panics if `quorums` is empty.
#[must_use]
pub fn min_transversal(quorums: &[ServerSet], universe_size: usize) -> ServerSet {
    assert!(!quorums.is_empty(), "quorum system must be non-empty");
    let mut best = greedy_transversal(quorums, universe_size);
    let mut current = ServerSet::new(universe_size);
    branch(quorums, &mut current, &mut best);
    best
}

fn branch(quorums: &[ServerSet], current: &mut ServerSet, best: &mut ServerSet) {
    if current.len() >= best.len() {
        return; // cannot improve on the incumbent
    }
    // Find an un-hit quorum, preferring one with the fewest remaining choices.
    let mut pick: Option<&ServerSet> = None;
    for q in quorums {
        if q.is_disjoint_from(current) {
            match pick {
                None => pick = Some(q),
                Some(p) if q.len() < p.len() => pick = Some(q),
                _ => {}
            }
        }
    }
    let Some(q) = pick else {
        // Every quorum is hit; `current` is a transversal.
        if current.len() < best.len() {
            *best = current.clone();
        }
        return;
    };
    if current.len() + 1 >= best.len() {
        return; // adding any server cannot beat the incumbent
    }
    for u in q.iter() {
        current.insert(u);
        branch(quorums, current, best);
        current.remove(u);
    }
}

/// The resilience `f = MT(Q) − 1` (Definition 3.4): the largest `k` such that every
/// `k`-subset of servers misses some quorum.
#[must_use]
pub fn resilience(quorums: &[ServerSet], universe_size: usize) -> usize {
    min_transversal_size(quorums, universe_size).saturating_sub(1)
}

/// Returns true if `candidate` is a transversal of the quorums (hits every quorum).
#[must_use]
pub fn is_transversal(quorums: &[ServerSet], candidate: &ServerSet) -> bool {
    quorums.iter().all(|q| !q.is_disjoint_from(candidate))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sets(universe: usize, lists: &[&[usize]]) -> Vec<ServerSet> {
        lists
            .iter()
            .map(|l| ServerSet::from_indices(universe, l.iter().copied()))
            .collect()
    }

    #[test]
    fn majority_transversal() {
        // Majority over 5 servers: MT = 3 (any 3 servers hit every 3-subset),
        // resilience 2.
        let quorums: Vec<ServerSet> = bqs_combinatorics::subsets::KSubsets::new(5, 3)
            .map(|s| ServerSet::from_indices(5, s))
            .collect();
        assert_eq!(min_transversal_size(&quorums, 5), 3);
        assert_eq!(resilience(&quorums, 5), 2);
    }

    #[test]
    fn singleton_system() {
        let q = sets(4, &[&[2]]);
        let t = min_transversal(&q, 4);
        assert_eq!(t.to_vec(), vec![2]);
        assert_eq!(resilience(&q, 4), 0);
    }

    #[test]
    fn star_system_has_center_transversal() {
        // All quorums share server 0: MT = 1.
        let q = sets(5, &[&[0, 1], &[0, 2], &[0, 3, 4]]);
        assert_eq!(min_transversal_size(&q, 5), 1);
        let t = min_transversal(&q, 5);
        assert!(t.contains(0));
    }

    #[test]
    fn grid_rows_need_one_hit_per_row() {
        // Quorums = 3 disjoint "rows" over 9 elements... not a quorum system
        // (rows are disjoint), but min hitting set is still well defined = 3.
        let q = sets(9, &[&[0, 1, 2], &[3, 4, 5], &[6, 7, 8]]);
        assert_eq!(min_transversal_size(&q, 9), 3);
    }

    #[test]
    fn greedy_is_a_transversal_and_upper_bound() {
        let quorums: Vec<ServerSet> = bqs_combinatorics::subsets::KSubsets::new(6, 4)
            .map(|s| ServerSet::from_indices(6, s))
            .collect();
        let greedy = greedy_transversal(&quorums, 6);
        assert!(is_transversal(&quorums, &greedy));
        assert!(greedy.len() >= min_transversal_size(&quorums, 6));
    }

    #[test]
    fn exact_beats_or_matches_greedy_on_adversarial_instance() {
        // Instance where naive greedy can be suboptimal; exact must find size 2:
        // quorums {0,1},{0,2},{1,2},{3,1},{3,2}; {1,2} hits all.
        let q = sets(4, &[&[0, 1], &[0, 2], &[1, 2], &[3, 1], &[3, 2]]);
        assert_eq!(min_transversal_size(&q, 4), 2);
        let t = min_transversal(&q, 4);
        assert!(is_transversal(&q, &t));
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn threshold_transversal_formula() {
        // ℓ-of-k threshold: MT = k - ℓ + 1.
        for (k, l) in [(4usize, 3usize), (5, 4), (7, 5)] {
            let quorums: Vec<ServerSet> = bqs_combinatorics::subsets::KSubsets::new(k, l)
                .map(|s| ServerSet::from_indices(k, s))
                .collect();
            assert_eq!(min_transversal_size(&quorums, k), k - l + 1, "k={k} l={l}");
        }
    }

    #[test]
    fn is_transversal_rejects_non_hitting_sets() {
        let q = sets(4, &[&[0, 1], &[2, 3]]);
        assert!(!is_transversal(&q, &ServerSet::from_indices(4, [0])));
        assert!(is_transversal(&q, &ServerSet::from_indices(4, [0, 2])));
    }
}
