//! Core abstractions for Byzantine (b-masking) quorum systems.
//!
//! This crate implements the definitional and analytical machinery of
//! *The Load and Availability of Byzantine Quorum Systems* (Malkhi, Reiter & Wool,
//! PODC 1997 / SIAM J. Computing):
//!
//! * [`bitset::ServerSet`] — compact subsets of the server universe;
//! * [`quorum`] — the [`quorum::QuorumSystem`] trait and explicit quorum systems
//!   (Definition 3.1);
//! * [`measures`] — `c(Q)`, `IS(Q)`, degrees and fairness (Definition 3.2);
//! * [`transversal`] — minimal transversals `MT(Q)` and resilience `f`
//!   (Definitions 3.3–3.4);
//! * [`masking`] — the b-masking property (Definition 3.5, Lemma 3.6, Corollary 3.7)
//!   and the vote-masking rule it enables;
//! * [`strategy`] and [`load`] — access strategies and the system load `L(Q)`
//!   (Definition 3.8, Proposition 3.9), computed exactly by linear programming —
//!   explicitly for materialised systems, or by certified column generation
//!   against the pricing oracles of [`oracle`] for large-`n` constructions;
//! * [`availability`] — the crash probability `F_p(Q)` (Definition 3.10), exact and
//!   Monte-Carlo;
//! * [`bounds`] — the lower bounds of Theorem 4.1, Corollary 4.2 and
//!   Propositions 4.3–4.5;
//! * [`composition`] — quorum composition / boosting (Definition 4.6, Theorem 4.7).
//!
//! The concrete constructions of the paper (Threshold, Grid, M-Grid, RT, boostFPP,
//! M-Path) live in the companion `bqs-constructions` crate.
//!
//! # Example
//!
//! ```
//! use bqs_core::prelude::*;
//!
//! // The 3-of-4 threshold system: a regular quorum system with IS = 2.
//! let quorums: Vec<ServerSet> = bqs_combinatorics::subsets::KSubsets::new(4, 3)
//!     .map(|s| ServerSet::from_indices(4, s))
//!     .collect();
//! let system = ExplicitQuorumSystem::new(4, quorums).unwrap();
//!
//! // It masks b = 0 Byzantine failures (IS = 2 < 3) but survives one crash.
//! assert_eq!(masking_level(system.quorums(), 4), Some(0));
//! assert_eq!(resilience(system.quorums(), 4), 1);
//!
//! // Its load is 3/4 (fair system, Proposition 3.9), matching the exact LP.
//! let (load, _strategy) = optimal_load(system.quorums(), 4).unwrap();
//! assert!((load - 0.75).abs() < 1e-6);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod availability;
pub mod bitset;
pub mod bounds;
pub mod composition;
pub mod domination;
pub mod error;
pub mod eval;
pub mod load;
pub mod masking;
pub mod measures;
pub mod oracle;
pub mod quorum;
pub mod strategic;
pub mod strategy;
pub mod transversal;

pub use availability::{exact_crash_probability, monte_carlo_crash_probability, CrashEstimate};
pub use bitset::ServerSet;
pub use composition::{compose_explicit, ComposedSystem};
pub use error::QuorumError;
pub use eval::{Evaluator, FpEstimate, FpMethod};
pub use load::{
    fair_load, optimal_load, optimal_load_oracle, optimal_load_oracle_for_quorums, CertifiedLoad,
};
pub use masking::{is_b_masking, masking_level};
pub use oracle::MinWeightQuorumOracle;
pub use quorum::{ExplicitQuorumSystem, QuorumSystem};
pub use strategic::StrategicQuorumSystem;
pub use strategy::AccessStrategy;
pub use transversal::{min_transversal, min_transversal_size, resilience};

/// Convenient glob import for downstream crates and examples.
pub mod prelude {
    pub use crate::availability::{
        exact_crash_probability, monte_carlo_crash_probability, sample_alive_set, CrashEstimate,
    };
    pub use crate::bitset::ServerSet;
    pub use crate::bounds::{
        crash_probability_lower_bound_resilience, load_lower_bound, load_lower_bound_universal,
    };
    pub use crate::composition::{compose_explicit, ComposedSystem};
    pub use crate::domination::{is_coterie, minimize_system, reduce_to_minimal};
    pub use crate::error::QuorumError;
    pub use crate::eval::{Evaluator, FpEstimate, FpMethod};
    pub use crate::load::{
        fair_load, optimal_load, optimal_load_oracle, optimal_load_oracle_for_quorums,
        optimal_load_oracle_with, strategy_load, CertifiedLoad,
    };
    pub use crate::masking::{is_b_masking, mask_votes, masking_feasible, masking_level};
    pub use crate::measures::{
        degrees, fairness, is_fair, is_quorum_system, min_intersection_size, min_quorum_size,
    };
    pub use crate::oracle::MinWeightQuorumOracle;
    pub use crate::quorum::{ExplicitQuorumSystem, QuorumSystem};
    pub use crate::strategic::StrategicQuorumSystem;
    pub use crate::strategy::AccessStrategy;
    pub use crate::transversal::{
        greedy_transversal, is_transversal, min_transversal, min_transversal_size, resilience,
    };
}
