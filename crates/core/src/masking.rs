//! b-masking quorum systems (Definition 3.5, Lemma 3.6, Corollary 3.7).
//!
//! A quorum system masks `b` Byzantine servers when (1) it is resilient to at least
//! `b` failures — no `b` servers hit every quorum — and (2) every two quorums
//! intersect in at least `2b + 1` servers, so that in any read the values reported by
//! correct servers that also voted in the latest write outnumber the `b` possibly
//! fabricated values. [`masking_level`] computes the largest `b` a given explicit
//! system provides (Corollary 3.7); [`is_b_masking`] checks a requested level.

use crate::bitset::ServerSet;
use crate::measures::min_intersection_size;
use crate::transversal::min_transversal_size;

/// The largest `b` for which the system is b-masking (Corollary 3.7):
/// `b = min{ MT(Q) − 1, (IS(Q) − 1) / 2 }`, where a negative value is clamped to
/// `None` (the system is not even 0-masking, i.e. not a usable quorum system for
/// Byzantine masking).
///
/// Note that a 0-masking system is simply an ordinary (regular) quorum system with
/// non-empty intersections and `MT ≥ 1`.
#[must_use]
pub fn masking_level(quorums: &[ServerSet], universe_size: usize) -> Option<usize> {
    let is = min_intersection_size(quorums);
    if is == 0 {
        return None;
    }
    let mt = min_transversal_size(quorums, universe_size);
    if mt == 0 {
        return None;
    }
    Some(((is - 1) / 2).min(mt - 1))
}

/// Checks whether the system is `b`-masking, per Lemma 3.6:
/// `MT(Q) ≥ b + 1` and `IS(Q) ≥ 2b + 1`.
#[must_use]
pub fn is_b_masking(quorums: &[ServerSet], universe_size: usize, b: usize) -> bool {
    let is = min_intersection_size(quorums);
    if is < 2 * b + 1 {
        return false;
    }
    let mt = min_transversal_size(quorums, universe_size);
    mt > b
}

/// The consistency half of the masking property alone: every pairwise intersection
/// has size at least `2b + 1` (requirement (1) of Definition 3.5). Useful when the
/// resilience is known analytically and only the intersections need checking.
#[must_use]
pub fn has_masking_intersections(quorums: &[ServerSet], b: usize) -> bool {
    min_intersection_size(quorums) > 2 * b
}

/// The necessary condition `4b < n` for a b-masking system to exist over `n` servers
/// ([MR98a], quoted in Section 3 of the paper).
#[must_use]
pub fn masking_feasible(universe_size: usize, b: usize) -> bool {
    4 * b < universe_size
}

/// Simulates the masking read rule on one read: given the multiset of (server, value)
/// votes returned by a read quorum, returns the values that are *safe* — reported by
/// at least `b + 1` servers — so a correct value written to a full write quorum
/// always survives and any value fabricated by at most `b` Byzantine servers never
/// does. This is the core of the [MR98a] replicated-variable protocol that b-masking
/// intersections make sound; the full protocol lives in the `bqs-sim` crate.
#[must_use]
pub fn mask_votes<V: Eq + Clone>(votes: &[(usize, V)], b: usize) -> Vec<V> {
    let mut distinct: Vec<(V, usize)> = Vec::new();
    for (_, v) in votes {
        match distinct.iter_mut().find(|(x, _)| x == v) {
            Some((_, count)) => *count += 1,
            None => distinct.push((v.clone(), 1)),
        }
    }
    distinct
        .into_iter()
        .filter(|(_, count)| *count > b)
        .map(|(v, _)| v)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use bqs_combinatorics::subsets::KSubsets;

    fn k_of_n(n: usize, k: usize) -> Vec<ServerSet> {
        KSubsets::new(n, k)
            .map(|s| ServerSet::from_indices(n, s))
            .collect()
    }

    #[test]
    fn threshold_masking_level() {
        // The (3b+1)-of-(4b+1) threshold system is exactly b-masking.
        for b in 1..=3usize {
            let n = 4 * b + 1;
            let q = k_of_n(n, 3 * b + 1);
            assert_eq!(masking_level(&q, n), Some(b), "b={b}");
            assert!(is_b_masking(&q, n, b));
            assert!(!is_b_masking(&q, n, b + 1));
        }
    }

    #[test]
    fn majority_is_zero_masking() {
        // Simple majority has IS = 1: regular quorum system, masks no Byzantine fault.
        let q = k_of_n(5, 3);
        assert_eq!(masking_level(&q, 5), Some(0));
        assert!(is_b_masking(&q, 5, 0));
        assert!(!is_b_masking(&q, 5, 1));
    }

    #[test]
    fn disjoint_sets_are_not_masking() {
        let q = vec![
            ServerSet::from_indices(4, [0, 1]),
            ServerSet::from_indices(4, [2, 3]),
        ];
        assert_eq!(masking_level(&q, 4), None);
        assert!(!is_b_masking(&q, 4, 0));
    }

    #[test]
    fn masking_limited_by_resilience() {
        // A single quorum equal to the whole universe: IS = n but MT = 1, so b = 0.
        let q = vec![ServerSet::full(9)];
        assert_eq!(masking_level(&q, 9), Some(0));
        assert!(!is_b_masking(&q, 9, 1));
        assert!(has_masking_intersections(&q, 4));
    }

    #[test]
    fn feasibility_bound() {
        assert!(masking_feasible(5, 1));
        assert!(!masking_feasible(4, 1));
        assert!(masking_feasible(1024, 255));
        assert!(!masking_feasible(1024, 256));
    }

    #[test]
    fn mask_votes_keeps_correct_value() {
        // b = 1: value "A" reported by 3 servers survives, the lone fabricated "X"
        // does not.
        let votes = vec![(0, "A"), (1, "A"), (2, "A"), (3, "X")];
        let safe = mask_votes(&votes, 1);
        assert_eq!(safe, vec!["A"]);
    }

    #[test]
    fn mask_votes_discards_under_supported_values() {
        let votes = vec![(0, 10u64), (1, 10), (2, 99), (3, 98)];
        // b = 2: even the correct value has only 2 votes (<= b), nothing is safe —
        // which is exactly why masking systems need 2b+1 intersections.
        assert!(mask_votes(&votes, 2).is_empty());
        // b = 1: the pair of 10s is safe.
        assert_eq!(mask_votes(&votes, 1), vec![10]);
    }

    #[test]
    fn mask_votes_multiple_safe_values_possible_without_quorum_discipline() {
        // If two values each get b+1 votes (can only happen when the caller ignored
        // timestamps), both are reported; the protocol layer must disambiguate.
        let votes = vec![(0, 1u8), (1, 1), (2, 2), (3, 2)];
        let mut safe = mask_votes(&votes, 1);
        safe.sort_unstable();
        assert_eq!(safe, vec![1, 2]);
    }
}
