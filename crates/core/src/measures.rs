//! Combinatorial measures of explicit quorum systems (Section 3 of the paper).
//!
//! * `c(Q)` — cardinality of the smallest quorum,
//! * `IS(Q)` — size of the smallest intersection between two quorums,
//! * `deg(i)` — the number of quorums containing server `i`,
//! * `(s, d)`-fairness — all quorums have size `s` and all servers degree `d`
//!   (Definition 3.2), the precondition of Proposition 3.9.

use crate::bitset::ServerSet;

/// The cardinality `c(Q)` of the smallest quorum.
///
/// # Panics
///
/// Panics if `quorums` is empty.
#[must_use]
pub fn min_quorum_size(quorums: &[ServerSet]) -> usize {
    quorums
        .iter()
        .map(ServerSet::len)
        .min()
        .expect("quorum system must be non-empty")
}

/// The size `IS(Q)` of the smallest intersection between any two quorums.
///
/// Following the convention of the paper, the minimum ranges over all ordered pairs
/// including a quorum with itself, so a single-quorum system has `IS(Q)` equal to the
/// quorum size; for systems of at least two quorums this coincides with the minimum
/// over distinct pairs whenever some pair achieves it.
///
/// # Panics
///
/// Panics if `quorums` is empty.
#[must_use]
pub fn min_intersection_size(quorums: &[ServerSet]) -> usize {
    assert!(!quorums.is_empty(), "quorum system must be non-empty");
    if quorums.len() == 1 {
        return quorums[0].len();
    }
    let mut best = usize::MAX;
    for i in 0..quorums.len() {
        for j in (i + 1)..quorums.len() {
            best = best.min(quorums[i].intersection_size(&quorums[j]));
        }
    }
    best
}

/// The degree `deg(i)` of every server: how many quorums contain it.
#[must_use]
pub fn degrees(quorums: &[ServerSet], universe_size: usize) -> Vec<usize> {
    let mut deg = vec![0usize; universe_size];
    for q in quorums {
        for u in q.iter() {
            deg[u] += 1;
        }
    }
    deg
}

/// Whether the system is `(s, d)`-fair for some `s` and `d` (Definition 3.2):
/// every quorum has the same size and every server the same degree.
#[must_use]
pub fn is_fair(quorums: &[ServerSet], universe_size: usize) -> bool {
    fairness(quorums, universe_size).is_some()
}

/// If the system is `(s, d)`-fair, returns `Some((s, d))`.
#[must_use]
pub fn fairness(quorums: &[ServerSet], universe_size: usize) -> Option<(usize, usize)> {
    let s = quorums.first()?.len();
    if quorums.iter().any(|q| q.len() != s) {
        return None;
    }
    let deg = degrees(quorums, universe_size);
    let d = *deg.first()?;
    if deg.iter().any(|&x| x != d) {
        return None;
    }
    Some((s, d))
}

/// Verifies the quorum-system property: every pair of quorums intersects
/// (Definition 3.1). `ExplicitQuorumSystem::new` enforces this at construction; the
/// free function is useful for candidate quorum lists before committing to a system.
#[must_use]
pub fn is_quorum_system(quorums: &[ServerSet]) -> bool {
    if quorums.is_empty() {
        return false;
    }
    for i in 0..quorums.len() {
        if quorums[i].is_empty() {
            return false;
        }
        for j in (i + 1)..quorums.len() {
            if quorums[i].is_disjoint_from(&quorums[j]) {
                return false;
            }
        }
    }
    true
}

/// Whether one quorum is a (non-strict) superset of another, i.e. whether the system
/// fails to be an antichain (a *coterie* in the terminology of the quorum literature).
/// Minimality is not required by the paper's definitions but dominated quorums never
/// help load or availability, so constructions avoid them; this predicate lets tests
/// assert that.
#[must_use]
pub fn has_dominated_quorum(quorums: &[ServerSet]) -> bool {
    for i in 0..quorums.len() {
        for j in 0..quorums.len() {
            if i != j && quorums[i].is_subset_of(&quorums[j]) {
                return true;
            }
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sets(universe: usize, lists: &[&[usize]]) -> Vec<ServerSet> {
        lists
            .iter()
            .map(|l| ServerSet::from_indices(universe, l.iter().copied()))
            .collect()
    }

    #[test]
    fn majority_measures() {
        let q = sets(3, &[&[0, 1], &[0, 2], &[1, 2]]);
        assert_eq!(min_quorum_size(&q), 2);
        assert_eq!(min_intersection_size(&q), 1);
        assert_eq!(degrees(&q, 3), vec![2, 2, 2]);
        assert_eq!(fairness(&q, 3), Some((2, 2)));
        assert!(is_fair(&q, 3));
        assert!(is_quorum_system(&q));
        assert!(!has_dominated_quorum(&q));
    }

    #[test]
    fn unfair_system_detected() {
        let q = sets(4, &[&[0, 1, 2], &[0, 3], &[0, 1, 3]]);
        assert_eq!(min_quorum_size(&q), 2);
        assert!(!is_fair(&q, 4));
        assert_eq!(fairness(&q, 4), None);
    }

    #[test]
    fn intersection_size_of_disjoint_detected_as_zero() {
        let q = sets(4, &[&[0, 1], &[2, 3]]);
        assert_eq!(min_intersection_size(&q), 0);
        assert!(!is_quorum_system(&q));
    }

    #[test]
    fn single_quorum_conventions() {
        let q = sets(4, &[&[0, 1, 2]]);
        assert_eq!(min_quorum_size(&q), 3);
        assert_eq!(min_intersection_size(&q), 3);
        assert!(is_quorum_system(&q));
    }

    #[test]
    fn masking_style_intersections() {
        // 3-of-4 threshold: intersections have size exactly 2.
        let q = sets(4, &[&[0, 1, 2], &[0, 1, 3], &[0, 2, 3], &[1, 2, 3]]);
        assert_eq!(min_intersection_size(&q), 2);
        assert_eq!(fairness(&q, 4), Some((3, 3)));
    }

    #[test]
    fn dominated_quorum_detected() {
        let q = sets(4, &[&[0, 1], &[0, 1, 2]]);
        assert!(has_dominated_quorum(&q));
    }

    #[test]
    fn empty_collection_is_not_a_system() {
        assert!(!is_quorum_system(&[]));
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn min_quorum_size_panics_on_empty() {
        let _ = min_quorum_size(&[]);
    }
}
