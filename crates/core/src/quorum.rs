//! The quorum-system abstraction and explicit quorum systems.
//!
//! A quorum system (Definition 3.1) is a collection of pairwise-intersecting subsets
//! of a universe of servers. Two representations coexist in this library:
//!
//! * [`ExplicitQuorumSystem`] materialises every quorum; all exact measures (load via
//!   LP, minimal transversal, exact crash probability) operate on it.
//! * The [`QuorumSystem`] trait is the *operational* interface — what a replicated
//!   data protocol or an availability simulation needs: sample a quorum under the
//!   system's access strategy, and find a live quorum given the set of responsive
//!   servers. Large structured constructions (M-Path, boostFPP, deep RT) implement it
//!   directly without enumerating their (exponentially many) quorums.

use rand::RngCore;

use crate::bitset::ServerSet;
use crate::error::QuorumError;
use crate::strategy::AccessStrategy;

/// Operational interface to a quorum system over the universe `{0, ..., n-1}`.
///
/// Implementations must guarantee the quorum-system property: any two sets that
/// [`QuorumSystem::sample_quorum`] can return, or that
/// [`QuorumSystem::find_live_quorum`] can return, intersect.
pub trait QuorumSystem {
    /// The number of servers `n = |U|`.
    fn universe_size(&self) -> usize;

    /// A short human-readable name (e.g. `"M-Grid(n=49, b=3)"`).
    fn name(&self) -> String;

    /// Samples a quorum according to the system's built-in access strategy (the
    /// load-optimal strategy where one is known).
    fn sample_quorum(&self, rng: &mut dyn RngCore) -> ServerSet;

    /// Returns a quorum consisting entirely of servers in `alive`, or `None` if every
    /// quorum contains a non-responsive server (the system is unavailable under this
    /// failure configuration).
    fn find_live_quorum(&self, alive: &ServerSet) -> Option<ServerSet>;

    /// True if some quorum survives within `alive`.
    fn is_available(&self, alive: &ServerSet) -> bool {
        self.find_live_quorum(alive).is_some()
    }

    /// The cardinality `c(Q)` of the smallest quorum.
    fn min_quorum_size(&self) -> usize;
}

/// A quorum system given by an explicit list of quorums.
#[derive(Debug, Clone, PartialEq)]
pub struct ExplicitQuorumSystem {
    universe_size: usize,
    quorums: Vec<ServerSet>,
    strategy: AccessStrategy,
    name: String,
}

impl ExplicitQuorumSystem {
    /// Builds an explicit quorum system over `universe_size` servers, validating the
    /// quorum-system property (non-empty, within the universe, pairwise intersecting).
    /// The access strategy defaults to uniform.
    ///
    /// # Errors
    ///
    /// Returns a [`QuorumError`] describing the first violated property.
    pub fn new(universe_size: usize, quorums: Vec<ServerSet>) -> Result<Self, QuorumError> {
        if quorums.is_empty() {
            return Err(QuorumError::EmptySystem);
        }
        for (i, q) in quorums.iter().enumerate() {
            if q.is_empty() {
                return Err(QuorumError::EmptyQuorum { index: i });
            }
            if q.capacity() != universe_size || q.iter().any(|u| u >= universe_size) {
                return Err(QuorumError::UniverseMismatch {
                    index: i,
                    universe_size,
                });
            }
        }
        for i in 0..quorums.len() {
            for j in (i + 1)..quorums.len() {
                if quorums[i].is_disjoint_from(&quorums[j]) {
                    return Err(QuorumError::NonIntersecting {
                        first: i,
                        second: j,
                    });
                }
            }
        }
        let strategy = AccessStrategy::uniform(quorums.len());
        Ok(ExplicitQuorumSystem {
            universe_size,
            quorums,
            strategy,
            name: "explicit".to_string(),
        })
    }

    /// Builds the system from quorums given as index lists (convenience).
    ///
    /// # Errors
    ///
    /// Same as [`ExplicitQuorumSystem::new`].
    pub fn from_indices<I, J>(universe_size: usize, quorums: I) -> Result<Self, QuorumError>
    where
        I: IntoIterator<Item = J>,
        J: IntoIterator<Item = usize>,
    {
        let sets: Vec<ServerSet> = quorums
            .into_iter()
            .map(|q| ServerSet::from_indices(universe_size, q))
            .collect();
        ExplicitQuorumSystem::new(universe_size, sets)
    }

    /// Renames the system (used by constructions that lower themselves to explicit
    /// form while keeping a descriptive name).
    #[must_use]
    pub fn with_name(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }

    /// Installs an access strategy (replacing the default uniform one).
    ///
    /// # Errors
    ///
    /// Returns [`QuorumError::InvalidStrategy`] if the strategy length does not match
    /// the number of quorums.
    pub fn set_strategy(&mut self, strategy: AccessStrategy) -> Result<(), QuorumError> {
        if strategy.len() != self.quorums.len() {
            return Err(QuorumError::InvalidStrategy(format!(
                "strategy covers {} quorums but the system has {}",
                strategy.len(),
                self.quorums.len()
            )));
        }
        self.strategy = strategy;
        Ok(())
    }

    /// The quorums of the system.
    #[must_use]
    pub fn quorums(&self) -> &[ServerSet] {
        &self.quorums
    }

    /// Number of quorums.
    #[must_use]
    pub fn num_quorums(&self) -> usize {
        self.quorums.len()
    }

    /// The currently-installed access strategy.
    #[must_use]
    pub fn strategy(&self) -> &AccessStrategy {
        &self.strategy
    }
}

impl QuorumSystem for ExplicitQuorumSystem {
    fn universe_size(&self) -> usize {
        self.universe_size
    }

    fn name(&self) -> String {
        self.name.clone()
    }

    fn sample_quorum(&self, rng: &mut dyn RngCore) -> ServerSet {
        let idx = self.strategy.sample_index(rng);
        self.quorums[idx].clone()
    }

    fn find_live_quorum(&self, alive: &ServerSet) -> Option<ServerSet> {
        self.quorums
            .iter()
            .find(|q| q.is_subset_of(alive))
            .cloned()
    }

    fn min_quorum_size(&self) -> usize {
        self.quorums.iter().map(ServerSet::len).min().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn majority(n: usize) -> ExplicitQuorumSystem {
        // All subsets of size floor(n/2)+1.
        let k = n / 2 + 1;
        let quorums = bqs_combinatorics::subsets::KSubsets::new(n, k)
            .map(|s| ServerSet::from_indices(n, s))
            .collect();
        ExplicitQuorumSystem::new(n, quorums).unwrap()
    }

    #[test]
    fn valid_system_constructs() {
        let q = majority(5);
        assert_eq!(q.universe_size(), 5);
        assert_eq!(q.num_quorums(), 10); // C(5,3)
        assert_eq!(q.min_quorum_size(), 3);
    }

    #[test]
    fn empty_system_rejected() {
        assert_eq!(
            ExplicitQuorumSystem::new(3, vec![]).unwrap_err(),
            QuorumError::EmptySystem
        );
    }

    #[test]
    fn empty_quorum_rejected() {
        let err = ExplicitQuorumSystem::new(3, vec![ServerSet::new(3)]).unwrap_err();
        assert_eq!(err, QuorumError::EmptyQuorum { index: 0 });
    }

    #[test]
    fn non_intersecting_rejected() {
        let err = ExplicitQuorumSystem::from_indices(4, [vec![0, 1], vec![2, 3]]).unwrap_err();
        assert_eq!(err, QuorumError::NonIntersecting { first: 0, second: 1 });
    }

    #[test]
    fn universe_mismatch_rejected() {
        let bad = vec![ServerSet::from_indices(5, [0, 4])];
        let err = ExplicitQuorumSystem::new(4, bad).unwrap_err();
        assert!(matches!(err, QuorumError::UniverseMismatch { .. }));
    }

    #[test]
    fn find_live_quorum_respects_failures() {
        let q = majority(5);
        let all = ServerSet::full(5);
        assert!(q.is_available(&all));
        // Two crashes leave a majority of 3 alive.
        let alive = ServerSet::from_indices(5, [0, 2, 4]);
        let live = q.find_live_quorum(&alive).unwrap();
        assert!(live.is_subset_of(&alive));
        // Three crashes kill every majority quorum.
        let alive2 = ServerSet::from_indices(5, [1, 3]);
        assert!(q.find_live_quorum(&alive2).is_none());
        assert!(!q.is_available(&alive2));
    }

    #[test]
    fn sampling_returns_actual_quorums() {
        let q = majority(5);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..50 {
            let s = q.sample_quorum(&mut rng);
            assert!(q.quorums().contains(&s));
        }
    }

    #[test]
    fn strategy_replacement_validated() {
        let mut q = majority(3);
        assert!(q.set_strategy(AccessStrategy::uniform(2)).is_err());
        assert!(q.set_strategy(AccessStrategy::uniform(3)).is_ok());
        let named = q.clone().with_name("majority-3");
        assert_eq!(named.name(), "majority-3");
    }

    #[test]
    fn from_indices_convenience() {
        let q = ExplicitQuorumSystem::from_indices(3, [vec![0, 1], vec![1, 2], vec![0, 2]]).unwrap();
        assert_eq!(q.num_quorums(), 3);
        assert_eq!(q.min_quorum_size(), 2);
    }
}
