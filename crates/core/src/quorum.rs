//! The quorum-system abstraction and explicit quorum systems.
//!
//! A quorum system (Definition 3.1) is a collection of pairwise-intersecting subsets
//! of a universe of servers. Two representations coexist in this library:
//!
//! * [`ExplicitQuorumSystem`] materialises every quorum; all exact measures (load via
//!   LP, minimal transversal, exact crash probability) operate on it.
//! * The [`QuorumSystem`] trait is the *operational* interface — what a replicated
//!   data protocol or an availability simulation needs: sample a quorum under the
//!   system's access strategy, and find a live quorum given the set of responsive
//!   servers. Large structured constructions (M-Path, boostFPP, deep RT) implement it
//!   directly without enumerating their (exponentially many) quorums.

use rand::RngCore;

use crate::bitset::ServerSet;
use crate::error::QuorumError;
use crate::strategy::AccessStrategy;

/// Lane width of the batched availability check
/// ([`QuorumSystem::is_available_u64x4`]): four `u64` masks per call, the
/// `u64x4` shape the autovectorizer lifts onto 256-bit registers.
pub const AVAILABILITY_LANES: usize = 4;

/// Reusable per-lane scratch sets for batched word-level availability: one
/// [`ServerSet`] per lane so the *default* batched implementation (four
/// scalar calls) stays allocation-free, exactly like the scalar hot path.
#[derive(Debug, Clone)]
pub struct LaneScratch {
    lanes: [ServerSet; AVAILABILITY_LANES],
}

impl LaneScratch {
    /// Scratch for a universe of `capacity` servers.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        LaneScratch {
            lanes: std::array::from_fn(|_| ServerSet::new(capacity)),
        }
    }

    /// Mutable access to one lane's scratch set.
    ///
    /// # Panics
    ///
    /// Panics if `lane >= AVAILABILITY_LANES`.
    #[must_use]
    pub fn lane_mut(&mut self, lane: usize) -> &mut ServerSet {
        &mut self.lanes[lane]
    }
}

/// Operational interface to a quorum system over the universe `{0, ..., n-1}`.
///
/// Implementations must guarantee the quorum-system property: any two sets that
/// [`QuorumSystem::sample_quorum`] can return, or that
/// [`QuorumSystem::find_live_quorum`] can return, intersect.
///
/// The `Send + Sync` supertraits let the evaluation engine
/// ([`crate::eval::Evaluator`]) fan availability queries out across threads;
/// every implementation in the workspace is a plain data structure, so this
/// costs nothing.
pub trait QuorumSystem: Send + Sync {
    /// The number of servers `n = |U|`.
    fn universe_size(&self) -> usize;

    /// A short human-readable name (e.g. `"M-Grid(n=49, b=3)"`).
    fn name(&self) -> String;

    /// Samples a quorum according to the system's built-in access strategy (the
    /// load-optimal strategy where one is known).
    fn sample_quorum(&self, rng: &mut dyn RngCore) -> ServerSet;

    /// Returns a quorum consisting entirely of servers in `alive`, or `None` if every
    /// quorum contains a non-responsive server (the system is unavailable under this
    /// failure configuration).
    fn find_live_quorum(&self, alive: &ServerSet) -> Option<ServerSet>;

    /// True if some quorum survives within `alive`.
    ///
    /// Implementations should answer against the *borrowed* `alive` set without
    /// allocating: this is the innermost call of exact `F_p` enumeration and of
    /// every Monte-Carlo trial.
    fn is_available(&self, alive: &ServerSet) -> bool {
        self.find_live_quorum(alive).is_some()
    }

    /// Word-level availability for universes of at most 64 servers: `alive` is
    /// a raw bitmask over the universe. `scratch` is a caller-provided reusable
    /// set with the system's capacity, so the default implementation performs
    /// zero heap allocation per call.
    ///
    /// Structure-aware implementations (explicit mask lists, grids) override
    /// this to skip the `ServerSet` round-trip entirely.
    ///
    /// # Panics
    ///
    /// May panic if `scratch.capacity() != self.universe_size()` or the
    /// universe exceeds 64 servers.
    fn is_available_u64(&self, alive: u64, scratch: &mut ServerSet) -> bool {
        scratch.assign_mask_u64(alive);
        self.is_available(scratch)
    }

    /// Batched word-level availability: answers [`AVAILABILITY_LANES`] masks
    /// per call. This is the innermost call of exact `F_p` enumeration — the
    /// engine walks the `2^n` configurations four at a time so that
    /// structure-aware implementations can evaluate all four lanes inside one
    /// pass over their structure (a shape the autovectorizer lifts to SIMD).
    ///
    /// The default forwards to [`QuorumSystem::is_available_u64`] lane by
    /// lane, so overriding is purely a performance decision; implementations
    /// must return exactly what four scalar calls would.
    ///
    /// # Panics
    ///
    /// May panic under the same conditions as
    /// [`QuorumSystem::is_available_u64`].
    fn is_available_u64x4(
        &self,
        alive: [u64; AVAILABILITY_LANES],
        scratch: &mut LaneScratch,
    ) -> [bool; AVAILABILITY_LANES] {
        let mut out = [false; AVAILABILITY_LANES];
        for (lane, (&mask, slot)) in alive.iter().zip(&mut out).enumerate() {
            *slot = self.is_available_u64(mask, scratch.lane_mut(lane));
        }
        out
    }

    /// Structure-specialised bulk enumeration: sums `weights[popcount(m)]`
    /// over every mask `m` in `start..end` for which the system is
    /// *unavailable*, or `None` when the system has no specialised kernel.
    ///
    /// This is the whole inner loop of exact `F_p` enumeration handed to the
    /// construction at once. The per-batch lane API
    /// ([`QuorumSystem::is_available_u64x4`]) cannot amortise anything across
    /// batches — each call re-derives its structure walk — whereas a range
    /// kernel hoists table builds, pointer loads and loop-invariant masks out
    /// of the `2^n` loop entirely. On the `n = 25` Grid this is the
    /// difference between ≈0.18 s and ≈0.07 s per sweep.
    ///
    /// `weights[k]` is the probability of one specific configuration with
    /// exactly `k` alive servers (`(1-p)^k p^(n-k)`), exactly as the engine
    /// precomputes it. Implementations **must** accumulate into a single
    /// `f64` chain in ascending mask order so the result is bit-identical to
    /// the engine's generic lane loop — the engine's parity tests compare
    /// with `f64::to_bits`.
    fn unavailable_mass_u64_range(&self, weights: &[f64], start: u64, end: u64) -> Option<f64> {
        let _ = (weights, start, end);
        None
    }

    /// Exact crash probability in closed form, when the construction's
    /// structure admits one (`None` otherwise). Implementations must agree
    /// with exhaustive enumeration to within floating-point error; the
    /// evaluation engine uses this to skip enumeration entirely.
    fn crash_probability_closed_form(&self, _p: f64) -> Option<f64> {
        None
    }

    /// Batched form of [`QuorumSystem::crash_probability_closed_form`] over
    /// a grid of crash probabilities: `Some` with one value per point iff
    /// every point has a closed-form answer.
    ///
    /// The default evaluates point by point, which is right for algebraic
    /// closed forms (microseconds each). Constructions whose "closed form"
    /// is an expensive structure-aware computation with `p`-independent
    /// scaffolding override this to amortise it — the M-Path transfer-matrix
    /// DP enumerates its interface state space once for the whole grid.
    /// Implementations must return values bit-identical to the per-point
    /// method ([`crate::eval::Evaluator::sweep`] relies on it).
    fn crash_probability_closed_form_batch(&self, ps: &[f64]) -> Option<Vec<f64>> {
        ps.iter()
            .map(|&p| self.crash_probability_closed_form(p.clamp(0.0, 1.0)))
            .collect()
    }

    /// How [`QuorumSystem::crash_probability_closed_form`] answers are
    /// obtained, for the engine's method tagging: an algebraic closed form by
    /// default; constructions whose "closed form" is really a structure-aware
    /// exact dynamic program (M-Path's boundary-interface sweep) override this
    /// to [`crate::eval::FpMethod::Dp`].
    fn closed_form_method(&self) -> crate::eval::FpMethod {
        crate::eval::FpMethod::ClosedForm
    }

    /// A certified `(lower, upper)` enclosure of `F_p(Q)` when the
    /// construction can compute one more cheaply than exactly — e.g. the
    /// ε-pruned M-Path transfer-matrix sweep past its exact side wall. The
    /// engine consults this only after the closed form declines and exact
    /// enumeration is out of reach, tagging answers
    /// [`crate::eval::FpMethod::DpPruned`]. The bound must be *rigorous*
    /// (the true value inside `[lower, upper]`), not statistical.
    fn crash_probability_interval(&self, _p: f64) -> Option<(f64, f64)> {
        None
    }

    /// Batched form of [`QuorumSystem::crash_probability_interval`] over a
    /// grid of crash probabilities, with the same amortisation contract as
    /// [`QuorumSystem::crash_probability_closed_form_batch`]: `Some` iff
    /// every point has an enclosure, each lane bit-identical to its
    /// per-point answer.
    fn crash_probability_interval_batch(&self, ps: &[f64]) -> Option<Vec<(f64, f64)>> {
        ps.iter()
            .map(|&p| self.crash_probability_interval(p.clamp(0.0, 1.0)))
            .collect()
    }

    /// The cardinality `c(Q)` of the smallest quorum.
    fn min_quorum_size(&self) -> usize;
}

/// A quorum system given by an explicit list of quorums.
#[derive(Debug, Clone, PartialEq)]
pub struct ExplicitQuorumSystem {
    universe_size: usize,
    quorums: Vec<ServerSet>,
    /// Quorums as raw `u64` masks, precompiled when the universe fits in one
    /// word — the fast path of the evaluation engine. Empty for `n > 64`.
    masks64: Vec<u64>,
    strategy: AccessStrategy,
    name: String,
}

impl ExplicitQuorumSystem {
    /// Builds an explicit quorum system over `universe_size` servers, validating the
    /// quorum-system property (non-empty, within the universe, pairwise intersecting).
    /// The access strategy defaults to uniform.
    ///
    /// # Errors
    ///
    /// Returns a [`QuorumError`] describing the first violated property.
    pub fn new(universe_size: usize, quorums: Vec<ServerSet>) -> Result<Self, QuorumError> {
        if quorums.is_empty() {
            return Err(QuorumError::EmptySystem);
        }
        for (i, q) in quorums.iter().enumerate() {
            if q.is_empty() {
                return Err(QuorumError::EmptyQuorum { index: i });
            }
            if q.capacity() != universe_size || q.iter().any(|u| u >= universe_size) {
                return Err(QuorumError::UniverseMismatch {
                    index: i,
                    universe_size,
                });
            }
        }
        for i in 0..quorums.len() {
            for j in (i + 1)..quorums.len() {
                if quorums[i].is_disjoint_from(&quorums[j]) {
                    return Err(QuorumError::NonIntersecting {
                        first: i,
                        second: j,
                    });
                }
            }
        }
        let strategy = AccessStrategy::uniform(quorums.len())?;
        let masks64 = if universe_size <= 64 {
            quorums.iter().map(ServerSet::as_mask_u64).collect()
        } else {
            Vec::new()
        };
        Ok(ExplicitQuorumSystem {
            universe_size,
            quorums,
            masks64,
            strategy,
            name: "explicit".to_string(),
        })
    }

    /// Builds the system from quorums given as index lists (convenience).
    ///
    /// # Errors
    ///
    /// Same as [`ExplicitQuorumSystem::new`]; in particular an out-of-universe
    /// index yields [`QuorumError::UniverseMismatch`] for the offending quorum
    /// rather than a panic.
    pub fn from_indices<I, J>(universe_size: usize, quorums: I) -> Result<Self, QuorumError>
    where
        I: IntoIterator<Item = J>,
        J: IntoIterator<Item = usize>,
    {
        let sets: Vec<ServerSet> = quorums
            .into_iter()
            .enumerate()
            .map(|(index, q)| {
                ServerSet::try_from_indices(universe_size, q).map_err(|_| {
                    QuorumError::UniverseMismatch {
                        index,
                        universe_size,
                    }
                })
            })
            .collect::<Result<_, _>>()?;
        ExplicitQuorumSystem::new(universe_size, sets)
    }

    /// Renames the system (used by constructions that lower themselves to explicit
    /// form while keeping a descriptive name).
    #[must_use]
    pub fn with_name(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }

    /// Installs an access strategy (replacing the default uniform one).
    ///
    /// # Errors
    ///
    /// Returns [`QuorumError::InvalidStrategy`] if the strategy length does not match
    /// the number of quorums.
    pub fn set_strategy(&mut self, strategy: AccessStrategy) -> Result<(), QuorumError> {
        if strategy.len() != self.quorums.len() {
            return Err(QuorumError::InvalidStrategy(format!(
                "strategy covers {} quorums but the system has {}",
                strategy.len(),
                self.quorums.len()
            )));
        }
        self.strategy = strategy;
        Ok(())
    }

    /// The quorums of the system.
    #[must_use]
    pub fn quorums(&self) -> &[ServerSet] {
        &self.quorums
    }

    /// Number of quorums.
    #[must_use]
    pub fn num_quorums(&self) -> usize {
        self.quorums.len()
    }

    /// The currently-installed access strategy.
    #[must_use]
    pub fn strategy(&self) -> &AccessStrategy {
        &self.strategy
    }
}

impl QuorumSystem for ExplicitQuorumSystem {
    fn universe_size(&self) -> usize {
        self.universe_size
    }

    fn name(&self) -> String {
        self.name.clone()
    }

    fn sample_quorum(&self, rng: &mut dyn RngCore) -> ServerSet {
        let idx = self.strategy.sample_index(rng);
        self.quorums[idx].clone()
    }

    fn find_live_quorum(&self, alive: &ServerSet) -> Option<ServerSet> {
        self.quorums.iter().find(|q| q.is_subset_of(alive)).cloned()
    }

    fn is_available(&self, alive: &ServerSet) -> bool {
        // Unlike the default (via `find_live_quorum`), never clones the
        // surviving quorum: this runs once per crash configuration in exact
        // enumeration.
        self.quorums.iter().any(|q| q.is_subset_of(alive))
    }

    fn is_available_u64(&self, alive: u64, _scratch: &mut ServerSet) -> bool {
        // Hard assert (not debug): with n > 64 `masks64` is empty and the
        // loop below would silently report every configuration unavailable.
        assert!(
            self.universe_size <= 64,
            "is_available_u64 requires a universe of at most 64 servers (got {})",
            self.universe_size
        );
        self.masks64.iter().any(|&q| q & !alive == 0)
    }

    fn is_available_u64x4(
        &self,
        alive: [u64; AVAILABILITY_LANES],
        _scratch: &mut LaneScratch,
    ) -> [bool; AVAILABILITY_LANES] {
        assert!(
            self.universe_size <= 64,
            "is_available_u64x4 requires a universe of at most 64 servers (got {})",
            self.universe_size
        );
        // One pass over the quorum masks answers all four lanes: the subset
        // tests against the four alive words are independent, so the compiler
        // vectorises the inner block, and a single early exit fires once
        // every lane has found a live quorum.
        let miss: [u64; AVAILABILITY_LANES] = std::array::from_fn(|i| !alive[i]);
        let mut found = [false; AVAILABILITY_LANES];
        for &q in &self.masks64 {
            for (f, &m) in found.iter_mut().zip(&miss) {
                *f |= q & m == 0;
            }
            if found == [true; AVAILABILITY_LANES] {
                break;
            }
        }
        found
    }

    fn min_quorum_size(&self) -> usize {
        self.quorums.iter().map(ServerSet::len).min().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn majority(n: usize) -> ExplicitQuorumSystem {
        // All subsets of size floor(n/2)+1.
        let k = n / 2 + 1;
        let quorums = bqs_combinatorics::subsets::KSubsets::new(n, k)
            .map(|s| ServerSet::from_indices(n, s))
            .collect();
        ExplicitQuorumSystem::new(n, quorums).unwrap()
    }

    #[test]
    fn valid_system_constructs() {
        let q = majority(5);
        assert_eq!(q.universe_size(), 5);
        assert_eq!(q.num_quorums(), 10); // C(5,3)
        assert_eq!(q.min_quorum_size(), 3);
    }

    #[test]
    fn empty_system_rejected() {
        assert_eq!(
            ExplicitQuorumSystem::new(3, vec![]).unwrap_err(),
            QuorumError::EmptySystem
        );
    }

    #[test]
    fn empty_quorum_rejected() {
        let err = ExplicitQuorumSystem::new(3, vec![ServerSet::new(3)]).unwrap_err();
        assert_eq!(err, QuorumError::EmptyQuorum { index: 0 });
    }

    #[test]
    fn non_intersecting_rejected() {
        let err = ExplicitQuorumSystem::from_indices(4, [vec![0, 1], vec![2, 3]]).unwrap_err();
        assert_eq!(
            err,
            QuorumError::NonIntersecting {
                first: 0,
                second: 1
            }
        );
    }

    #[test]
    fn universe_mismatch_rejected() {
        let bad = vec![ServerSet::from_indices(5, [0, 4])];
        let err = ExplicitQuorumSystem::new(4, bad).unwrap_err();
        assert!(matches!(err, QuorumError::UniverseMismatch { .. }));
    }

    #[test]
    fn find_live_quorum_respects_failures() {
        let q = majority(5);
        let all = ServerSet::full(5);
        assert!(q.is_available(&all));
        // Two crashes leave a majority of 3 alive.
        let alive = ServerSet::from_indices(5, [0, 2, 4]);
        let live = q.find_live_quorum(&alive).unwrap();
        assert!(live.is_subset_of(&alive));
        // Three crashes kill every majority quorum.
        let alive2 = ServerSet::from_indices(5, [1, 3]);
        assert!(q.find_live_quorum(&alive2).is_none());
        assert!(!q.is_available(&alive2));
    }

    #[test]
    fn sampling_returns_actual_quorums() {
        let q = majority(5);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..50 {
            let s = q.sample_quorum(&mut rng);
            assert!(q.quorums().contains(&s));
        }
    }

    #[test]
    fn strategy_replacement_validated() {
        let mut q = majority(3);
        assert!(q.set_strategy(AccessStrategy::uniform(2).unwrap()).is_err());
        assert!(q.set_strategy(AccessStrategy::uniform(3).unwrap()).is_ok());
        let named = q.clone().with_name("majority-3");
        assert_eq!(named.name(), "majority-3");
    }

    #[test]
    fn from_indices_convenience() {
        let q =
            ExplicitQuorumSystem::from_indices(3, [vec![0, 1], vec![1, 2], vec![0, 2]]).unwrap();
        assert_eq!(q.num_quorums(), 3);
        assert_eq!(q.min_quorum_size(), 2);
    }

    #[test]
    fn from_indices_out_of_universe_is_an_error_not_a_panic() {
        // Server 5 does not exist in a universe of 4: the offending quorum is
        // reported instead of panicking inside ServerSet::insert.
        let err = ExplicitQuorumSystem::from_indices(4, [vec![0, 1], vec![1, 5]]).unwrap_err();
        assert_eq!(
            err,
            QuorumError::UniverseMismatch {
                index: 1,
                universe_size: 4
            }
        );
    }

    #[test]
    fn explicit_word_level_availability_matches_set_availability() {
        let q = majority(6);
        let mut scratch = ServerSet::new(6);
        let mut reference = ServerSet::new(6);
        for mask in 0u64..(1 << 6) {
            reference.assign_mask_u64(mask);
            assert_eq!(
                q.is_available_u64(mask, &mut scratch),
                q.is_available(&reference),
                "mask={mask:#x}"
            );
        }
    }
}
