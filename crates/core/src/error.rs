//! Error types for quorum-system construction and analysis.

use std::fmt;

/// Errors returned by quorum-system constructors and analyses.
#[derive(Debug, Clone, PartialEq)]
pub enum QuorumError {
    /// A quorum system must contain at least one quorum.
    EmptySystem,
    /// Quorums must be non-empty sets of servers.
    EmptyQuorum {
        /// Index of the offending quorum.
        index: usize,
    },
    /// Two quorums do not intersect, violating Definition 3.1.
    NonIntersecting {
        /// Index of the first quorum.
        first: usize,
        /// Index of the second quorum.
        second: usize,
    },
    /// A quorum refers to servers outside the declared universe.
    UniverseMismatch {
        /// Index of the offending quorum.
        index: usize,
        /// Declared universe size.
        universe_size: usize,
    },
    /// An access strategy is invalid (wrong length, negative weight, or weights that
    /// do not sum to one).
    InvalidStrategy(String),
    /// The requested construction parameters are invalid (e.g. `4b >= n`, a grid side
    /// that is not an integer, a projective-plane order that is not a prime power).
    InvalidParameters(String),
    /// The system fails the requested b-masking property.
    NotMasking {
        /// The masking level that was requested.
        requested_b: usize,
        /// The largest masking level the system actually provides.
        actual_b: usize,
    },
    /// An exact computation was requested on a universe too large for enumeration.
    UniverseTooLarge {
        /// The universe size that was requested.
        universe_size: usize,
        /// The maximum supported by the exact algorithm.
        limit: usize,
    },
}

impl fmt::Display for QuorumError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QuorumError::EmptySystem => write!(f, "quorum system contains no quorums"),
            QuorumError::EmptyQuorum { index } => {
                write!(f, "quorum {index} is empty")
            }
            QuorumError::NonIntersecting { first, second } => {
                write!(f, "quorums {first} and {second} do not intersect")
            }
            QuorumError::UniverseMismatch {
                index,
                universe_size,
            } => write!(
                f,
                "quorum {index} references servers outside the universe of size {universe_size}"
            ),
            QuorumError::InvalidStrategy(msg) => write!(f, "invalid access strategy: {msg}"),
            QuorumError::InvalidParameters(msg) => write!(f, "invalid parameters: {msg}"),
            QuorumError::NotMasking {
                requested_b,
                actual_b,
            } => write!(
                f,
                "system is not {requested_b}-masking (it is at most {actual_b}-masking)"
            ),
            QuorumError::UniverseTooLarge {
                universe_size,
                limit,
            } => write!(
                f,
                "universe of size {universe_size} exceeds the exact-computation limit of {limit}"
            ),
        }
    }
}

impl std::error::Error for QuorumError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let cases: Vec<(QuorumError, &str)> = vec![
            (QuorumError::EmptySystem, "no quorums"),
            (QuorumError::EmptyQuorum { index: 3 }, "quorum 3"),
            (
                QuorumError::NonIntersecting {
                    first: 1,
                    second: 2,
                },
                "do not intersect",
            ),
            (
                QuorumError::UniverseMismatch {
                    index: 0,
                    universe_size: 9,
                },
                "universe of size 9",
            ),
            (
                QuorumError::InvalidStrategy("weights sum to 0.5".into()),
                "weights sum to 0.5",
            ),
            (QuorumError::InvalidParameters("4b >= n".into()), "4b >= n"),
            (
                QuorumError::NotMasking {
                    requested_b: 3,
                    actual_b: 1,
                },
                "not 3-masking",
            ),
            (
                QuorumError::UniverseTooLarge {
                    universe_size: 100,
                    limit: 25,
                },
                "exceeds the exact-computation limit",
            ),
        ];
        for (err, needle) in cases {
            let msg = err.to_string();
            assert!(msg.contains(needle), "{msg:?} should contain {needle:?}");
        }
    }

    #[test]
    fn error_trait_object_compatible() {
        fn assert_error<E: std::error::Error + Send + Sync + 'static>() {}
        assert_error::<QuorumError>();
    }
}
