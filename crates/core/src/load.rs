//! The load `L(Q)` of a quorum system (Definition 3.8, Proposition 3.9).
//!
//! The system load is `min_w max_u l_w(u)`: the best achievable frequency of access
//! of the busiest server over all access strategies. For an explicit system this is a
//! linear program; [`optimal_load`] solves it exactly with the workspace simplex
//! solver and also returns an optimal strategy. For fair systems Proposition 3.9
//! gives the closed form `L(Q) = c(Q) / n`, exposed as [`fair_load`] and used as a
//! cross-check (and an ablation) against the LP.

use bqs_lp::{Constraint, LinearProgram, LpOutcome, Relation};

use crate::bitset::ServerSet;
use crate::error::QuorumError;
use crate::measures;
use crate::strategy::AccessStrategy;

/// The exact system load and an optimal access strategy, via linear programming.
///
/// Variables are one weight per quorum plus the bound `z`; constraints say each
/// server's induced load is at most `z` and the weights form a distribution.
///
/// # Errors
///
/// Returns [`QuorumError::EmptySystem`] when no quorums are given, or
/// [`QuorumError::InvalidStrategy`] if the LP solver fails to produce a valid
/// distribution (which indicates a numerical problem and should not happen for
/// well-formed inputs).
pub fn optimal_load(
    quorums: &[ServerSet],
    universe_size: usize,
) -> Result<(f64, AccessStrategy), QuorumError> {
    if quorums.is_empty() {
        return Err(QuorumError::EmptySystem);
    }
    let m = quorums.len();
    // Variables: w_0..w_{m-1}, z  (all >= 0).
    let num_vars = m + 1;
    let mut objective = vec![0.0; num_vars];
    objective[m] = 1.0; // minimize z

    let mut constraints = Vec::with_capacity(universe_size + 1);
    for u in 0..universe_size {
        let mut coeffs = vec![0.0; num_vars];
        let mut touched = false;
        for (qi, q) in quorums.iter().enumerate() {
            if q.contains(u) {
                coeffs[qi] = 1.0;
                touched = true;
            }
        }
        if !touched {
            continue; // server in no quorum never carries load
        }
        coeffs[m] = -1.0;
        constraints.push(Constraint::new(coeffs, Relation::Le, 0.0));
    }
    let mut sum_coeffs = vec![1.0; num_vars];
    sum_coeffs[m] = 0.0;
    constraints.push(Constraint::new(sum_coeffs, Relation::Eq, 1.0));

    let lp = LinearProgram {
        num_vars,
        maximize: false,
        objective,
        constraints,
    };
    match lp.solve() {
        LpOutcome::Optimal(sol) => {
            let load = sol.objective_value;
            let mut weights: Vec<f64> = sol.values[..m].iter().map(|&w| w.max(0.0)).collect();
            // Renormalise against floating point drift before building the strategy.
            let total: f64 = weights.iter().sum();
            if total <= 0.0 {
                return Err(QuorumError::InvalidStrategy(
                    "LP produced an all-zero strategy".into(),
                ));
            }
            for w in &mut weights {
                *w /= total;
            }
            let strategy = AccessStrategy::new(weights)?;
            Ok((load, strategy))
        }
        LpOutcome::Infeasible | LpOutcome::Unbounded => Err(QuorumError::InvalidStrategy(
            "load LP was infeasible or unbounded".into(),
        )),
    }
}

/// The load of a *fair* system by Proposition 3.9: `L(Q) = c(Q) / n`.
///
/// # Errors
///
/// Returns [`QuorumError::InvalidParameters`] if the system is not fair (use
/// [`optimal_load`] instead in that case).
pub fn fair_load(quorums: &[ServerSet], universe_size: usize) -> Result<f64, QuorumError> {
    if measures::fairness(quorums, universe_size).is_none() {
        return Err(QuorumError::InvalidParameters(
            "Proposition 3.9 requires an (s, d)-fair system".into(),
        ));
    }
    Ok(measures::min_quorum_size(quorums) as f64 / universe_size as f64)
}

/// The load induced by a specific strategy (`L_w(Q)`), for comparing candidate
/// strategies against the optimum.
#[must_use]
pub fn strategy_load(
    quorums: &[ServerSet],
    universe_size: usize,
    strategy: &AccessStrategy,
) -> f64 {
    strategy.induced_system_load(quorums, universe_size)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bqs_combinatorics::subsets::KSubsets;

    fn k_of_n(n: usize, k: usize) -> Vec<ServerSet> {
        KSubsets::new(n, k)
            .map(|s| ServerSet::from_indices(n, s))
            .collect()
    }

    #[test]
    fn majority_load_is_majority_fraction() {
        // Majority over n: load = ceil((n+1)/2)/n.
        for n in [3usize, 5, 7] {
            let k = n / 2 + 1;
            let q = k_of_n(n, k);
            let (load, strategy) = optimal_load(&q, n).unwrap();
            let expected = k as f64 / n as f64;
            assert!((load - expected).abs() < 1e-6, "n={n} load={load}");
            // The returned strategy must achieve (close to) the optimal load.
            let achieved = strategy_load(&q, n, &strategy);
            assert!(achieved <= load + 1e-6);
            // And it must agree with the fair-system closed form.
            assert!((fair_load(&q, n).unwrap() - expected).abs() < 1e-12);
        }
    }

    #[test]
    fn singleton_quorum_forces_unit_load() {
        // A system containing a singleton quorum {0} that every other quorum must
        // intersect: the only quorums are supersets of {0}; load is 1 on server 0...
        let q = vec![
            ServerSet::from_indices(3, [0]),
            ServerSet::from_indices(3, [0, 1]),
            ServerSet::from_indices(3, [0, 2]),
        ];
        let (load, _) = optimal_load(&q, 3).unwrap();
        assert!((load - 1.0).abs() < 1e-6);
    }

    #[test]
    fn star_versus_majority_loads() {
        // The "star" system {{0,1},{0,2},{0,3}} has load 1 (server 0 in every quorum);
        // the 3-majority has load 2/3 — the LP must see the difference.
        let star = vec![
            ServerSet::from_indices(4, [0, 1]),
            ServerSet::from_indices(4, [0, 2]),
            ServerSet::from_indices(4, [0, 3]),
        ];
        let (l_star, _) = optimal_load(&star, 4).unwrap();
        assert!((l_star - 1.0).abs() < 1e-6);
        let (l_maj, _) = optimal_load(&k_of_n(3, 2), 3).unwrap();
        assert!((l_maj - 2.0 / 3.0).abs() < 1e-6);
    }

    #[test]
    fn grid_like_load() {
        // 2x2 grid, quorums = one row + one column (4 quorums of size 3 over 4
        // elements): fair with s=3, so L = 3/4.
        let q = vec![
            ServerSet::from_indices(4, [0, 1, 2]), // row0 + col0
            ServerSet::from_indices(4, [0, 1, 3]), // row0 + col1
            ServerSet::from_indices(4, [2, 3, 0]), // row1 + col0
            ServerSet::from_indices(4, [2, 3, 1]), // row1 + col1
        ];
        let (load, _) = optimal_load(&q, 4).unwrap();
        assert!((load - 0.75).abs() < 1e-6);
        assert!((fair_load(&q, 4).unwrap() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn load_lower_bounds_respected() {
        // NW98: L >= max(c/n, 1/c); check on 4-of-7 threshold.
        let q = k_of_n(7, 4);
        let (load, _) = optimal_load(&q, 7).unwrap();
        assert!(load >= 4.0 / 7.0 - 1e-9);
        assert!(load >= 1.0 / 4.0 - 1e-9);
    }

    #[test]
    fn fair_load_rejects_unfair_systems() {
        let q = vec![
            ServerSet::from_indices(3, [0, 1]),
            ServerSet::from_indices(3, [0, 1, 2]),
        ];
        assert!(fair_load(&q, 3).is_err());
        // The LP still works on unfair systems.
        let (load, _) = optimal_load(&q, 3).unwrap();
        assert!(load > 0.0 && load <= 1.0);
    }

    #[test]
    fn empty_system_is_an_error() {
        assert!(matches!(
            optimal_load(&[], 3),
            Err(QuorumError::EmptySystem)
        ));
    }

    #[test]
    fn optimal_strategy_beats_uniform_on_asymmetric_system() {
        // System where uniform is suboptimal: quorums {0,1},{0,2},{1,2},{0,1},
        // duplicated quorum skews uniform; LP should still reach 2/3.
        let q = vec![
            ServerSet::from_indices(3, [0, 1]),
            ServerSet::from_indices(3, [0, 2]),
            ServerSet::from_indices(3, [1, 2]),
            ServerSet::from_indices(3, [0, 1]),
        ];
        let uniform = AccessStrategy::uniform(4);
        let uniform_load = strategy_load(&q, 3, &uniform);
        let (opt, _) = optimal_load(&q, 3).unwrap();
        assert!(opt <= uniform_load + 1e-9);
        assert!((opt - 2.0 / 3.0).abs() < 1e-6);
    }
}
