//! The load `L(Q)` of a quorum system (Definition 3.8, Proposition 3.9).
//!
//! The system load is `min_w max_u l_w(u)`: the best achievable frequency of access
//! of the busiest server over all access strategies. Three solvers coexist:
//!
//! * [`optimal_load`] — the explicit LP: one dense variable per quorum,
//!   solved with the workspace simplex. Exact for any materialised system,
//!   but exponential for the paper's large-`n` constructions.
//! * [`optimal_load_oracle`] — **column generation**: a restricted master
//!   packing LP over a small working set of quorums
//!   ([`bqs_lp::packing::PackingLp`]), grown on demand by a per-construction
//!   pricing oracle ([`crate::oracle::MinWeightQuorumOracle`]). Returns a
//!   [`CertifiedLoad`]: the strategy's exact induced load together with a
//!   rigorous lower bound, with `gap = load − lower_bound` certified by weak
//!   duality (see below). This is how `L(Q)` is verified at `n = 1024`
//!   without enumerating quorums.
//! * [`fair_load`] — Proposition 3.9's closed form `L(Q) = c(Q)/n` for fair
//!   systems, used as a cross-check (and an ablation) against both LPs.
//!
//! # Why the column-generation result is certified
//!
//! Write the load LP as a packing program: `W* = max Σ_Q w_Q` subject to
//! `Σ_{Q ∋ u} w_Q ≤ 1` per server, so `L(Q) = 1/W*`. The restricted master
//! over a working set yields a feasible `w` whose exact induced load (computed
//! directly from the columns, not from solver state) upper-bounds `L(Q)`.
//! Conversely, for *any* prices `y ≥ 0` and any strategy `w'`,
//!
//! ```text
//! max_u l_{w'}(u)  ≥  Σ_u y_u l_{w'}(u) / Σ_u y_u  =  Σ_Q w'_Q y(Q) / Σ_u y_u
//!                  ≥  min_Q y(Q) / Σ_u y_u,
//! ```
//!
//! and the pricing oracle evaluates `min_Q y(Q)` exactly — so every round
//! produces a valid lower bound, robust even to floating-point drift in the
//! master. The engine stops when the two bounds meet.

use bqs_lp::{Constraint, LinearProgram, LpOutcome, PackingLp, Relation};

use crate::bitset::ServerSet;
use crate::error::QuorumError;
use crate::measures;
use crate::oracle::{quorum_price, MinWeightQuorumOracle};
use crate::strategy::AccessStrategy;

/// The exact system load and an optimal access strategy, via linear programming.
///
/// Variables are one weight per quorum plus the bound `z`; constraints say each
/// server's induced load is at most `z` and the weights form a distribution.
///
/// # Errors
///
/// Returns [`QuorumError::EmptySystem`] when no quorums are given, or
/// [`QuorumError::InvalidStrategy`] if the LP solver fails to produce a valid
/// distribution (which indicates a numerical problem and should not happen for
/// well-formed inputs).
pub fn optimal_load(
    quorums: &[ServerSet],
    universe_size: usize,
) -> Result<(f64, AccessStrategy), QuorumError> {
    if quorums.is_empty() {
        return Err(QuorumError::EmptySystem);
    }
    let m = quorums.len();
    // Variables: w_0..w_{m-1}, z  (all >= 0).
    let num_vars = m + 1;
    let mut objective = vec![0.0; num_vars];
    objective[m] = 1.0; // minimize z

    let mut constraints = Vec::with_capacity(universe_size + 1);
    for u in 0..universe_size {
        let mut coeffs = vec![0.0; num_vars];
        let mut touched = false;
        for (qi, q) in quorums.iter().enumerate() {
            if q.contains(u) {
                coeffs[qi] = 1.0;
                touched = true;
            }
        }
        if !touched {
            continue; // server in no quorum never carries load
        }
        coeffs[m] = -1.0;
        constraints.push(Constraint::new(coeffs, Relation::Le, 0.0));
    }
    let mut sum_coeffs = vec![1.0; num_vars];
    sum_coeffs[m] = 0.0;
    constraints.push(Constraint::new(sum_coeffs, Relation::Eq, 1.0));

    let lp = LinearProgram {
        num_vars,
        maximize: false,
        objective,
        constraints,
    };
    match lp.solve() {
        LpOutcome::Optimal(sol) => {
            let load = sol.objective_value;
            let weights: Vec<f64> = sol.values[..m].iter().map(|&w| w.max(0.0)).collect();
            // Renormalise against floating point drift before building the strategy.
            let strategy = AccessStrategy::normalized(weights).map_err(|_| {
                QuorumError::InvalidStrategy("LP produced an all-zero strategy".into())
            })?;
            Ok((load, strategy))
        }
        LpOutcome::Infeasible | LpOutcome::Unbounded => Err(QuorumError::InvalidStrategy(
            "load LP was infeasible or unbounded".into(),
        )),
    }
}

/// Default certification tolerance of [`optimal_load_oracle`]: the engine
/// keeps generating columns until `load − lower_bound ≤ 1e-9`.
pub const CERTIFIED_GAP_TOLERANCE: f64 = 1e-9;

/// A certified load computation from the column-generation engine.
#[derive(Debug, Clone)]
pub struct CertifiedLoad {
    /// The exact induced load of [`CertifiedLoad::strategy`] — an upper bound
    /// on `L(Q)` that the strategy achieves, recomputed directly from the
    /// working-set columns (never read back from solver state).
    pub load: f64,
    /// A rigorous lower bound on `L(Q)` from the pricing oracle's last
    /// evaluation (weak duality; see the module docs).
    pub lower_bound: f64,
    /// `load − lower_bound`. At most the requested tolerance unless the
    /// round cap was reached (which the engine reports as an error).
    pub gap: f64,
    /// The working-set quorums carrying positive strategy weight.
    pub quorums: Vec<ServerSet>,
    /// The access strategy over [`CertifiedLoad::quorums`] achieving
    /// [`CertifiedLoad::load`].
    pub strategy: AccessStrategy,
    /// Column-generation rounds (master solves) performed.
    pub rounds: usize,
    /// Total columns generated (including zero-weight ones dropped from the
    /// returned strategy).
    pub columns: usize,
}

/// Extra pricing calls per round with coverage-count prices: symmetric
/// systems need a whole orbit of near-identical columns before their duals
/// equalise, and harvesting several per master solve cuts the round count by
/// roughly this factor.
const DIVERSIFY_PER_ROUND: usize = 8;

/// Cap on the count-balanced seeding family (see below) — for thresholds the
/// family cycles after `⌈n/(n−c)⌉` columns, but constructions with richer
/// symmetry groups could otherwise keep producing fresh balanced columns
/// forever.
const SEED_CAP: usize = 256;

/// The certified system load by column generation, for constructions with a
/// polynomial pricing oracle — the large-`n` path that replaces materialising
/// exponentially many quorum variables.
///
/// Runs the restricted-master / pricing-oracle loop described in the module
/// docs with the default tolerance [`CERTIFIED_GAP_TOLERANCE`] and a round
/// cap proportional to the universe size.
///
/// # Errors
///
/// * [`QuorumError::InvalidParameters`] when the oracle declines the instance
///   (e.g. an M-Grid whose per-quorum line count makes exact pricing
///   infeasible) — callers should fall back to [`optimal_load`] on an
///   explicit quorum list, or when the gap cannot be certified within the
///   round cap (a numerical failure that does not occur for the paper's
///   constructions).
/// * [`QuorumError::InvalidStrategy`] if the master produces no usable
///   strategy (cannot happen for well-formed oracles).
pub fn optimal_load_oracle<S: MinWeightQuorumOracle + ?Sized>(
    system: &S,
) -> Result<CertifiedLoad, QuorumError> {
    optimal_load_oracle_with(
        system,
        CERTIFIED_GAP_TOLERANCE,
        64 + 16 * system.universe_size(),
    )
}

/// The certified load of a **hand-built explicit quorum list** — the entry
/// point for custom systems that are not one of the paper's constructions
/// and need not be fair, so neither Proposition 3.9's `c(Q)/n` closed form
/// ([`fair_load`] rejects them) nor a structured pricing oracle applies.
///
/// Wraps the list in an [`crate::quorum::ExplicitQuorumSystem`], whose
/// linear-scan pricing oracle is exact, and runs the same certified
/// column-generation engine as the structured constructions — the result
/// carries the identical `load − lower_bound ≤` [`CERTIFIED_GAP_TOLERANCE`]
/// certificate.
///
/// # Errors
///
/// * [`QuorumError::EmptySystem`] / [`QuorumError::InvalidParameters`] when
///   the list is empty or a quorum does not fit the universe (via
///   [`crate::quorum::ExplicitQuorumSystem::new`]).
/// * As [`optimal_load_oracle`] for certification failures.
pub fn optimal_load_oracle_for_quorums(
    universe_size: usize,
    quorums: Vec<ServerSet>,
) -> Result<CertifiedLoad, QuorumError> {
    let sys = crate::quorum::ExplicitQuorumSystem::new(universe_size, quorums)?;
    optimal_load_oracle(&sys)
}

/// Re-certifies a quorum list against a **survivor mask** — the
/// reconfiguration entry point. Quorums touching any suspected server are
/// discarded; the remainder is certified over the *original* universe, so
/// the returned strategy's quorum columns keep full-universe server indices
/// and drop straight into an existing transport/metrics layout. Dead servers
/// simply carry zero load (they appear in no surviving quorum, which the
/// load LP already handles).
///
/// # Errors
///
/// * [`QuorumError::EmptySystem`] when no quorum survives the mask — the
///   caller must switch constructions (or give up resilience) rather than
///   serve from a system with no live quorum.
/// * As [`optimal_load_oracle_for_quorums`] otherwise.
pub fn optimal_load_oracle_for_survivors(
    universe_size: usize,
    quorums: &[ServerSet],
    survivors: &ServerSet,
) -> Result<CertifiedLoad, QuorumError> {
    let surviving: Vec<ServerSet> = quorums
        .iter()
        .filter(|q| q.is_subset_of(survivors))
        .cloned()
        .collect();
    if surviving.is_empty() {
        return Err(QuorumError::EmptySystem);
    }
    optimal_load_oracle_for_quorums(universe_size, surviving)
}

/// [`optimal_load_oracle`] with an explicit gap tolerance and round cap.
///
/// # Errors
///
/// As [`optimal_load_oracle`].
pub fn optimal_load_oracle_with<S: MinWeightQuorumOracle + ?Sized>(
    system: &S,
    tolerance: f64,
    max_rounds: usize,
) -> Result<CertifiedLoad, QuorumError> {
    let n = system.universe_size();
    if n == 0 {
        return Err(QuorumError::EmptySystem);
    }
    let oracle_unavailable = || {
        QuorumError::InvalidParameters(format!(
            "no pricing oracle answer for {} — fall back to the explicit LP",
            system.name()
        ))
    };

    let mut master = PackingLp::new(n);
    let mut columns: Vec<ServerSet> = Vec::new();
    let mut seen: std::collections::HashSet<ServerSet> = std::collections::HashSet::new();
    // Per-server coverage counts over the working set: pricing by these
    // counts asks the oracle for the quorum over the *least-covered* servers,
    // which drives the family towards a balanced (partition-like) structure —
    // exactly the kind of support an equalising optimal strategy needs. On
    // the paper's symmetric constructions this seeds the optimal basis almost
    // immediately, where dual-priced columns alone zigzag for hundreds of
    // rounds through the degenerate packing polytope.
    let mut counts = vec![0u64; n];
    fn add_column(
        master: &mut PackingLp,
        columns: &mut Vec<ServerSet>,
        seen: &mut std::collections::HashSet<ServerSet>,
        counts: &mut [u64],
        q: ServerSet,
    ) -> bool {
        if q.is_empty() || !seen.insert(q.clone()) {
            return false;
        }
        master.add_column(&q.to_vec());
        for u in q.iter() {
            counts[u] += 1;
        }
        columns.push(q);
        true
    }
    fn count_prices(counts: &[u64]) -> Vec<f64> {
        counts.iter().map(|&c| c as f64).collect()
    }

    // The uniform-price bound is loop-invariant (prices never change), so it
    // is evaluated exactly once: `min_Q |Q| / n`, which alone is already
    // tight for every vertex-transitive construction. Every price vector
    // ever evaluated yields a valid lower bound (module docs), so the
    // certificate keeps the best one seen.
    let uniform_prices = vec![1.0; n];
    let (uniform_quorum, uniform_value) = system
        .min_weight_quorum(&uniform_prices)
        .ok_or_else(oracle_unavailable)?;
    let mut lower_best = (uniform_value / n as f64).max(0.0);

    // Fast path: a symmetric strategy hint, certified without the master.
    // The hint's induced load is recomputed exactly from its columns and the
    // pricing oracle's uniform-price bound must meet it — the certificate is
    // as rigorous as the column-generated one, just cheaper to reach.
    let hint = system.symmetric_strategy_hint();
    if let Some((hint_quorums, hint_weights)) = &hint {
        if hint_quorums.len() == hint_weights.len() && !hint_quorums.is_empty() {
            if let Ok(strategy) = AccessStrategy::normalized(hint_weights.clone()) {
                let upper = strategy.induced_system_load(hint_quorums, n);
                let gap = upper - lower_best;
                if gap <= tolerance {
                    return Ok(CertifiedLoad {
                        load: upper,
                        lower_bound: upper - gap.max(0.0),
                        gap: gap.max(0.0),
                        quorums: hint_quorums.clone(),
                        strategy,
                        rounds: 0,
                        columns: hint_quorums.len(),
                    });
                }
            }
        }
    }

    // Otherwise the hint columns (if any) and the minimum-cardinality quorum
    // seed the restricted master along with the count-balanced family, and
    // column generation takes over.
    if let Some((hint_quorums, _)) = hint {
        for q in hint_quorums {
            add_column(&mut master, &mut columns, &mut seen, &mut counts, q);
        }
    }
    add_column(
        &mut master,
        &mut columns,
        &mut seen,
        &mut counts,
        uniform_quorum,
    );

    // Seed: count-balanced columns until the family cycles (or a cap).
    for _ in 0..SEED_CAP {
        let (q, _) = system
            .min_weight_quorum(&count_prices(&counts))
            .ok_or_else(oracle_unavailable)?;
        if !add_column(&mut master, &mut columns, &mut seen, &mut counts, q) {
            break;
        }
    }

    let trace = std::env::var_os("BQS_CG_TRACE").is_some();
    let mut rounds = 0usize;
    loop {
        rounds += 1;
        master.solve();
        // Exact upper bound: the normalised working-set strategy's true
        // induced load, recomputed from the sparse columns.
        let x = master.primal();
        let total_w: f64 = x.iter().sum();
        if total_w <= 0.0 {
            return Err(QuorumError::InvalidStrategy(
                "column-generation master produced an all-zero strategy".into(),
            ));
        }
        let mut loads = vec![0.0; n];
        for (q, &w) in columns.iter().zip(&x) {
            if w > 0.0 {
                for u in q.iter() {
                    loads[u] += w;
                }
            }
        }
        let upper = loads.iter().fold(0.0f64, |a, &l| a.max(l)) / total_w;

        // Rigorous lower bound from the oracle at the master's dual prices
        // (the classic column-generation bound; the loop-invariant
        // uniform-price bound is already folded into `lower_best`). Any
        // evaluated price vector yields a valid bound, so the best one seen
        // so far certifies.
        let y = master.duals();
        let sum_y: f64 = y.iter().sum();
        let (priced, oracle_value) = system
            .min_weight_quorum(&y)
            .ok_or_else(oracle_unavailable)?;
        let v = quorum_price(&priced, &y);
        debug_assert!(
            (v - oracle_value).abs() <= 1e-6 * (1.0 + v.abs()),
            "oracle of {} reported price {oracle_value} but its quorum costs {v}",
            system.name()
        );
        if sum_y > 0.0 {
            lower_best = lower_best.max(v / sum_y);
        }
        let lower = lower_best.min(upper);
        let gap = upper - lower;
        if trace {
            eprintln!(
                "cg[{}] round {rounds}: cols={} pivots={} upper={upper:.9} lower={lower:.9} gap={gap:.3e}",
                system.name(),
                columns.len(),
                master.last_pivots(),
            );
        }

        if gap <= tolerance {
            // Keep only the support of the strategy.
            let mut support = Vec::new();
            let mut weights = Vec::new();
            for (q, &w) in columns.iter().zip(&x) {
                if w > 0.0 {
                    support.push(q.clone());
                    weights.push(w);
                }
            }
            let strategy = AccessStrategy::normalized(weights)?;
            let load = strategy.induced_system_load(&support, n);
            return Ok(CertifiedLoad {
                load,
                lower_bound: load - gap,
                gap,
                quorums: support,
                strategy,
                rounds,
                columns: columns.len(),
            });
        }
        if rounds >= max_rounds {
            return Err(QuorumError::InvalidParameters(format!(
                "column generation for {} did not certify within {max_rounds} rounds (gap {gap:e})",
                system.name()
            )));
        }

        // Grow the working set: the dual-priced column (the classic improving
        // column of column generation) and a harvest of count-balanced
        // columns that keep the family equalisable.
        let mut progressed = add_column(&mut master, &mut columns, &mut seen, &mut counts, priced);
        for _ in 0..DIVERSIFY_PER_ROUND {
            let Some((q, _)) = system.min_weight_quorum(&count_prices(&counts)) else {
                break;
            };
            if !add_column(&mut master, &mut columns, &mut seen, &mut counts, q) {
                break;
            }
            progressed = true;
        }
        if !progressed {
            // The oracle's optimum is already in the working set yet the gap
            // has not closed: a numerical stall. Report it rather than loop.
            return Err(QuorumError::InvalidParameters(format!(
                "column generation for {} stalled with gap {gap:e}",
                system.name()
            )));
        }
    }
}

/// The load of a *fair* system by Proposition 3.9: `L(Q) = c(Q) / n`.
///
/// # Errors
///
/// Returns [`QuorumError::InvalidParameters`] if the system is not fair (use
/// [`optimal_load`] instead in that case).
pub fn fair_load(quorums: &[ServerSet], universe_size: usize) -> Result<f64, QuorumError> {
    if measures::fairness(quorums, universe_size).is_none() {
        return Err(QuorumError::InvalidParameters(
            "Proposition 3.9 requires an (s, d)-fair system".into(),
        ));
    }
    Ok(measures::min_quorum_size(quorums) as f64 / universe_size as f64)
}

/// The load induced by a specific strategy (`L_w(Q)`), for comparing candidate
/// strategies against the optimum.
#[must_use]
pub fn strategy_load(
    quorums: &[ServerSet],
    universe_size: usize,
    strategy: &AccessStrategy,
) -> f64 {
    strategy.induced_system_load(quorums, universe_size)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bqs_combinatorics::subsets::KSubsets;

    fn k_of_n(n: usize, k: usize) -> Vec<ServerSet> {
        KSubsets::new(n, k)
            .map(|s| ServerSet::from_indices(n, s))
            .collect()
    }

    #[test]
    fn majority_load_is_majority_fraction() {
        // Majority over n: load = ceil((n+1)/2)/n.
        for n in [3usize, 5, 7] {
            let k = n / 2 + 1;
            let q = k_of_n(n, k);
            let (load, strategy) = optimal_load(&q, n).unwrap();
            let expected = k as f64 / n as f64;
            assert!((load - expected).abs() < 1e-6, "n={n} load={load}");
            // The returned strategy must achieve (close to) the optimal load.
            let achieved = strategy_load(&q, n, &strategy);
            assert!(achieved <= load + 1e-6);
            // And it must agree with the fair-system closed form.
            assert!((fair_load(&q, n).unwrap() - expected).abs() < 1e-12);
        }
    }

    #[test]
    fn singleton_quorum_forces_unit_load() {
        // A system containing a singleton quorum {0} that every other quorum must
        // intersect: the only quorums are supersets of {0}; load is 1 on server 0...
        let q = vec![
            ServerSet::from_indices(3, [0]),
            ServerSet::from_indices(3, [0, 1]),
            ServerSet::from_indices(3, [0, 2]),
        ];
        let (load, _) = optimal_load(&q, 3).unwrap();
        assert!((load - 1.0).abs() < 1e-6);
    }

    #[test]
    fn star_versus_majority_loads() {
        // The "star" system {{0,1},{0,2},{0,3}} has load 1 (server 0 in every quorum);
        // the 3-majority has load 2/3 — the LP must see the difference.
        let star = vec![
            ServerSet::from_indices(4, [0, 1]),
            ServerSet::from_indices(4, [0, 2]),
            ServerSet::from_indices(4, [0, 3]),
        ];
        let (l_star, _) = optimal_load(&star, 4).unwrap();
        assert!((l_star - 1.0).abs() < 1e-6);
        let (l_maj, _) = optimal_load(&k_of_n(3, 2), 3).unwrap();
        assert!((l_maj - 2.0 / 3.0).abs() < 1e-6);
    }

    #[test]
    fn grid_like_load() {
        // 2x2 grid, quorums = one row + one column (4 quorums of size 3 over 4
        // elements): fair with s=3, so L = 3/4.
        let q = vec![
            ServerSet::from_indices(4, [0, 1, 2]), // row0 + col0
            ServerSet::from_indices(4, [0, 1, 3]), // row0 + col1
            ServerSet::from_indices(4, [2, 3, 0]), // row1 + col0
            ServerSet::from_indices(4, [2, 3, 1]), // row1 + col1
        ];
        let (load, _) = optimal_load(&q, 4).unwrap();
        assert!((load - 0.75).abs() < 1e-6);
        assert!((fair_load(&q, 4).unwrap() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn load_lower_bounds_respected() {
        // NW98: L >= max(c/n, 1/c); check on 4-of-7 threshold.
        let q = k_of_n(7, 4);
        let (load, _) = optimal_load(&q, 7).unwrap();
        assert!(load >= 4.0 / 7.0 - 1e-9);
        assert!(load >= 1.0 / 4.0 - 1e-9);
    }

    #[test]
    fn fair_load_rejects_unfair_systems() {
        let q = vec![
            ServerSet::from_indices(3, [0, 1]),
            ServerSet::from_indices(3, [0, 1, 2]),
        ];
        assert!(fair_load(&q, 3).is_err());
        // The LP still works on unfair systems.
        let (load, _) = optimal_load(&q, 3).unwrap();
        assert!(load > 0.0 && load <= 1.0);
    }

    #[test]
    fn empty_system_is_an_error() {
        assert!(matches!(
            optimal_load(&[], 3),
            Err(QuorumError::EmptySystem)
        ));
    }

    #[test]
    fn explicit_list_entry_certifies_a_non_fair_custom_system() {
        // Hand-built non-fair system on 4 servers: an asymmetric star plus
        // the complement quorum. Not fair (mixed quorum sizes, server 0
        // privileged), so c(Q)/n does not apply — the analytic optimum puts
        // weight 2/5 on {1,2,3} and 1/5 on each star, equalising every
        // server's load at 3/5.
        let quorums = vec![
            ServerSet::from_indices(4, [0, 1]),
            ServerSet::from_indices(4, [0, 2]),
            ServerSet::from_indices(4, [0, 3]),
            ServerSet::from_indices(4, [1, 2, 3]),
        ];
        assert!(fair_load(&quorums, 4).is_err());
        let certified = optimal_load_oracle_for_quorums(4, quorums.clone()).unwrap();
        assert!(
            certified.gap <= CERTIFIED_GAP_TOLERANCE,
            "gap={}",
            certified.gap
        );
        assert!(
            (certified.load - 0.6).abs() <= 1e-9,
            "certified {} vs analytic 3/5",
            certified.load
        );
        // The certified answer agrees with the dense explicit LP.
        let (dense, _) = optimal_load(&quorums, 4).unwrap();
        assert!((certified.load - dense).abs() <= 1e-9);
        // Every strategy quorum is one of the hand-built ones.
        for q in &certified.quorums {
            assert!(quorums.contains(q));
        }
        // Invalid lists surface the constructor's errors.
        assert!(optimal_load_oracle_for_quorums(4, vec![]).is_err());
    }

    #[test]
    fn survivor_mask_recertification_drops_dead_quorums_and_their_load() {
        // 3-of-5 majority quorums; then server 4 dies. Only the C(4,3) = 4
        // quorums inside {0..3} survive, and the re-certified load is the
        // 3-of-4 fair load 3/4 — *over the original 5-server universe*, with
        // the dead server carrying zero load.
        let quorums = k_of_n(5, 3);
        let healthy = optimal_load_oracle_for_survivors(5, &quorums, &ServerSet::full(5)).unwrap();
        assert!((healthy.load - 3.0 / 5.0).abs() <= 1e-9, "{}", healthy.load);

        let survivors = ServerSet::from_indices(5, [0, 1, 2, 3]);
        let refit = optimal_load_oracle_for_survivors(5, &quorums, &survivors).unwrap();
        assert!(refit.gap <= CERTIFIED_GAP_TOLERANCE);
        assert!((refit.load - 3.0 / 4.0).abs() <= 1e-9, "{}", refit.load);
        for q in &refit.quorums {
            assert!(
                q.is_subset_of(&survivors),
                "no quorum touches the dead server"
            );
            assert_eq!(q.capacity(), 5, "full-universe indexing is kept");
        }

        // Too many losses: every quorum touches a suspect, and the caller is
        // told to switch constructions instead of being handed a degenerate
        // strategy.
        let lost = ServerSet::from_indices(5, [0, 1]);
        assert!(matches!(
            optimal_load_oracle_for_survivors(5, &quorums, &lost),
            Err(QuorumError::EmptySystem)
        ));
    }

    fn explicit(n: usize, quorums: Vec<ServerSet>) -> crate::quorum::ExplicitQuorumSystem {
        crate::quorum::ExplicitQuorumSystem::new(n, quorums).unwrap()
    }

    #[test]
    fn column_generation_matches_explicit_lp_on_small_systems() {
        // The engine (running against the explicit system's scan oracle) must
        // land on the same optimum as the dense LP, with a certified gap.
        let cases: Vec<(usize, Vec<ServerSet>)> = vec![
            (3, k_of_n(3, 2)),
            (5, k_of_n(5, 3)),
            (7, k_of_n(7, 4)),
            (9, k_of_n(9, 7)),
            (
                4,
                vec![
                    ServerSet::from_indices(4, [0, 1, 2]),
                    ServerSet::from_indices(4, [0, 1, 3]),
                    ServerSet::from_indices(4, [2, 3, 0]),
                    ServerSet::from_indices(4, [2, 3, 1]),
                ],
            ),
        ];
        for (n, quorums) in cases {
            let sys = explicit(n, quorums.clone());
            let (lp_load, _) = optimal_load(&quorums, n).unwrap();
            let certified = optimal_load_oracle(&sys).unwrap();
            assert!(
                (certified.load - lp_load).abs() <= 1e-9,
                "n={n}: certified {} vs explicit {lp_load}",
                certified.load
            );
            assert!(certified.gap <= CERTIFIED_GAP_TOLERANCE, "n={n}");
            assert!(certified.lower_bound <= certified.load + 1e-15);
            // The returned strategy achieves exactly the reported load.
            let achieved = certified
                .strategy
                .induced_system_load(&certified.quorums, n);
            assert_eq!(achieved.to_bits(), certified.load.to_bits(), "n={n}");
        }
    }

    #[test]
    fn column_generation_on_asymmetric_star_system() {
        // Server 0 sits in every quorum: the certified load must be 1 and the
        // lower bound must prove it (no strategy can do better).
        let quorums = vec![
            ServerSet::from_indices(4, [0, 1]),
            ServerSet::from_indices(4, [0, 2]),
            ServerSet::from_indices(4, [0, 3]),
        ];
        let sys = explicit(4, quorums);
        let certified = optimal_load_oracle(&sys).unwrap();
        assert!((certified.load - 1.0).abs() <= 1e-9);
        assert!(certified.lower_bound >= 1.0 - 1e-9);
    }

    #[test]
    fn column_generation_never_enumerates_more_than_needed() {
        // A 6-of-11 threshold has C(11,6) = 462 quorums; the working set the
        // engine touches must stay far below that.
        let quorums = k_of_n(11, 6);
        let sys = explicit(11, quorums.clone());
        let certified = optimal_load_oracle(&sys).unwrap();
        assert!((certified.load - 6.0 / 11.0).abs() <= 1e-9);
        assert!(
            certified.columns < 100,
            "working set blew up: {} columns",
            certified.columns
        );
    }

    #[test]
    fn certified_gap_tolerance_is_honoured_when_loosened() {
        let sys = explicit(5, k_of_n(5, 3));
        let loose = optimal_load_oracle_with(&sys, 1e-2, 10_000).unwrap();
        assert!(loose.gap <= 1e-2);
        // The loose answer is still a valid upper bound on the true load.
        assert!(loose.load >= 3.0 / 5.0 - 1e-9);
    }

    /// A pure-oracle threshold stand-in (no quorum list): lets the probe
    /// exercise the engine at sizes where even `KSubsets` is unthinkable.
    struct ThresholdOracle {
        n: usize,
        k: usize,
    }
    impl crate::quorum::QuorumSystem for ThresholdOracle {
        fn universe_size(&self) -> usize {
            self.n
        }
        fn name(&self) -> String {
            format!("{}-of-{}", self.k, self.n)
        }
        fn sample_quorum(&self, _rng: &mut dyn rand::RngCore) -> ServerSet {
            ServerSet::from_indices(self.n, 0..self.k)
        }
        fn find_live_quorum(&self, alive: &ServerSet) -> Option<ServerSet> {
            (alive.len() >= self.k)
                .then(|| ServerSet::from_indices(self.n, alive.iter().take(self.k)))
        }
        fn min_quorum_size(&self) -> usize {
            self.k
        }
    }
    impl MinWeightQuorumOracle for ThresholdOracle {
        fn min_weight_quorum(&self, prices: &[f64]) -> Option<(ServerSet, f64)> {
            let mut idx: Vec<usize> = (0..self.n).collect();
            idx.sort_by(|&a, &b| prices[a].total_cmp(&prices[b]).then(a.cmp(&b)));
            let v = idx[..self.k].iter().map(|&u| prices[u]).sum();
            Some((
                ServerSet::from_indices(self.n, idx[..self.k].iter().copied()),
                v,
            ))
        }
    }

    #[test]
    fn column_generation_scales_to_wide_thresholds() {
        // Modest size in debug builds; the n = 1024 paper scale runs in the
        // release-mode bench (`bench_load`) and the probe below.
        for (n, k) in [(64usize, 48usize), (128, 96)] {
            let sys = ThresholdOracle { n, k };
            let certified = optimal_load_oracle(&sys).unwrap();
            let expected = k as f64 / n as f64;
            assert!(
                (certified.load - expected).abs() <= 1e-9,
                "n={n}: {} vs {expected} (gap {:e}, rounds {})",
                certified.load,
                certified.gap,
                certified.rounds
            );
            assert!(certified.gap <= CERTIFIED_GAP_TOLERANCE);
        }
    }

    #[test]
    #[ignore = "column-generation scaling probe; run with --release --ignored --nocapture"]
    fn probe_column_generation_scaling() {
        for (n, k) in [(256usize, 192usize), (576, 432), (1024, 768), (1024, 1000)] {
            let sys = ThresholdOracle { n, k };
            let start = std::time::Instant::now();
            let c = optimal_load_oracle(&sys).unwrap();
            println!(
                "{}-of-{}: load={:.9} gap={:.2e} rounds={} columns={} in {:.3}s",
                k,
                n,
                c.load,
                c.gap,
                c.rounds,
                c.columns,
                start.elapsed().as_secs_f64()
            );
        }
    }

    #[test]
    fn optimal_strategy_beats_uniform_on_asymmetric_system() {
        // System where uniform is suboptimal: quorums {0,1},{0,2},{1,2},{0,1},
        // duplicated quorum skews uniform; LP should still reach 2/3.
        let q = vec![
            ServerSet::from_indices(3, [0, 1]),
            ServerSet::from_indices(3, [0, 2]),
            ServerSet::from_indices(3, [1, 2]),
            ServerSet::from_indices(3, [0, 1]),
        ];
        let uniform = AccessStrategy::uniform(4).unwrap();
        let uniform_load = strategy_load(&q, 3, &uniform);
        let (opt, _) = optimal_load(&q, 3).unwrap();
        assert!(opt <= uniform_load + 1e-9);
        assert!((opt - 2.0 / 3.0).abs() < 1e-6);
    }
}
