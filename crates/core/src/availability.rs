//! Crash probability `F_p(Q)` (Definition 3.10).
//!
//! Assuming each server crashes independently with probability `p`, `F_p(Q)` is the
//! probability that *every* quorum contains at least one crashed server — the system
//! is unavailable. Three engines are provided:
//!
//! * [`exact_crash_probability`] — exact enumeration of all `2^n` crash
//!   configurations. Since the evaluation-engine refactor this iterates raw
//!   `u64` masks against a reusable scratch set (zero allocation per
//!   configuration) and fans large mask ranges out across threads via
//!   [`crate::eval::Evaluator`];
//! * [`exact_crash_probability_naive`] — the historical scalar loop that heap-
//!   allocates a fresh [`ServerSet`] per configuration, kept as the reference
//!   the engine is validated (and its speedup measured) against;
//! * [`monte_carlo_crash_probability`] — an unbiased estimator with a binomial
//!   confidence interval, usable for any [`QuorumSystem`], including the large
//!   structured constructions. For parallel estimation with per-thread RNG
//!   streams, use [`crate::eval::Evaluator::monte_carlo`].
//!
//! The paper also cares about the *asymptotic* behaviour of `F_p`: a family of
//! systems is **Condorcet** if `F_p → 0` as `n → ∞` for every `p < 1/2`.
//! [`CrashEstimate`] carries the statistical context needed for such comparisons.

use rand::Rng;

use crate::bitset::ServerSet;
use crate::error::QuorumError;
use crate::eval::Evaluator;
use crate::quorum::QuorumSystem;

/// Largest universe size accepted by the exact enumerator (`2^25` configurations).
pub const EXACT_ENUMERATION_LIMIT: usize = crate::eval::DEFAULT_EXACT_LIMIT;

/// A Monte-Carlo estimate of a probability, with sampling error.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CrashEstimate {
    /// Point estimate.
    pub mean: f64,
    /// Standard error (binomial).
    pub std_error: f64,
    /// Number of trials behind the estimate.
    pub trials: usize,
}

impl CrashEstimate {
    /// Half-width of the 95% normal-approximation confidence interval.
    ///
    /// Degenerates to zero when no (or every) trial failed; use
    /// [`CrashEstimate::wilson_ci95`] for bounds that stay meaningful at the
    /// extremes.
    #[must_use]
    pub fn ci95_half_width(&self) -> f64 {
        1.96 * self.std_error
    }

    /// The 95% Wilson score interval `(lower, upper)` for the estimated
    /// probability. Unlike the normal approximation, it does not collapse at
    /// zero observed failures: with `0` of `n` trials failing the upper bound
    /// is `z²/(n + z²) ≈ 3.84/n` (the classical "rule of three" up to the
    /// choice of `z`), which is what a sweep should report instead of a
    /// degenerate `0 ± 0`.
    #[must_use]
    pub fn wilson_ci95(&self) -> (f64, f64) {
        wilson_score_interval(self.mean, self.trials)
    }

    /// Whether `value` lies within the 95% Wilson confidence interval.
    ///
    /// (Formerly used the normal approximation, under which an estimate with
    /// zero observed failures was "inconsistent" with every positive value —
    /// exactly the regime where rare-event sweeps need the opposite verdict.)
    #[must_use]
    pub fn is_consistent_with(&self, value: f64) -> bool {
        let (lower, upper) = self.wilson_ci95();
        value >= lower - 1e-12 && value <= upper + 1e-12
    }
}

/// The 95% Wilson score interval for a binomial proportion observed as
/// `mean` over `trials` trials (`z = 1.96`).
#[must_use]
pub fn wilson_score_interval(mean: f64, trials: usize) -> (f64, f64) {
    let n = trials.max(1) as f64;
    let p = mean.clamp(0.0, 1.0);
    let z = 1.96f64;
    let z2 = z * z;
    let denom = 1.0 + z2 / n;
    let center = (p + z2 / (2.0 * n)) / denom;
    let half = z / denom * (p * (1.0 - p) / n + z2 / (4.0 * n * n)).sqrt();
    // Snap the boundary cases exactly: at p = 0 (resp. 1) center and half are
    // equal up to rounding, and the bound must not leak a ±1e-19 residue.
    let lower = if p == 0.0 {
        0.0
    } else {
        (center - half).max(0.0)
    };
    let upper = if p == 1.0 {
        1.0
    } else {
        (center + half).min(1.0)
    };
    (lower, upper)
}

/// Exact crash probability by enumerating every crash configuration.
///
/// Runs on the shared evaluation engine: allocation-free mask iteration with
/// a `u64` fast path, parallel across all cores once the mask space exceeds
/// [`crate::eval::PARALLEL_MASK_THRESHOLD`] (below it, the ascending-mask
/// scalar order is preserved, so results match the historical loop
/// bit-for-bit). Closed forms are deliberately *not* consulted — this
/// function is the ground truth they are tested against; use
/// [`crate::eval::Evaluator::crash_probability`] for dispatching evaluation.
///
/// # Errors
///
/// Returns [`QuorumError::UniverseTooLarge`] when the universe exceeds
/// [`EXACT_ENUMERATION_LIMIT`] servers.
pub fn exact_crash_probability<Q: QuorumSystem + ?Sized>(
    system: &Q,
    p: f64,
) -> Result<f64, QuorumError> {
    Evaluator::new().exact(system, p)
}

/// The pre-refactor scalar enumerator: single-threaded, one fresh heap
/// [`ServerSet`] per crash configuration. Kept (not deprecated) as the
/// bit-for-bit reference for the evaluation engine and as the baseline the
/// `bench_fp` binary measures the engine's speedup against.
///
/// # Errors
///
/// Returns [`QuorumError::UniverseTooLarge`] when the universe exceeds
/// [`EXACT_ENUMERATION_LIMIT`] servers.
pub fn exact_crash_probability_naive<Q: QuorumSystem + ?Sized>(
    system: &Q,
    p: f64,
) -> Result<f64, QuorumError> {
    let n = system.universe_size();
    if n > EXACT_ENUMERATION_LIMIT {
        return Err(QuorumError::UniverseTooLarge {
            universe_size: n,
            limit: EXACT_ENUMERATION_LIMIT,
        });
    }
    let p = p.clamp(0.0, 1.0);
    let q = 1.0 - p;
    let mut crash_prob = 0.0;
    for mask in 0u64..(1u64 << n) {
        let alive = ServerSet::from_indices(n, (0..n).filter(|&i| mask & (1 << i) != 0));
        if !system.is_available(&alive) {
            let alive_count = alive.len() as i32;
            let crashed_count = (n as i32) - alive_count;
            crash_prob += q.powi(alive_count) * p.powi(crashed_count);
        }
    }
    Ok(crash_prob.clamp(0.0, 1.0))
}

/// Monte-Carlo estimate of the crash probability.
///
/// # Panics
///
/// Panics if `trials == 0`.
pub fn monte_carlo_crash_probability<Q, R>(
    system: &Q,
    p: f64,
    trials: usize,
    rng: &mut R,
) -> CrashEstimate
where
    Q: QuorumSystem + ?Sized,
    R: Rng + ?Sized,
{
    assert!(trials > 0, "at least one trial is required");
    let n = system.universe_size();
    let p = p.clamp(0.0, 1.0);
    let mut failures = 0usize;
    let mut alive = ServerSet::new(n);
    for _ in 0..trials {
        alive.clear();
        for i in 0..n {
            if rng.gen::<f64>() >= p {
                alive.insert(i);
            }
        }
        if !system.is_available(&alive) {
            failures += 1;
        }
    }
    let mean = failures as f64 / trials as f64;
    CrashEstimate {
        mean,
        std_error: (mean * (1.0 - mean) / trials as f64).sqrt(),
        trials,
    }
}

/// Samples a single alive-set with independent crash probability `p` — the failure
/// model of Definition 3.10 — for callers that drive their own experiments (e.g. the
/// protocol simulator).
pub fn sample_alive_set<R: Rng + ?Sized>(n: usize, p: f64, rng: &mut R) -> ServerSet {
    let mut alive = ServerSet::new(n);
    for i in 0..n {
        if rng.gen::<f64>() >= p {
            alive.insert(i);
        }
    }
    alive
}

/// The exact crash probability of an `ℓ-of-k` threshold system:
/// the system fails iff at least `k − ℓ + 1` of the `k` servers crash.
/// This closed form (a binomial tail) is used by the RT recurrence of
/// Proposition 5.6/5.7 and by boostFPP's threshold component.
#[must_use]
pub fn threshold_crash_probability(k: usize, l: usize, p: f64) -> f64 {
    assert!(l <= k && l > 0, "threshold requires 0 < l <= k");
    bqs_combinatorics::binomial::binomial_tail(k as u64, (k - l + 1) as u64, p)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quorum::ExplicitQuorumSystem;
    use bqs_combinatorics::subsets::KSubsets;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn k_of_n_system(n: usize, k: usize) -> ExplicitQuorumSystem {
        let quorums: Vec<ServerSet> = KSubsets::new(n, k)
            .map(|s| ServerSet::from_indices(n, s))
            .collect();
        ExplicitQuorumSystem::new(n, quorums).unwrap()
    }

    #[test]
    fn exact_matches_threshold_closed_form() {
        for (n, k) in [(4usize, 3usize), (5, 3), (5, 4), (7, 5)] {
            let sys = k_of_n_system(n, k);
            for &p in &[0.0, 0.1, 0.25, 0.5, 0.9, 1.0] {
                let exact = exact_crash_probability(&sys, p).unwrap();
                let closed = threshold_crash_probability(n, k, p);
                assert!(
                    (exact - closed).abs() < 1e-9,
                    "n={n} k={k} p={p}: {exact} vs {closed}"
                );
            }
        }
    }

    #[test]
    fn exact_extremes() {
        let sys = k_of_n_system(5, 3);
        assert_eq!(exact_crash_probability(&sys, 0.0).unwrap(), 0.0);
        assert_eq!(exact_crash_probability(&sys, 1.0).unwrap(), 1.0);
    }

    #[test]
    fn exact_monotone_in_p() {
        let sys = k_of_n_system(6, 4);
        let mut prev = 0.0;
        for i in 0..=10 {
            let p = i as f64 / 10.0;
            let fp = exact_crash_probability(&sys, p).unwrap();
            assert!(fp >= prev - 1e-12, "p={p}");
            prev = fp;
        }
    }

    #[test]
    fn universe_limit_enforced() {
        let quorums = vec![ServerSet::full(30)];
        let sys = ExplicitQuorumSystem::new(30, quorums).unwrap();
        assert!(matches!(
            exact_crash_probability(&sys, 0.1),
            Err(QuorumError::UniverseTooLarge { .. })
        ));
    }

    #[test]
    fn monte_carlo_agrees_with_exact() {
        let sys = k_of_n_system(7, 5);
        let mut rng = StdRng::seed_from_u64(17);
        for &p in &[0.1, 0.3, 0.5] {
            let exact = exact_crash_probability(&sys, p).unwrap();
            let mc = monte_carlo_crash_probability(&sys, p, 4000, &mut rng);
            assert!(
                mc.is_consistent_with(exact) || (mc.mean - exact).abs() < 0.03,
                "p={p}: exact={exact} mc={} ± {}",
                mc.mean,
                mc.ci95_half_width()
            );
        }
    }

    #[test]
    fn monte_carlo_estimate_statistics() {
        let sys = k_of_n_system(5, 3);
        let mut rng = StdRng::seed_from_u64(3);
        let est = monte_carlo_crash_probability(&sys, 0.5, 1000, &mut rng);
        assert_eq!(est.trials, 1000);
        assert!(est.std_error > 0.0);
        assert!(est.ci95_half_width() < 0.05);
    }

    #[test]
    fn zero_hit_estimate_reports_rule_of_three_upper_bound() {
        // 0 failures in 2000 trials: the point estimate is 0, but the Wilson
        // upper bound ~ 3.84/2000 stays informative and the estimate is
        // consistent with small positive truths (the boostFPP p = 0.05 case
        // that used to be reported as a bare `0e0`).
        let est = CrashEstimate {
            mean: 0.0,
            std_error: 0.0,
            trials: 2000,
        };
        let (lower, upper) = est.wilson_ci95();
        assert_eq!(lower, 0.0);
        assert!((upper - 1.96f64.powi(2) / (2000.0 + 1.96f64.powi(2))).abs() < 1e-12);
        assert!(
            upper > 1.0 / 2000.0 && upper < 3.0 / 1000.0,
            "upper={upper}"
        );
        assert!(est.is_consistent_with(1e-4));
        assert!(!est.is_consistent_with(0.01));
        // All-failures mirror image.
        let all = CrashEstimate {
            mean: 1.0,
            std_error: 0.0,
            trials: 2000,
        };
        let (lo, hi) = all.wilson_ci95();
        assert_eq!(hi, 1.0);
        assert!(lo < 1.0 && lo > 0.99);
    }

    #[test]
    fn wilson_interval_tracks_normal_approximation_mid_range() {
        let est = CrashEstimate {
            mean: 0.5,
            std_error: (0.25f64 / 1000.0).sqrt(),
            trials: 1000,
        };
        let (lower, upper) = est.wilson_ci95();
        assert!((lower - (0.5 - est.ci95_half_width())).abs() < 2e-3);
        assert!((upper - (0.5 + est.ci95_half_width())).abs() < 2e-3);
    }

    #[test]
    fn sample_alive_set_respects_probability() {
        let mut rng = StdRng::seed_from_u64(8);
        let mut total = 0usize;
        for _ in 0..200 {
            total += sample_alive_set(50, 0.2, &mut rng).len();
        }
        let mean_alive = total as f64 / 200.0;
        assert!((mean_alive - 40.0).abs() < 2.0, "mean alive = {mean_alive}");
    }

    #[test]
    fn singleton_system_crash_probability_is_p() {
        // One quorum {0}: system fails iff server 0 crashes.
        let sys = ExplicitQuorumSystem::from_indices(1, [vec![0usize]]).unwrap();
        for &p in &[0.0, 0.2, 0.7, 1.0] {
            assert!((exact_crash_probability(&sys, p).unwrap() - p).abs() < 1e-12);
        }
    }

    #[test]
    #[should_panic(expected = "at least one trial")]
    fn monte_carlo_requires_trials() {
        let sys = k_of_n_system(3, 2);
        let mut rng = StdRng::seed_from_u64(0);
        let _ = monte_carlo_crash_probability(&sys, 0.1, 0, &mut rng);
    }
}
