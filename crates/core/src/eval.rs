//! The shared evaluation engine for crash probability `F_p(Q)`.
//!
//! Every figure, table and sweep in the workspace ultimately asks the same
//! question — *how likely is it that no quorum survives?* — and before this
//! module each caller hand-rolled its own loop: single-threaded, allocating a
//! fresh [`ServerSet`] per crash configuration (`2^n` heap allocations per
//! exact evaluation). [`Evaluator`] replaces those loops with one engine:
//!
//! * **Closed forms first.** Constructions whose structure admits an exact
//!   closed-form `F_p` ([`QuorumSystem::crash_probability_closed_form`]) skip
//!   enumeration entirely — Threshold, Grid, M-Grid and RT all answer in
//!   microseconds at any `n`.
//! * **Allocation-free exact enumeration.** Crash configurations are iterated
//!   as raw `u64` masks (the exact limit is far below 64 servers) and checked
//!   through [`QuorumSystem::is_available_u64`] against one reusable scratch
//!   set per worker — zero heap allocation per configuration.
//! * **Parallel by default.** Mask ranges are chunked across a scoped thread
//!   pool; Monte-Carlo trials run on independent per-thread RNG streams
//!   (deterministic for a fixed seed, regardless of thread count).
//! * **Batched sweeps.** [`Evaluator::sweep`] / [`Evaluator::sweep_systems`]
//!   evaluate whole `(system, p)` grids on one persistent worker pool,
//!   amortising thread-spawn cost across points and overlapping expensive
//!   points (Monte-Carlo, the M-Path transfer-matrix DP) in wall-clock time.
//!
//! Small universes (`2^n` below [`PARALLEL_MASK_THRESHOLD`]) are evaluated on
//! the calling thread in ascending mask order, which keeps the result
//! *bit-for-bit identical* to the historical scalar loop — a property the
//! regression tests pin down.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::availability::CrashEstimate;
use crate::bitset::ServerSet;
use crate::error::QuorumError;
use crate::quorum::{LaneScratch, QuorumSystem, AVAILABILITY_LANES};

/// Largest universe size accepted by the exact enumerator (`2^25`
/// configurations by default; raise with [`Evaluator::with_exact_limit`], the
/// hard ceiling being 63 bits of mask space).
pub const DEFAULT_EXACT_LIMIT: usize = 25;

/// Mask-count threshold below which exact enumeration stays on the calling
/// thread (in ascending mask order, matching the historical scalar loop
/// bit-for-bit). `2^17` configurations evaluate in well under a millisecond,
/// so threads would only add overhead there.
pub const PARALLEL_MASK_THRESHOLD: u64 = 1 << 17;

/// How the engine arrived at a crash-probability value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FpMethod {
    /// A structure-aware closed form (exact, any `n`).
    ClosedForm,
    /// A structure-aware transfer-matrix dynamic program (exact; feasibility
    /// depends on the instance, e.g. the M-Path boundary-interface sweep).
    Dp,
    /// An ε-pruned transfer-matrix dynamic program: the value is the midpoint
    /// of a **certified** `[lower, upper]` enclosure (carried in
    /// [`FpEstimate::interval`]) whose width accounts for all pruned mass.
    DpPruned,
    /// Exhaustive enumeration of all `2^n` crash configurations (exact).
    Exact,
    /// Monte-Carlo estimation (unbiased, with sampling error).
    MonteCarlo,
}

impl FpMethod {
    /// The snake_case label used in benchmark JSON and dispatch tables.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            FpMethod::ClosedForm => "closed_form",
            FpMethod::Dp => "dp",
            FpMethod::DpPruned => "dp_pruned",
            FpMethod::Exact => "exact",
            FpMethod::MonteCarlo => "monte_carlo",
        }
    }
}

/// A crash-probability answer, tagged with how it was obtained.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FpEstimate {
    /// The crash probability `F_p(Q)` (point estimate for Monte-Carlo).
    pub value: f64,
    /// Standard error of the estimate (`None` for exact methods).
    pub std_error: Option<f64>,
    /// Number of Monte-Carlo trials behind the estimate, when applicable.
    pub trials: Option<usize>,
    /// The method that produced the value.
    pub method: FpMethod,
    /// Certified `[lower, upper]` enclosure of the true value, when the
    /// method provides one ([`FpMethod::DpPruned`]); `value` is its midpoint.
    /// Unlike a Monte-Carlo confidence interval this is a *rigorous* bound.
    pub interval: Option<(f64, f64)>,
}

impl FpEstimate {
    /// Half-width of the 95% confidence interval (zero for exact methods).
    ///
    /// For Monte-Carlo estimates with zero observed failures this degenerates
    /// to zero; [`FpEstimate::ci95_bounds`] stays informative there.
    #[must_use]
    pub fn ci95_half_width(&self) -> f64 {
        1.96 * self.std_error.unwrap_or(0.0)
    }

    /// The 95% confidence bounds `(lower, upper)` on the crash probability:
    /// the value itself for exact methods, the Wilson score interval for
    /// Monte-Carlo. In particular a sampled estimate that observed **no**
    /// failure in `n` trials reports the rule-of-three-style upper bound
    /// `≈ 3.84/n` instead of a degenerate `0 ± 0`.
    #[must_use]
    pub fn ci95_bounds(&self) -> (f64, f64) {
        match (self.method, self.trials) {
            (FpMethod::MonteCarlo, Some(trials)) => {
                crate::availability::wilson_score_interval(self.value, trials)
            }
            (FpMethod::DpPruned, _) => self.interval.unwrap_or((self.value, self.value)),
            _ => (self.value, self.value),
        }
    }

    /// The 95% upper confidence bound (the value itself for exact methods).
    #[must_use]
    pub fn ci95_upper_bound(&self) -> f64 {
        self.ci95_bounds().1
    }

    /// Whether the estimate is exact (closed form, DP or full enumeration).
    /// Pruned-DP answers are *not* exact — they are certified enclosures; see
    /// [`FpEstimate::is_certified`].
    #[must_use]
    pub fn is_exact(&self) -> bool {
        matches!(
            self.method,
            FpMethod::ClosedForm | FpMethod::Dp | FpMethod::Exact
        )
    }

    /// Whether the true value is covered by a rigorous (non-statistical)
    /// guarantee: exact methods, or a pruned-DP certified enclosure.
    #[must_use]
    pub fn is_certified(&self) -> bool {
        self.is_exact() || (self.method == FpMethod::DpPruned && self.interval.is_some())
    }

    /// Whether `value` lies within the 95% confidence interval — the Wilson
    /// interval for Monte-Carlo (so a zero-failure estimate remains
    /// consistent with small positive truths), a small absolute tolerance for
    /// exact methods.
    #[must_use]
    pub fn is_consistent_with(&self, value: f64) -> bool {
        let (lower, upper) = self.ci95_bounds();
        value >= lower - 1e-12 && value <= upper + 1e-12
    }
}

/// The shared entry point for crash-probability evaluation.
///
/// An `Evaluator` carries the execution policy — worker count, exact-vs-
/// sampling cutoff, Monte-Carlo effort and base seed — so that sweeps and
/// bench binaries describe *what* to measure and the engine decides *how*.
///
/// # Example
///
/// ```
/// use bqs_core::eval::{Evaluator, FpMethod};
/// use bqs_core::prelude::*;
///
/// let system = ExplicitQuorumSystem::from_indices(
///     3,
///     [vec![0, 1], vec![1, 2], vec![0, 2]],
/// )?;
/// let eval = Evaluator::new().with_seed(7);
/// let fp = eval.crash_probability(&system, 0.1);
/// assert_eq!(fp.method, FpMethod::Exact);
/// // Majority-of-3 fails when >= 2 of 3 crash: 3 p^2 (1-p) + p^3.
/// assert!((fp.value - (3.0 * 0.01 * 0.9 + 0.001)).abs() < 1e-12);
/// # Ok::<(), QuorumError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Evaluator {
    threads: usize,
    exact_limit: usize,
    mc_trials: usize,
    seed: u64,
}

impl Default for Evaluator {
    fn default() -> Self {
        Evaluator {
            threads: default_threads(),
            exact_limit: DEFAULT_EXACT_LIMIT,
            mc_trials: 10_000,
            seed: 0x004d_5257_3937,
        }
    }
}

fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

impl Evaluator {
    /// An evaluator with the default policy: all available cores, the
    /// standard exact limit, 10 000 Monte-Carlo trials, a fixed seed.
    #[must_use]
    pub fn new() -> Self {
        Evaluator::default()
    }

    /// Sets the number of worker threads (clamped to at least 1).
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Sets the largest universe evaluated by exact enumeration (clamped to
    /// 63, the mask-width ceiling).
    #[must_use]
    pub fn with_exact_limit(mut self, limit: usize) -> Self {
        self.exact_limit = limit.min(63);
        self
    }

    /// Sets the Monte-Carlo effort used when enumeration is infeasible.
    #[must_use]
    pub fn with_trials(mut self, trials: usize) -> Self {
        self.mc_trials = trials.max(1);
        self
    }

    /// Sets the base seed of the deterministic per-thread RNG streams.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// The configured worker-thread count.
    #[must_use]
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The configured Monte-Carlo trial count.
    #[must_use]
    pub fn trials(&self) -> usize {
        self.mc_trials
    }

    /// Evaluates `F_p(Q)`, choosing the cheapest method that answers exactly:
    /// a closed form when the construction has one, exhaustive enumeration
    /// when `2^n` is tractable, Monte-Carlo estimation otherwise.
    pub fn crash_probability<Q: QuorumSystem + ?Sized>(&self, system: &Q, p: f64) -> FpEstimate {
        let p = p.clamp(0.0, 1.0);
        if let Some(value) = system.crash_probability_closed_form(p) {
            return FpEstimate {
                value,
                std_error: None,
                trials: None,
                method: system.closed_form_method(),
                interval: None,
            };
        }
        match self.exact(system, p) {
            Ok(value) => FpEstimate {
                value,
                std_error: None,
                trials: None,
                method: FpMethod::Exact,
                interval: None,
            },
            Err(_) => {
                // Past the enumeration limit, a certified enclosure (the
                // ε-pruned DP) still beats sampling: rigorous bounds at any
                // width the construction can certify.
                if let Some((lower, upper)) = system.crash_probability_interval(p) {
                    return FpEstimate {
                        value: 0.5 * (lower + upper),
                        std_error: None,
                        trials: None,
                        method: FpMethod::DpPruned,
                        interval: Some((lower, upper)),
                    };
                }
                let est = self.monte_carlo(system, p);
                FpEstimate {
                    value: est.mean,
                    std_error: Some(est.std_error),
                    trials: Some(est.trials),
                    method: FpMethod::MonteCarlo,
                    interval: None,
                }
            }
        }
    }

    /// Exact `F_p(Q)` by (parallel, allocation-free) enumeration of every
    /// crash configuration. Never consults closed forms, which makes it the
    /// reference the closed forms are validated against.
    ///
    /// # Errors
    ///
    /// Returns [`QuorumError::UniverseTooLarge`] when `n` exceeds the
    /// configured exact limit.
    pub fn exact<Q: QuorumSystem + ?Sized>(&self, system: &Q, p: f64) -> Result<f64, QuorumError> {
        let n = system.universe_size();
        if n > self.exact_limit {
            return Err(QuorumError::UniverseTooLarge {
                universe_size: n,
                limit: self.exact_limit,
            });
        }
        let p = p.clamp(0.0, 1.0);
        let total: u64 = 1u64 << n;
        if self.threads <= 1 || total <= PARALLEL_MASK_THRESHOLD {
            return Ok(enumerate_masks(system, p, 0, total).clamp(0.0, 1.0));
        }
        // Oversplit relative to the worker count so an unlucky chunk (for
        // example one whose masks are mostly available and exit the quorum
        // scan late) cannot straggle the whole evaluation.
        let chunks =
            (self.threads * 8).min(usize::try_from(total / 1024).unwrap_or(usize::MAX).max(1));
        let chunk_len = total.div_ceil(chunks as u64);
        let crash_prob: f64 = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..chunks as u64)
                .map(|c| {
                    let start = c * chunk_len;
                    let end = total.min(start + chunk_len);
                    scope.spawn(move || enumerate_masks(system, p, start, end))
                })
                .collect();
            // Joining in spawn order keeps the reduction deterministic for a
            // fixed chunk count.
            handles
                .into_iter()
                .map(|h| h.join().expect("worker panicked"))
                .sum()
        });
        Ok(crash_prob.clamp(0.0, 1.0))
    }

    /// Evaluates `F_p(Q)` at every point of `ps` on a persistent scoped
    /// worker pool: the pool is spawned **once** for the whole sweep and the
    /// `(system, p)` points are pulled off a shared atomic counter, so the
    /// per-call thread-spawn cost of [`Evaluator::crash_probability`] is paid
    /// once instead of once per point, and expensive points (Monte-Carlo,
    /// M-Path's transfer-matrix DP) run concurrently across sweep points
    /// rather than sequentially.
    ///
    /// Threads are split between the two levels: with `j` jobs and `t`
    /// configured threads, `min(j, t)` pool workers each evaluate points with
    /// a `⌊t / workers⌋`-thread per-point policy — so a one-point sweep keeps
    /// the full intra-point parallelism of [`Evaluator::crash_probability`],
    /// and a wide grid runs one point per core. Results are deterministic for
    /// a fixed evaluator configuration and job grid; when the grid has at
    /// least `t` points every point runs single-threaded and matches
    /// `self.with_threads(1).crash_probability(system, p)` bit-for-bit.
    /// (Closed-form, DP and Monte-Carlo answers are bit-identical at *any*
    /// thread count; only parallel exact enumeration's summation order
    /// depends on it.)
    pub fn sweep(&self, system: &dyn QuorumSystem, ps: &[f64]) -> Vec<FpEstimate> {
        self.sweep_systems(&[system], ps).pop().unwrap_or_default()
    }

    /// The many-systems variant of [`Evaluator::sweep`]: evaluates the full
    /// `systems × ps` grid on one persistent worker pool and returns the
    /// estimates as `out[system_index][p_index]`.
    ///
    /// Closed-form-capable systems are evaluated through
    /// [`QuorumSystem::crash_probability_closed_form_batch`], one batch job
    /// per system, so constructions with `p`-independent scaffolding (the
    /// M-Path transfer-matrix DP) build it once per sweep instead of once
    /// per point. Systems without a closed form fall through to the usual
    /// per-`(system, p)` jobs (exact enumeration / Monte-Carlo), keeping
    /// their points parallel. Batch answers are bit-identical to per-point
    /// ones, so results are unchanged.
    pub fn sweep_systems(&self, systems: &[&dyn QuorumSystem], ps: &[f64]) -> Vec<Vec<FpEstimate>> {
        // Phase A: one closed-form batch attempt per system, on the pool.
        let batch_results: Vec<Option<Vec<FpEstimate>>> = {
            let slots: Vec<std::sync::OnceLock<Option<Vec<FpEstimate>>>> =
                systems.iter().map(|_| std::sync::OnceLock::new()).collect();
            let workers = self.threads.min(systems.len()).max(1);
            let next = std::sync::atomic::AtomicUsize::new(0);
            let run = |i: usize| -> Option<Vec<FpEstimate>> {
                let sys = systems[i];
                sys.crash_probability_closed_form_batch(ps)
                    .map(|values| {
                        values
                            .into_iter()
                            .map(|value| FpEstimate {
                                value,
                                std_error: None,
                                trials: None,
                                method: sys.closed_form_method(),
                                interval: None,
                            })
                            .collect()
                    })
                    .or_else(|| {
                        // No exact batch: a certified-interval batch (the
                        // ε-pruned DP sharing one state enumeration across
                        // the whole p-grid) still beats per-point sampling.
                        sys.crash_probability_interval_batch(ps).map(|intervals| {
                            intervals
                                .into_iter()
                                .map(|(lower, upper)| FpEstimate {
                                    value: 0.5 * (lower + upper),
                                    std_error: None,
                                    trials: None,
                                    method: FpMethod::DpPruned,
                                    interval: Some((lower, upper)),
                                })
                                .collect()
                        })
                    })
            };
            if workers <= 1 {
                systems.iter().enumerate().for_each(|(i, _)| {
                    let _ = slots[i].set(run(i));
                });
            } else {
                std::thread::scope(|scope| {
                    for _ in 0..workers {
                        scope.spawn(|| loop {
                            let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                            if i >= systems.len() {
                                break;
                            }
                            let _ = slots[i].set(run(i));
                        });
                    }
                });
            }
            slots
                .into_iter()
                .map(|s| s.into_inner().expect("pool completed every batch job"))
                .collect()
        };

        // Phase B: per-(system, p) jobs for the systems the batch declined.
        let jobs: Vec<(usize, f64)> = systems
            .iter()
            .enumerate()
            .filter(|&(i, _)| batch_results[i].is_none())
            .flat_map(|(i, _)| ps.iter().map(move |&p| (i, p)))
            .collect();
        let workers = self.threads.min(jobs.len()).max(1);
        // Leftover cores go to the points themselves (see [`Evaluator::sweep`]).
        let per_point = self.clone().with_threads(self.threads / workers);
        let slots: Vec<std::sync::OnceLock<FpEstimate>> =
            jobs.iter().map(|_| std::sync::OnceLock::new()).collect();
        if workers <= 1 {
            for (slot, &(sys_idx, p)) in slots.iter().zip(&jobs) {
                let _ = slot.set(per_point.crash_probability(systems[sys_idx], p));
            }
        } else {
            let next = std::sync::atomic::AtomicUsize::new(0);
            std::thread::scope(|scope| {
                for _ in 0..workers {
                    scope.spawn(|| loop {
                        let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        let Some(&(sys_idx, p)) = jobs.get(i) else {
                            break;
                        };
                        let est = per_point.crash_probability(systems[sys_idx], p);
                        let _ = slots[i].set(est);
                    });
                }
            });
        }

        let mut out: Vec<Vec<FpEstimate>> = batch_results
            .into_iter()
            .map(|b| b.unwrap_or_else(|| Vec::with_capacity(ps.len())))
            .collect();
        for (slot, &(sys_idx, _)) in slots.iter().zip(&jobs) {
            out[sys_idx].push(*slot.get().expect("pool completed every job"));
        }
        out
    }

    /// Monte-Carlo `F_p(Q)` with `self.trials()` trials fanned out over
    /// per-thread RNG streams. Deterministic for a fixed seed — the stream
    /// split is by trial block, not by scheduling order.
    pub fn monte_carlo<Q: QuorumSystem + ?Sized>(&self, system: &Q, p: f64) -> CrashEstimate {
        self.monte_carlo_with(system, p, self.mc_trials)
    }

    /// [`Evaluator::monte_carlo`] with an explicit trial count.
    ///
    /// Trials are partitioned into fixed-size blocks of [`MC_BLOCK_TRIALS`],
    /// each with its own RNG stream seeded from the block *index* — never
    /// from the worker count — and the failure counts are summed. The result
    /// is therefore a pure function of `(seed, trials, p, system)`, identical
    /// on a laptop, a CI runner, or any `with_threads` setting.
    pub fn monte_carlo_with<Q: QuorumSystem + ?Sized>(
        &self,
        system: &Q,
        p: f64,
        trials: usize,
    ) -> CrashEstimate {
        let trials = trials.max(1);
        let p = p.clamp(0.0, 1.0);
        let blocks = trials.div_ceil(MC_BLOCK_TRIALS);
        let block_trials = |b: usize| {
            if b + 1 == blocks {
                trials - b * MC_BLOCK_TRIALS
            } else {
                MC_BLOCK_TRIALS
            }
        };
        let workers = self.threads.min(blocks);
        let failures: usize = if workers <= 1 {
            (0..blocks)
                .map(|b| mc_failures(system, p, block_trials(b), stream_seed(self.seed, b as u64)))
                .sum()
        } else {
            std::thread::scope(|scope| {
                let handles: Vec<_> = (0..workers)
                    .map(|w| {
                        scope.spawn(move || {
                            // Strided block assignment; the sum over blocks is
                            // independent of which worker ran which block.
                            (w..blocks)
                                .step_by(workers)
                                .map(|b| {
                                    mc_failures(
                                        system,
                                        p,
                                        block_trials(b),
                                        stream_seed(self.seed, b as u64),
                                    )
                                })
                                .sum::<usize>()
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("worker panicked"))
                    .sum()
            })
        };
        let mean = failures as f64 / trials as f64;
        CrashEstimate {
            mean,
            std_error: (mean * (1.0 - mean) / trials as f64).sqrt(),
            trials,
        }
    }
}

/// Trials per Monte-Carlo RNG-stream block. The block partition (not the
/// worker partition) defines the random streams, making estimates
/// reproducible across machines with different core counts.
pub const MC_BLOCK_TRIALS: usize = 1024;

/// Sums the probability mass of the *unavailable* alive-masks in
/// `start..end`, allocation-free: one scratch pool for the whole range.
///
/// The per-mask probability depends only on the popcount, so the `n + 1`
/// possible weights are computed once up front — with the exact expression
/// the historical scalar loop used per mask, which keeps the summed terms
/// unchanged.
///
/// Masks are checked [`AVAILABILITY_LANES`] at a time through
/// [`QuorumSystem::is_available_u64x4`] — the availability test is where the
/// cycles go, and the batched form lets structure-aware systems answer four
/// masks per pass (SIMD-shaped for the autovectorizer). The weight
/// accumulation stays a single scalar chain in ascending mask order, so the
/// sum — and hence the bit-for-bit parity with the historical scalar loop
/// that the regression tests pin down — is untouched by the lane width.
fn enumerate_masks<Q: QuorumSystem + ?Sized>(system: &Q, p: f64, start: u64, end: u64) -> f64 {
    let n = system.universe_size();
    let q = 1.0 - p;
    let weight: Vec<f64> = (0..=n as i32)
        .map(|k| q.powi(k) * p.powi(n as i32 - k))
        .collect();
    // Structure-aware systems can swallow the whole range in one specialised
    // kernel (bit-identical by contract); the lane loop below is the generic
    // fallback.
    if let Some(mass) = system.unavailable_mass_u64_range(&weight, start, end) {
        return mass;
    }
    let mut scratch = LaneScratch::new(n);
    let mut crash_prob = 0.0;
    let lanes = AVAILABILITY_LANES as u64;
    let mut mask = start;
    while mask + lanes <= end {
        let batch: [u64; AVAILABILITY_LANES] = std::array::from_fn(|i| mask + i as u64);
        let available = system.is_available_u64x4(batch, &mut scratch);
        for (&m, &ok) in batch.iter().zip(&available) {
            if !ok {
                crash_prob += weight[m.count_ones() as usize];
            }
        }
        mask += lanes;
    }
    while mask < end {
        if !system.is_available_u64(mask, scratch.lane_mut(0)) {
            crash_prob += weight[mask.count_ones() as usize];
        }
        mask += 1;
    }
    crash_prob
}

/// Runs `trials` independent crash experiments on one RNG stream, reusing a
/// single scratch set, and counts how many left the system unavailable.
fn mc_failures<Q: QuorumSystem + ?Sized>(system: &Q, p: f64, trials: usize, seed: u64) -> usize {
    let n = system.universe_size();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut alive = ServerSet::new(n);
    let mut failures = 0usize;
    for _ in 0..trials {
        alive.clear();
        for i in 0..n {
            if rng.gen::<f64>() >= p {
                alive.insert(i);
            }
        }
        if !system.is_available(&alive) {
            failures += 1;
        }
    }
    failures
}

/// Derives statistically independent per-worker seeds (SplitMix64 finalizer).
fn stream_seed(base: u64, worker: u64) -> u64 {
    let mut z = base ^ worker.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::availability::{exact_crash_probability_naive, threshold_crash_probability};
    use crate::quorum::ExplicitQuorumSystem;
    use bqs_combinatorics::subsets::KSubsets;

    fn k_of_n_system(n: usize, k: usize) -> ExplicitQuorumSystem {
        let quorums: Vec<ServerSet> = KSubsets::new(n, k)
            .map(|s| ServerSet::from_indices(n, s))
            .collect();
        ExplicitQuorumSystem::new(n, quorums).unwrap()
    }

    #[test]
    fn exact_matches_naive_reference_bit_for_bit_on_small_universes() {
        // Below PARALLEL_MASK_THRESHOLD the engine keeps the historical
        // ascending-mask order, so the sum is identical to the last ulp.
        let eval = Evaluator::new();
        for (n, k) in [(4usize, 3usize), (6, 4), (9, 6), (11, 7)] {
            let sys = k_of_n_system(n, k);
            for &p in &[0.05, 0.125, 0.3, 0.5, 0.77] {
                let engine = eval.exact(&sys, p).unwrap();
                let naive = exact_crash_probability_naive(&sys, p).unwrap();
                assert_eq!(
                    engine.to_bits(),
                    naive.to_bits(),
                    "n={n} k={k} p={p}: {engine} vs {naive}"
                );
            }
        }
    }

    /// A majority-of-n system answering availability by popcount alone, so the
    /// test can afford universes above the parallel threshold (2^17 masks).
    struct CheapMajority {
        n: usize,
    }

    impl QuorumSystem for CheapMajority {
        fn universe_size(&self) -> usize {
            self.n
        }
        fn name(&self) -> String {
            format!("cheap-majority({})", self.n)
        }
        fn sample_quorum(&self, _rng: &mut dyn rand::RngCore) -> ServerSet {
            ServerSet::from_indices(self.n, 0..self.n / 2 + 1)
        }
        fn find_live_quorum(&self, alive: &ServerSet) -> Option<ServerSet> {
            if alive.len() > self.n / 2 {
                Some(ServerSet::from_indices(
                    self.n,
                    alive.iter().take(self.n / 2 + 1),
                ))
            } else {
                None
            }
        }
        fn is_available(&self, alive: &ServerSet) -> bool {
            alive.len() > self.n / 2
        }
        fn min_quorum_size(&self) -> usize {
            self.n / 2 + 1
        }
    }

    #[test]
    fn parallel_enumeration_matches_serial() {
        // n = 19 exceeds the 2^17-mask threshold, forcing the chunked path.
        let sys = CheapMajority { n: 19 };
        let serial = Evaluator::new().with_threads(1);
        let parallel = Evaluator::new().with_threads(4);
        for &p in &[0.1, 0.5] {
            let a = serial.exact(&sys, p).unwrap();
            let b = parallel.exact(&sys, p).unwrap();
            assert!((a - b).abs() < 1e-12, "p={p}: {a} vs {b}");
            let closed = threshold_crash_probability(19, 10, p);
            assert!((a - closed).abs() < 1e-9, "p={p}: {a} vs closed {closed}");
        }
    }

    #[test]
    fn crash_probability_dispatches_to_exact_and_reports_method() {
        let sys = k_of_n_system(5, 3);
        let fp = Evaluator::new().crash_probability(&sys, 0.25);
        assert_eq!(fp.method, FpMethod::Exact);
        assert!(fp.is_exact());
        assert_eq!(fp.ci95_half_width(), 0.0);
        let closed = threshold_crash_probability(5, 3, 0.25);
        assert!((fp.value - closed).abs() < 1e-12);
    }

    #[test]
    fn crash_probability_falls_back_to_monte_carlo() {
        // 30 servers is beyond the exact limit and the explicit system has no
        // closed form, so the engine must sample.
        let quorums: Vec<ServerSet> = (0..4)
            .map(|i| ServerSet::from_indices(30, (0..16).map(|j| (i + j) % 30)))
            .collect();
        let sys = ExplicitQuorumSystem::new(30, quorums).unwrap();
        let eval = Evaluator::new().with_trials(2000).with_seed(11);
        let fp = eval.crash_probability(&sys, 0.3);
        assert_eq!(fp.method, FpMethod::MonteCarlo);
        assert!(!fp.is_exact());
        assert_eq!(fp.trials, Some(2000));
        assert!(fp.std_error.unwrap() > 0.0);
        assert!((0.0..=1.0).contains(&fp.value));
    }

    #[test]
    fn monte_carlo_is_deterministic_across_thread_counts() {
        let sys = k_of_n_system(9, 6);
        let a = Evaluator::new()
            .with_seed(5)
            .with_threads(1)
            .monte_carlo_with(&sys, 0.2, 4096);
        let b = Evaluator::new()
            .with_seed(5)
            .with_threads(4)
            .monte_carlo_with(&sys, 0.2, 4096);
        // The RNG streams are defined by the fixed block partition, not the
        // worker partition: the estimate is a pure function of the seed and
        // trial count, identical for every thread count.
        assert_eq!(a.mean, b.mean);
        let c = Evaluator::new()
            .with_seed(5)
            .with_threads(3)
            .monte_carlo_with(&sys, 0.2, 4096);
        assert_eq!(a.mean, c.mean);
        // And the deterministic value is statistically consistent with exact.
        let exact = Evaluator::new().exact(&sys, 0.2).unwrap();
        for est in [a, b] {
            assert!(
                (est.mean - exact).abs() <= est.ci95_half_width() + 0.03,
                "mc {} vs exact {exact}",
                est.mean
            );
        }
    }

    #[test]
    fn sweep_matches_single_point_evaluation_bit_for_bit() {
        let sys = k_of_n_system(9, 6);
        let mc_sys = {
            // A 30-server explicit system forces the Monte-Carlo path.
            let quorums: Vec<ServerSet> = (0..4)
                .map(|i| ServerSet::from_indices(30, (0..16).map(|j| (i + j) % 30)))
                .collect();
            ExplicitQuorumSystem::new(30, quorums).unwrap()
        };
        let ps = [0.05, 0.125, 0.25, 0.4];
        let eval = Evaluator::new()
            .with_trials(2000)
            .with_seed(23)
            .with_threads(4);
        let serial = eval.clone().with_threads(1);
        let grid = eval.sweep_systems(&[&sys, &mc_sys], &ps);
        assert_eq!(grid.len(), 2);
        for (s, sys) in [(&grid[0], &sys as &dyn QuorumSystem), (&grid[1], &mc_sys)] {
            assert_eq!(s.len(), ps.len());
            for (est, &p) in s.iter().zip(&ps) {
                let direct = serial.crash_probability(sys, p);
                assert_eq!(est.method, direct.method);
                assert_eq!(est.value.to_bits(), direct.value.to_bits(), "p={p}");
            }
        }
        // The single-system convenience wrapper agrees with the grid form.
        let single = eval.sweep(&sys, &ps);
        for (a, b) in single.iter().zip(&grid[0]) {
            assert_eq!(a.value.to_bits(), b.value.to_bits());
        }
    }

    #[test]
    fn sweep_batches_closed_forms_and_tags_methods() {
        struct ClosedFormCounting;
        impl QuorumSystem for ClosedFormCounting {
            fn universe_size(&self) -> usize {
                100
            }
            fn name(&self) -> String {
                "closed-form-batch".into()
            }
            fn sample_quorum(&self, _rng: &mut dyn rand::RngCore) -> ServerSet {
                ServerSet::full(100)
            }
            fn find_live_quorum(&self, _alive: &ServerSet) -> Option<ServerSet> {
                unreachable!("the engine must not probe availability")
            }
            fn crash_probability_closed_form(&self, p: f64) -> Option<f64> {
                Some(p * p)
            }
            fn min_quorum_size(&self) -> usize {
                100
            }
        }
        let ps = [0.1, 0.3, 0.5];
        let eval = Evaluator::new();
        let grid = eval.sweep(&ClosedFormCounting, &ps);
        assert_eq!(grid.len(), 3);
        for (est, &p) in grid.iter().zip(&ps) {
            assert_eq!(est.method, FpMethod::ClosedForm);
            let direct = eval.crash_probability(&ClosedFormCounting, p);
            assert_eq!(est.value.to_bits(), direct.value.to_bits());
        }
        // A mixed grid: closed-form system batches, explicit system falls
        // through to per-point jobs — row order must be preserved.
        let explicit = k_of_n_system(5, 3);
        let rows = eval.sweep_systems(&[&ClosedFormCounting, &explicit], &ps);
        assert_eq!(rows[0][0].method, FpMethod::ClosedForm);
        assert_eq!(rows[1][0].method, FpMethod::Exact);
        for (est, &p) in rows[1].iter().zip(&ps) {
            let direct = eval.clone().with_threads(1).crash_probability(&explicit, p);
            assert_eq!(est.value.to_bits(), direct.value.to_bits());
        }
    }

    #[test]
    fn sweep_handles_empty_and_single_point_inputs() {
        let sys = k_of_n_system(5, 3);
        assert!(Evaluator::new().sweep(&sys, &[]).is_empty());
        let one = Evaluator::new().sweep(&sys, &[0.2]);
        assert_eq!(one.len(), 1);
        assert!(one[0].is_exact());
        let none: Vec<Vec<FpEstimate>> = Evaluator::new().sweep_systems(&[], &[0.1, 0.2]);
        assert!(none.is_empty());
    }

    #[test]
    fn monte_carlo_zero_hits_reports_wilson_upper_bound() {
        // A majority-of-30 system at p = 0.05 essentially never fails in 2000
        // trials (F_p ~ 1e-12): the estimate must still carry a usable upper
        // bound.
        let sys = CheapMajority { n: 30 };
        let fp = Evaluator::new()
            .with_trials(2000)
            .with_seed(3)
            .crash_probability(&sys, 0.05);
        assert_eq!(fp.method, FpMethod::MonteCarlo);
        assert_eq!(fp.value, 0.0);
        let (lower, upper) = fp.ci95_bounds();
        assert_eq!(lower, 0.0);
        assert!(upper > 0.0 && upper < 0.003, "upper={upper}");
        assert_eq!(fp.ci95_upper_bound(), upper);
        // Consistent with tiny positive truths, not with large ones.
        assert!(fp.is_consistent_with(1e-6));
        assert!(!fp.is_consistent_with(0.05));
    }

    #[test]
    fn closed_form_short_circuits_enumeration() {
        struct ClosedFormOnly;
        impl QuorumSystem for ClosedFormOnly {
            fn universe_size(&self) -> usize {
                100 // far beyond any exact limit
            }
            fn name(&self) -> String {
                "closed-form-only".into()
            }
            fn sample_quorum(&self, _rng: &mut dyn rand::RngCore) -> ServerSet {
                ServerSet::full(100)
            }
            fn find_live_quorum(&self, _alive: &ServerSet) -> Option<ServerSet> {
                unreachable!("the engine must not probe availability")
            }
            fn crash_probability_closed_form(&self, p: f64) -> Option<f64> {
                Some(p * p)
            }
            fn min_quorum_size(&self) -> usize {
                100
            }
        }
        let fp = Evaluator::new().crash_probability(&ClosedFormOnly, 0.25);
        assert_eq!(fp.method, FpMethod::ClosedForm);
        assert!((fp.value - 0.0625).abs() < 1e-15);
    }

    #[test]
    fn exact_limit_is_enforced_and_configurable() {
        let sys = k_of_n_system(10, 6);
        let strict = Evaluator::new().with_exact_limit(8);
        assert!(matches!(
            strict.exact(&sys, 0.1),
            Err(QuorumError::UniverseTooLarge { limit: 8, .. })
        ));
        assert!(strict.crash_probability(&sys, 0.1).method == FpMethod::MonteCarlo);
        let relaxed = Evaluator::new().with_exact_limit(12);
        assert!(relaxed.exact(&sys, 0.1).is_ok());
    }
}
