//! Access strategies (Definition 3.8).
//!
//! An access strategy `w` is a probability distribution over the quorums of a system:
//! `w(Q)` is the frequency with which quorum `Q` is chosen when the replicated
//! service is accessed. The *load induced on a server* is the total probability of
//! the quorums containing it, and the system load `L(Q)` is the induced maximum load
//! under the best possible strategy.

use rand::Rng;

use crate::bitset::ServerSet;
use crate::error::QuorumError;

/// A probability distribution over the quorums of an explicit quorum system.
#[derive(Debug, Clone, PartialEq)]
pub struct AccessStrategy {
    weights: Vec<f64>,
}

const WEIGHT_TOLERANCE: f64 = 1e-6;

impl AccessStrategy {
    /// Creates a strategy from explicit per-quorum weights.
    ///
    /// # Errors
    ///
    /// Returns [`QuorumError::InvalidStrategy`] if the weights are empty, any weight
    /// is negative, or they do not sum to 1 (within a small tolerance).
    pub fn new(weights: Vec<f64>) -> Result<Self, QuorumError> {
        if weights.is_empty() {
            return Err(QuorumError::InvalidStrategy(
                "strategy must assign weight to at least one quorum".into(),
            ));
        }
        if weights.iter().any(|&w| w < -1e-12 || !w.is_finite()) {
            return Err(QuorumError::InvalidStrategy(
                "weights must be finite and non-negative".into(),
            ));
        }
        let total: f64 = weights.iter().sum();
        if (total - 1.0).abs() > WEIGHT_TOLERANCE {
            return Err(QuorumError::InvalidStrategy(format!(
                "weights sum to {total}, expected 1"
            )));
        }
        Ok(AccessStrategy { weights })
    }

    /// Creates a strategy from non-negative weights that need not sum to 1,
    /// normalising them first — the shared post-processing of both exact load
    /// solvers (`optimal_load` renormalises simplex output against floating-
    /// point drift; `optimal_load_oracle` scales a packing solution down to a
    /// distribution).
    ///
    /// # Errors
    ///
    /// Returns [`QuorumError::InvalidStrategy`] if the weights are empty,
    /// negative, non-finite, or sum to zero.
    pub fn normalized(mut weights: Vec<f64>) -> Result<Self, QuorumError> {
        if weights.iter().any(|&w| w < -1e-12 || !w.is_finite()) {
            return Err(QuorumError::InvalidStrategy(
                "weights must be finite and non-negative".into(),
            ));
        }
        let total: f64 = weights.iter().sum();
        if total <= 0.0 {
            return Err(QuorumError::InvalidStrategy(
                "weights must have positive total mass".into(),
            ));
        }
        for w in &mut weights {
            *w = w.max(0.0) / total;
        }
        AccessStrategy::new(weights)
    }

    /// The uniform strategy over `m` quorums.
    ///
    /// # Panics
    ///
    /// Panics if `m == 0`.
    #[must_use]
    pub fn uniform(m: usize) -> Self {
        assert!(m > 0, "cannot build a strategy over zero quorums");
        AccessStrategy {
            weights: vec![1.0 / m as f64; m],
        }
    }

    /// Number of quorums the strategy ranges over.
    #[must_use]
    pub fn len(&self) -> usize {
        self.weights.len()
    }

    /// Returns true if the strategy covers no quorums (never the case for valid
    /// strategies; present for API completeness).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.weights.is_empty()
    }

    /// The weight assigned to quorum `i`.
    #[must_use]
    pub fn weight(&self, i: usize) -> f64 {
        self.weights[i]
    }

    /// All weights, indexed like the quorum list they were built for.
    #[must_use]
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// Samples a quorum index according to the strategy.
    pub fn sample_index<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let x: f64 = rng.gen();
        let mut acc = 0.0;
        for (i, &w) in self.weights.iter().enumerate() {
            acc += w;
            if x < acc {
                return i;
            }
        }
        self.weights.len() - 1
    }

    /// The load induced by this strategy on each server of the universe
    /// (`l_w(u) = Σ_{Q ∋ u} w(Q)`, Definition 3.8).
    ///
    /// # Panics
    ///
    /// Panics if `quorums.len()` differs from the strategy length.
    #[must_use]
    pub fn induced_loads(&self, quorums: &[ServerSet], universe_size: usize) -> Vec<f64> {
        assert_eq!(
            quorums.len(),
            self.weights.len(),
            "strategy covers {} quorums but {} were given",
            self.weights.len(),
            quorums.len()
        );
        let mut loads = vec![0.0; universe_size];
        for (q, &w) in quorums.iter().zip(&self.weights) {
            for u in q.iter() {
                loads[u] += w;
            }
        }
        loads
    }

    /// The load induced on the busiest server, `L_w(Q) = max_u l_w(u)`.
    #[must_use]
    pub fn induced_system_load(&self, quorums: &[ServerSet], universe_size: usize) -> f64 {
        self.induced_loads(quorums, universe_size)
            .into_iter()
            .fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn majority3() -> Vec<ServerSet> {
        vec![
            ServerSet::from_indices(3, [0, 1]),
            ServerSet::from_indices(3, [0, 2]),
            ServerSet::from_indices(3, [1, 2]),
        ]
    }

    #[test]
    fn uniform_strategy_weights() {
        let s = AccessStrategy::uniform(4);
        assert_eq!(s.len(), 4);
        for i in 0..4 {
            assert!((s.weight(i) - 0.25).abs() < 1e-12);
        }
    }

    #[test]
    fn invalid_strategies_rejected() {
        assert!(AccessStrategy::new(vec![]).is_err());
        assert!(AccessStrategy::new(vec![0.5, 0.6]).is_err());
        assert!(AccessStrategy::new(vec![-0.1, 1.1]).is_err());
        assert!(AccessStrategy::new(vec![f64::NAN, 1.0]).is_err());
        assert!(AccessStrategy::new(vec![0.25, 0.75]).is_ok());
    }

    #[test]
    fn normalized_rescales_and_validates() {
        let s = AccessStrategy::normalized(vec![1.0, 3.0]).unwrap();
        assert!((s.weight(0) - 0.25).abs() < 1e-12);
        assert!((s.weight(1) - 0.75).abs() < 1e-12);
        assert!(AccessStrategy::normalized(vec![]).is_err());
        assert!(AccessStrategy::normalized(vec![0.0, 0.0]).is_err());
        assert!(AccessStrategy::normalized(vec![-0.5, 1.0]).is_err());
        assert!(AccessStrategy::normalized(vec![f64::INFINITY]).is_err());
    }

    #[test]
    fn induced_loads_majority() {
        // Uniform strategy on the 3-majority system loads each server 2/3.
        let s = AccessStrategy::uniform(3);
        let loads = s.induced_loads(&majority3(), 3);
        for l in loads {
            assert!((l - 2.0 / 3.0).abs() < 1e-12);
        }
        assert!((s.induced_system_load(&majority3(), 3) - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn skewed_strategy_loads() {
        // All weight on the first quorum {0,1}: servers 0,1 have load 1, server 2 has 0.
        let s = AccessStrategy::new(vec![1.0, 0.0, 0.0]).unwrap();
        let loads = s.induced_loads(&majority3(), 3);
        assert_eq!(loads, vec![1.0, 1.0, 0.0]);
        assert_eq!(s.induced_system_load(&majority3(), 3), 1.0);
    }

    #[test]
    fn sampling_respects_weights() {
        let s = AccessStrategy::new(vec![0.8, 0.2]).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        let mut counts = [0usize; 2];
        for _ in 0..5000 {
            counts[s.sample_index(&mut rng)] += 1;
        }
        let frac0 = counts[0] as f64 / 5000.0;
        assert!((frac0 - 0.8).abs() < 0.05, "frac0={frac0}");
    }

    #[test]
    #[should_panic(expected = "strategy covers")]
    fn induced_loads_length_mismatch_panics() {
        let s = AccessStrategy::uniform(2);
        let _ = s.induced_loads(&majority3(), 3);
    }

    #[test]
    #[should_panic(expected = "zero quorums")]
    fn uniform_zero_panics() {
        let _ = AccessStrategy::uniform(0);
    }
}
