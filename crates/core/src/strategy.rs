//! Access strategies (Definition 3.8).
//!
//! An access strategy `w` is a probability distribution over the quorums of a system:
//! `w(Q)` is the frequency with which quorum `Q` is chosen when the replicated
//! service is accessed. The *load induced on a server* is the total probability of
//! the quorums containing it, and the system load `L(Q)` is the induced maximum load
//! under the best possible strategy.

use rand::Rng;

use crate::bitset::ServerSet;
use crate::error::QuorumError;

/// A probability distribution over the quorums of an explicit quorum system.
///
/// Construction precompiles a Vose alias table, so [`AccessStrategy::sample_index`]
/// is O(1) regardless of how many quorums the strategy ranges over — the hot
/// path of every strategy-driven client, from the single-threaded simulator to
/// the concurrent `bqs-service` load generator.
#[derive(Debug, Clone)]
pub struct AccessStrategy {
    weights: Vec<f64>,
    /// Vose alias table: bucket `i` yields `i` with probability `prob[i]` and
    /// `alias[i]` otherwise. Derived from `weights`; never compared or exposed.
    prob: Vec<f64>,
    alias: Vec<u32>,
}

impl PartialEq for AccessStrategy {
    fn eq(&self, other: &Self) -> bool {
        // The alias table is a deterministic function of the weights; equality
        // of the distribution is equality of the weights.
        self.weights == other.weights
    }
}

const WEIGHT_TOLERANCE: f64 = 1e-6;

/// Builds the Vose alias table for a normalised weight vector: buckets with
/// below-average mass borrow the remainder from an above-average donor, so a
/// single uniform draw (bucket + biased coin) samples the exact distribution.
fn build_alias_table(weights: &[f64]) -> (Vec<f64>, Vec<u32>) {
    let m = weights.len();
    assert!(
        u32::try_from(m).is_ok(),
        "alias table limited to 2^32 quorums"
    );
    let total: f64 = weights.iter().sum();
    let mut scaled: Vec<f64> = weights
        .iter()
        .map(|&w| w.max(0.0) * m as f64 / total)
        .collect();
    let mut prob = vec![1.0f64; m];
    let mut alias: Vec<u32> = (0..m as u32).collect();
    let mut small: Vec<u32> = Vec::new();
    let mut large: Vec<u32> = Vec::new();
    for (i, &s) in scaled.iter().enumerate() {
        if s < 1.0 {
            small.push(i as u32);
        } else {
            large.push(i as u32);
        }
    }
    while let (Some(s), Some(l)) = (small.pop(), large.pop()) {
        prob[s as usize] = scaled[s as usize];
        alias[s as usize] = l;
        // Donate the complement of bucket `s` from donor `l`.
        scaled[l as usize] = (scaled[l as usize] + scaled[s as usize]) - 1.0;
        if scaled[l as usize] < 1.0 {
            small.push(l);
        } else {
            large.push(l);
        }
    }
    // Leftovers (numerical residue near 1.0) keep prob = 1, alias = self.
    (prob, alias)
}

impl AccessStrategy {
    /// Creates a strategy from explicit per-quorum weights.
    ///
    /// # Errors
    ///
    /// Returns [`QuorumError::InvalidStrategy`] if the weights are empty, any weight
    /// is negative, or they do not sum to 1 (within a small tolerance).
    pub fn new(weights: Vec<f64>) -> Result<Self, QuorumError> {
        if weights.is_empty() {
            return Err(QuorumError::InvalidStrategy(
                "strategy must assign weight to at least one quorum".into(),
            ));
        }
        if weights.iter().any(|&w| w < -1e-12 || !w.is_finite()) {
            return Err(QuorumError::InvalidStrategy(
                "weights must be finite and non-negative".into(),
            ));
        }
        let total: f64 = weights.iter().sum();
        if (total - 1.0).abs() > WEIGHT_TOLERANCE {
            return Err(QuorumError::InvalidStrategy(format!(
                "weights sum to {total}, expected 1"
            )));
        }
        let (prob, alias) = build_alias_table(&weights);
        Ok(AccessStrategy {
            weights,
            prob,
            alias,
        })
    }

    /// Creates a strategy from non-negative weights that need not sum to 1,
    /// normalising them first — the shared post-processing of both exact load
    /// solvers (`optimal_load` renormalises simplex output against floating-
    /// point drift; `optimal_load_oracle` scales a packing solution down to a
    /// distribution).
    ///
    /// # Errors
    ///
    /// Returns [`QuorumError::InvalidStrategy`] if the weights are empty,
    /// negative, non-finite, or sum to zero.
    pub fn normalized(mut weights: Vec<f64>) -> Result<Self, QuorumError> {
        if weights.iter().any(|&w| w < -1e-12 || !w.is_finite()) {
            return Err(QuorumError::InvalidStrategy(
                "weights must be finite and non-negative".into(),
            ));
        }
        let total: f64 = weights.iter().sum();
        if total <= 0.0 {
            return Err(QuorumError::InvalidStrategy(
                "weights must have positive total mass".into(),
            ));
        }
        for w in &mut weights {
            *w = w.max(0.0) / total;
        }
        AccessStrategy::new(weights)
    }

    /// The uniform strategy over `m` quorums.
    ///
    /// # Errors
    ///
    /// Returns [`QuorumError::InvalidStrategy`] when `m == 0` — a strategy must
    /// assign weight to at least one quorum.
    pub fn uniform(m: usize) -> Result<Self, QuorumError> {
        if m == 0 {
            return Err(QuorumError::InvalidStrategy(
                "cannot build a strategy over zero quorums".into(),
            ));
        }
        AccessStrategy::new(vec![1.0 / m as f64; m])
    }

    /// Number of quorums the strategy ranges over.
    #[must_use]
    pub fn len(&self) -> usize {
        self.weights.len()
    }

    /// Returns true if the strategy covers no quorums (never the case for valid
    /// strategies; present for API completeness).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.weights.is_empty()
    }

    /// The weight assigned to quorum `i`.
    #[must_use]
    pub fn weight(&self, i: usize) -> f64 {
        self.weights[i]
    }

    /// All weights, indexed like the quorum list they were built for.
    #[must_use]
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// Samples a quorum index according to the strategy, in O(1) via the
    /// precompiled alias table: one uniform draw selects both the bucket and
    /// the biased coin deciding between the bucket and its alias.
    pub fn sample_index<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let m = self.prob.len();
        let x: f64 = rng.gen();
        let scaled = x * m as f64;
        let i = (scaled as usize).min(m - 1);
        let coin = scaled - i as f64;
        if coin < self.prob[i] {
            i
        } else {
            self.alias[i] as usize
        }
    }

    /// The load induced by this strategy on each server of the universe
    /// (`l_w(u) = Σ_{Q ∋ u} w(Q)`, Definition 3.8).
    ///
    /// # Panics
    ///
    /// Panics if `quorums.len()` differs from the strategy length.
    #[must_use]
    pub fn induced_loads(&self, quorums: &[ServerSet], universe_size: usize) -> Vec<f64> {
        assert_eq!(
            quorums.len(),
            self.weights.len(),
            "strategy covers {} quorums but {} were given",
            self.weights.len(),
            quorums.len()
        );
        let mut loads = vec![0.0; universe_size];
        for (q, &w) in quorums.iter().zip(&self.weights) {
            for u in q.iter() {
                loads[u] += w;
            }
        }
        loads
    }

    /// The load induced on the busiest server, `L_w(Q) = max_u l_w(u)`.
    #[must_use]
    pub fn induced_system_load(&self, quorums: &[ServerSet], universe_size: usize) -> f64 {
        self.induced_loads(quorums, universe_size)
            .into_iter()
            .fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn majority3() -> Vec<ServerSet> {
        vec![
            ServerSet::from_indices(3, [0, 1]),
            ServerSet::from_indices(3, [0, 2]),
            ServerSet::from_indices(3, [1, 2]),
        ]
    }

    #[test]
    fn uniform_strategy_weights() {
        let s = AccessStrategy::uniform(4).unwrap();
        assert_eq!(s.len(), 4);
        for i in 0..4 {
            assert!((s.weight(i) - 0.25).abs() < 1e-12);
        }
    }

    #[test]
    fn invalid_strategies_rejected() {
        assert!(AccessStrategy::new(vec![]).is_err());
        assert!(AccessStrategy::new(vec![0.5, 0.6]).is_err());
        assert!(AccessStrategy::new(vec![-0.1, 1.1]).is_err());
        assert!(AccessStrategy::new(vec![f64::NAN, 1.0]).is_err());
        assert!(AccessStrategy::new(vec![0.25, 0.75]).is_ok());
    }

    #[test]
    fn normalized_rescales_and_validates() {
        let s = AccessStrategy::normalized(vec![1.0, 3.0]).unwrap();
        assert!((s.weight(0) - 0.25).abs() < 1e-12);
        assert!((s.weight(1) - 0.75).abs() < 1e-12);
        assert!(AccessStrategy::normalized(vec![]).is_err());
        assert!(AccessStrategy::normalized(vec![0.0, 0.0]).is_err());
        assert!(AccessStrategy::normalized(vec![-0.5, 1.0]).is_err());
        assert!(AccessStrategy::normalized(vec![f64::INFINITY]).is_err());
    }

    #[test]
    fn induced_loads_majority() {
        // Uniform strategy on the 3-majority system loads each server 2/3.
        let s = AccessStrategy::uniform(3).unwrap();
        let loads = s.induced_loads(&majority3(), 3);
        for l in loads {
            assert!((l - 2.0 / 3.0).abs() < 1e-12);
        }
        assert!((s.induced_system_load(&majority3(), 3) - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn skewed_strategy_loads() {
        // All weight on the first quorum {0,1}: servers 0,1 have load 1, server 2 has 0.
        let s = AccessStrategy::new(vec![1.0, 0.0, 0.0]).unwrap();
        let loads = s.induced_loads(&majority3(), 3);
        assert_eq!(loads, vec![1.0, 1.0, 0.0]);
        assert_eq!(s.induced_system_load(&majority3(), 3), 1.0);
    }

    #[test]
    fn sampling_respects_weights() {
        let s = AccessStrategy::new(vec![0.8, 0.2]).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        let mut counts = [0usize; 2];
        for _ in 0..5000 {
            counts[s.sample_index(&mut rng)] += 1;
        }
        let frac0 = counts[0] as f64 / 5000.0;
        assert!((frac0 - 0.8).abs() < 0.05, "frac0={frac0}");
    }

    #[test]
    #[should_panic(expected = "strategy covers")]
    fn induced_loads_length_mismatch_panics() {
        let s = AccessStrategy::uniform(2).unwrap();
        let _ = s.induced_loads(&majority3(), 3);
    }

    #[test]
    fn uniform_zero_is_an_error_not_a_panic() {
        assert!(matches!(
            AccessStrategy::uniform(0),
            Err(QuorumError::InvalidStrategy(_))
        ));
    }

    #[test]
    fn alias_table_never_samples_zero_weight_quorums() {
        let s = AccessStrategy::new(vec![0.5, 0.0, 0.5, 0.0]).unwrap();
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..10_000 {
            let i = s.sample_index(&mut rng);
            assert!(i == 0 || i == 2, "sampled zero-weight index {i}");
        }
    }

    #[test]
    fn alias_table_single_quorum_always_sampled() {
        let s = AccessStrategy::new(vec![1.0]).unwrap();
        let mut rng = StdRng::seed_from_u64(12);
        for _ in 0..100 {
            assert_eq!(s.sample_index(&mut rng), 0);
        }
    }

    #[test]
    fn alias_table_frequencies_match_weights_property() {
        // Frequency property test over many random weight vectors: the O(1)
        // alias sampler must reproduce each weight to within 5 binomial
        // standard deviations (plus a floor for near-zero weights).
        const SAMPLES: usize = 40_000;
        for case in 0u64..25 {
            let mut gen_rng = StdRng::seed_from_u64(0xa11a5 ^ case);
            let m = 1 + (gen_rng.gen::<u64>() % 16) as usize;
            let raw: Vec<f64> = (0..m)
                .map(|_| {
                    // Mix magnitudes, including exact zeros, to stress the
                    // small/large bucket pairing.
                    let x: f64 = gen_rng.gen();
                    if x < 0.2 {
                        0.0
                    } else {
                        x * x
                    }
                })
                .collect();
            if raw.iter().sum::<f64>() <= 0.0 {
                continue;
            }
            let s = AccessStrategy::normalized(raw).unwrap();
            let mut counts = vec![0usize; m];
            let mut rng = StdRng::seed_from_u64(0x5eed ^ case);
            for _ in 0..SAMPLES {
                counts[s.sample_index(&mut rng)] += 1;
            }
            for (i, &count) in counts.iter().enumerate() {
                let w = s.weight(i);
                let freq = count as f64 / SAMPLES as f64;
                let sigma = (w * (1.0 - w) / SAMPLES as f64).sqrt();
                assert!(
                    (freq - w).abs() <= 5.0 * sigma + 1e-9,
                    "case {case}: index {i} weight {w} sampled at {freq} (sigma {sigma})"
                );
            }
        }
    }
}
