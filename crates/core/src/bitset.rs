//! Compact server sets.
//!
//! Quorums, transversals, crash configurations and masking checks all manipulate
//! subsets of the universe `U = {0, 1, ..., n-1}`. [`ServerSet`] is a small dynamic
//! bitset tailored to those operations: constant-time membership, popcount-based
//! cardinality and intersection size, and subset tests — the hot operations in
//! measure computation and protocol simulation.

use std::fmt;

/// A subset of the universe of servers `{0, ..., capacity-1}`, stored as a bitset.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct ServerSet {
    capacity: usize,
    words: Vec<u64>,
}

impl fmt::Debug for ServerSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

impl fmt::Display for ServerSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, v) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, "}}")
    }
}

impl ServerSet {
    /// Creates an empty set over a universe of `capacity` servers.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        ServerSet {
            capacity,
            words: vec![0; capacity.div_ceil(64)],
        }
    }

    /// Creates the full universe `{0, ..., capacity-1}`.
    #[must_use]
    pub fn full(capacity: usize) -> Self {
        let mut s = ServerSet::new(capacity);
        for i in 0..capacity {
            s.insert(i);
        }
        s
    }

    /// Creates a set from an iterator of server indices.
    ///
    /// # Panics
    ///
    /// Panics if any index is `>= capacity`.
    #[must_use]
    pub fn from_indices<I: IntoIterator<Item = usize>>(capacity: usize, indices: I) -> Self {
        let mut s = ServerSet::new(capacity);
        for i in indices {
            s.insert(i);
        }
        s
    }

    /// Creates a set from an iterator of server indices, reporting the first
    /// out-of-universe index instead of panicking.
    ///
    /// # Errors
    ///
    /// Returns the offending index when any index is `>= capacity`.
    pub fn try_from_indices<I: IntoIterator<Item = usize>>(
        capacity: usize,
        indices: I,
    ) -> Result<Self, usize> {
        let mut s = ServerSet::new(capacity);
        for i in indices {
            if i >= capacity {
                return Err(i);
            }
            s.insert(i);
        }
        Ok(s)
    }

    /// The size of the universe this set ranges over.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of servers in the set.
    #[must_use]
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Returns true if the set is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Adds server `i` to the set.
    ///
    /// # Panics
    ///
    /// Panics if `i >= capacity`.
    pub fn insert(&mut self, i: usize) {
        assert!(i < self.capacity, "server index {i} out of range");
        self.words[i / 64] |= 1u64 << (i % 64);
    }

    /// Removes server `i` from the set.
    ///
    /// # Panics
    ///
    /// Panics if `i >= capacity`.
    pub fn remove(&mut self, i: usize) {
        assert!(i < self.capacity, "server index {i} out of range");
        self.words[i / 64] &= !(1u64 << (i % 64));
    }

    /// Returns true if server `i` is in the set.
    #[must_use]
    pub fn contains(&self, i: usize) -> bool {
        if i >= self.capacity {
            return false;
        }
        self.words[i / 64] & (1u64 << (i % 64)) != 0
    }

    /// Iterates over the members in increasing order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            let mut bits = w;
            std::iter::from_fn(move || {
                if bits == 0 {
                    None
                } else {
                    let tz = bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    Some(wi * 64 + tz)
                }
            })
        })
    }

    /// Size of the intersection with `other`.
    ///
    /// # Panics
    ///
    /// Panics if the capacities differ.
    #[must_use]
    pub fn intersection_size(&self, other: &ServerSet) -> usize {
        assert_eq!(self.capacity, other.capacity, "capacity mismatch");
        self.words
            .iter()
            .zip(&other.words)
            .map(|(a, b)| (a & b).count_ones() as usize)
            .sum()
    }

    /// Returns the intersection with `other`.
    #[must_use]
    pub fn intersection(&self, other: &ServerSet) -> ServerSet {
        assert_eq!(self.capacity, other.capacity, "capacity mismatch");
        ServerSet {
            capacity: self.capacity,
            words: self
                .words
                .iter()
                .zip(&other.words)
                .map(|(a, b)| a & b)
                .collect(),
        }
    }

    /// Returns the union with `other`.
    #[must_use]
    pub fn union(&self, other: &ServerSet) -> ServerSet {
        assert_eq!(self.capacity, other.capacity, "capacity mismatch");
        ServerSet {
            capacity: self.capacity,
            words: self
                .words
                .iter()
                .zip(&other.words)
                .map(|(a, b)| a | b)
                .collect(),
        }
    }

    /// Returns the set difference `self \ other`.
    #[must_use]
    pub fn difference(&self, other: &ServerSet) -> ServerSet {
        assert_eq!(self.capacity, other.capacity, "capacity mismatch");
        ServerSet {
            capacity: self.capacity,
            words: self
                .words
                .iter()
                .zip(&other.words)
                .map(|(a, b)| a & !b)
                .collect(),
        }
    }

    /// Returns the complement within the universe.
    #[must_use]
    pub fn complement(&self) -> ServerSet {
        let mut words: Vec<u64> = self.words.iter().map(|w| !w).collect();
        // Mask off bits beyond the capacity.
        let excess = self.words.len() * 64 - self.capacity;
        if excess > 0 {
            if let Some(last) = words.last_mut() {
                *last &= u64::MAX >> excess;
            }
        }
        ServerSet {
            capacity: self.capacity,
            words,
        }
    }

    /// Returns true if `self` is a subset of `other`.
    #[must_use]
    pub fn is_subset_of(&self, other: &ServerSet) -> bool {
        assert_eq!(self.capacity, other.capacity, "capacity mismatch");
        self.words
            .iter()
            .zip(&other.words)
            .all(|(a, b)| a & !b == 0)
    }

    /// Returns true if the two sets share no members.
    #[must_use]
    pub fn is_disjoint_from(&self, other: &ServerSet) -> bool {
        self.intersection_size(other) == 0
    }

    /// Returns the members as a sorted vector of indices.
    #[must_use]
    pub fn to_vec(&self) -> Vec<usize> {
        self.iter().collect()
    }

    /// Removes every member, keeping the capacity (and allocation).
    pub fn clear(&mut self) {
        for w in &mut self.words {
            *w = 0;
        }
    }

    /// Overwrites the set with the bits of `mask` — the allocation-free hot
    /// path of the evaluation engine, which enumerates crash configurations
    /// as raw `u64` masks and reuses one scratch `ServerSet`.
    ///
    /// # Panics
    ///
    /// Panics if the capacity exceeds 64 or if `mask` has bits at positions
    /// `>= capacity`.
    pub fn assign_mask_u64(&mut self, mask: u64) {
        assert!(
            self.capacity <= 64,
            "assign_mask_u64 requires capacity <= 64 (got {})",
            self.capacity
        );
        let valid = if self.capacity == 64 {
            u64::MAX
        } else {
            (1u64 << self.capacity) - 1
        };
        assert!(
            mask & !valid == 0,
            "mask has bits beyond the capacity {}",
            self.capacity
        );
        if let Some(w) = self.words.first_mut() {
            *w = mask;
        }
    }

    /// The set as a single `u64` mask. Only valid for capacities up to 64.
    ///
    /// # Panics
    ///
    /// Panics if the capacity exceeds 64.
    #[must_use]
    pub fn as_mask_u64(&self) -> u64 {
        assert!(
            self.capacity <= 64,
            "as_mask_u64 requires capacity <= 64 (got {})",
            self.capacity
        );
        self.words.first().copied().unwrap_or(0)
    }
}

impl FromIterator<usize> for ServerSet {
    /// Builds a set whose capacity is one more than the largest index (or 0 when
    /// empty). When the universe size is known, prefer [`ServerSet::from_indices`].
    fn from_iter<I: IntoIterator<Item = usize>>(iter: I) -> Self {
        let indices: Vec<usize> = iter.into_iter().collect();
        let capacity = indices.iter().max().map_or(0, |m| m + 1);
        ServerSet::from_indices(capacity, indices)
    }
}

impl Extend<usize> for ServerSet {
    fn extend<I: IntoIterator<Item = usize>>(&mut self, iter: I) {
        for i in iter {
            self.insert(i);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_contains_remove() {
        let mut s = ServerSet::new(100);
        assert!(s.is_empty());
        s.insert(0);
        s.insert(63);
        s.insert(64);
        s.insert(99);
        assert_eq!(s.len(), 4);
        assert!(s.contains(0) && s.contains(63) && s.contains(64) && s.contains(99));
        assert!(!s.contains(1));
        assert!(!s.contains(200));
        s.remove(63);
        assert!(!s.contains(63));
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn iter_is_sorted_and_complete() {
        let s = ServerSet::from_indices(130, [5, 127, 0, 64, 65]);
        assert_eq!(s.to_vec(), vec![0, 5, 64, 65, 127]);
    }

    #[test]
    fn set_algebra() {
        let a = ServerSet::from_indices(10, [1, 2, 3, 4]);
        let b = ServerSet::from_indices(10, [3, 4, 5, 6]);
        assert_eq!(a.intersection_size(&b), 2);
        assert_eq!(a.intersection(&b).to_vec(), vec![3, 4]);
        assert_eq!(a.union(&b).to_vec(), vec![1, 2, 3, 4, 5, 6]);
        assert_eq!(a.difference(&b).to_vec(), vec![1, 2]);
        assert!(!a.is_disjoint_from(&b));
        assert!(a.difference(&b).is_disjoint_from(&b));
    }

    #[test]
    fn subset_and_complement() {
        let a = ServerSet::from_indices(70, [10, 20, 69]);
        let b = ServerSet::from_indices(70, [10, 20, 30, 69]);
        assert!(a.is_subset_of(&b));
        assert!(!b.is_subset_of(&a));
        let comp = a.complement();
        assert_eq!(comp.len(), 67);
        assert!(comp.is_disjoint_from(&a));
        assert_eq!(comp.union(&a).len(), 70);
    }

    #[test]
    fn full_universe() {
        let f = ServerSet::full(65);
        assert_eq!(f.len(), 65);
        assert!(f.contains(64));
        assert!(f.complement().is_empty());
    }

    #[test]
    fn from_iterator_and_extend() {
        let s: ServerSet = [3usize, 7, 2].into_iter().collect();
        assert_eq!(s.capacity(), 8);
        assert_eq!(s.to_vec(), vec![2, 3, 7]);
        let mut t = ServerSet::new(10);
        t.extend([1, 2, 3]);
        assert_eq!(t.len(), 3);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn insert_out_of_range_panics() {
        let mut s = ServerSet::new(4);
        s.insert(4);
    }

    #[test]
    #[should_panic(expected = "capacity mismatch")]
    fn capacity_mismatch_panics() {
        let a = ServerSet::new(4);
        let b = ServerSet::new(5);
        let _ = a.intersection_size(&b);
    }

    #[test]
    fn display_and_debug() {
        let s = ServerSet::from_indices(5, [1, 3]);
        assert_eq!(format!("{s}"), "{1, 3}");
        assert_eq!(format!("{s:?}"), "{1, 3}");
        let empty = ServerSet::new(5);
        assert_eq!(format!("{empty}"), "{}");
    }
}
