//! Quorum-system composition (Definition 4.6, Theorem 4.7).
//!
//! Composing `S` over `R` replaces every server of `S` by an independent copy of `R`;
//! a composed quorum picks a quorum of `S` and, for each of its servers, a quorum of
//! the corresponding copy of `R`. Theorem 4.7 shows the key parameters multiply:
//! `n`, `c`, `IS`, `MT` and the load are all products, and the crash probability
//! composes as `F_p(S ∘ R) = s(r(p))`.
//!
//! This is the "boosting" technique of the paper: composing a regular system over a
//! b-masking threshold turns it into a (much larger) b-masking system, which is how
//! the boostFPP construction of Section 6 is obtained.
//!
//! Two forms are provided:
//!
//! * [`ComposedSystem`] — a lazy composition of any two [`QuorumSystem`]s. Quorums are
//!   sampled and located structurally, so the composition scales to systems whose
//!   explicit quorum lists would be astronomically large.
//! * [`compose_explicit`] — materialises the composed quorum list for small systems,
//!   used by tests to verify Theorem 4.7 exactly.

use rand::RngCore;

use crate::bitset::ServerSet;
use crate::error::QuorumError;
use crate::quorum::{ExplicitQuorumSystem, QuorumSystem};

/// The composition `S ∘ R` of two quorum systems, evaluated lazily.
///
/// The universe is laid out copy-major: the `i`-th copy of `R` (for server `i` of
/// `S`) occupies global indices `[i · n_R, (i+1) · n_R)`.
#[derive(Debug, Clone)]
pub struct ComposedSystem<S, R> {
    outer: S,
    inner: R,
}

impl<S: QuorumSystem, R: QuorumSystem> ComposedSystem<S, R> {
    /// Composes `outer ∘ inner`.
    #[must_use]
    pub fn new(outer: S, inner: R) -> Self {
        ComposedSystem { outer, inner }
    }

    /// The outer system `S`.
    #[must_use]
    pub fn outer(&self) -> &S {
        &self.outer
    }

    /// The inner system `R`.
    #[must_use]
    pub fn inner(&self) -> &R {
        &self.inner
    }

    /// Maps a copy index and a local server index to the global index.
    #[must_use]
    pub fn global_index(&self, copy: usize, local: usize) -> usize {
        copy * self.inner.universe_size() + local
    }

    /// Restricts a global alive-set to the servers of copy `copy`, re-indexed locally.
    fn restrict_to_copy(&self, alive: &ServerSet, copy: usize) -> ServerSet {
        let n_r = self.inner.universe_size();
        let base = copy * n_r;
        let mut local = ServerSet::new(n_r);
        for i in 0..n_r {
            if alive.contains(base + i) {
                local.insert(i);
            }
        }
        local
    }

    /// Lifts a local quorum of copy `copy` to global indices, unioning into `out`.
    fn lift_into(&self, copy: usize, local: &ServerSet, out: &mut ServerSet) {
        let base = copy * self.inner.universe_size();
        for i in local.iter() {
            out.insert(base + i);
        }
    }
}

impl<S: QuorumSystem, R: QuorumSystem> QuorumSystem for ComposedSystem<S, R> {
    fn universe_size(&self) -> usize {
        self.outer.universe_size() * self.inner.universe_size()
    }

    fn name(&self) -> String {
        format!("{} ∘ {}", self.outer.name(), self.inner.name())
    }

    fn sample_quorum(&self, rng: &mut dyn RngCore) -> ServerSet {
        let outer_quorum = self.outer.sample_quorum(rng);
        let mut out = ServerSet::new(self.universe_size());
        for copy in outer_quorum.iter() {
            let local = self.inner.sample_quorum(rng);
            self.lift_into(copy, &local, &mut out);
        }
        out
    }

    fn find_live_quorum(&self, alive: &ServerSet) -> Option<ServerSet> {
        // A copy of R is "available" if it contains a live inner quorum; the composed
        // system is available iff the available copies contain an outer quorum.
        let n_s = self.outer.universe_size();
        let mut available_copies = ServerSet::new(n_s);
        let mut live_inner: Vec<Option<ServerSet>> = vec![None; n_s];
        for (copy, slot) in live_inner.iter_mut().enumerate() {
            let local_alive = self.restrict_to_copy(alive, copy);
            if let Some(q) = self.inner.find_live_quorum(&local_alive) {
                available_copies.insert(copy);
                *slot = Some(q);
            }
        }
        let outer_quorum = self.outer.find_live_quorum(&available_copies)?;
        let mut out = ServerSet::new(self.universe_size());
        for copy in outer_quorum.iter() {
            let local = live_inner[copy]
                .as_ref()
                .expect("outer quorum only uses available copies");
            self.lift_into(copy, local, &mut out);
        }
        Some(out)
    }

    /// Theorem 4.7: the copies of `R` fail independently with probability
    /// `r(p) = F_p(R)`, and the composed system is unavailable exactly when
    /// the surviving copies contain no quorum of `S`, so
    /// `F_p(S ∘ R) = F_{r(p)}(S)`. When both components answer in closed form
    /// the composition does too — this is what makes boostFPP (FPP over a
    /// threshold) exactly evaluable at `n ≈ 1000` in microseconds.
    fn crash_probability_closed_form(&self, p: f64) -> Option<f64> {
        let r = self.inner.crash_probability_closed_form(p)?;
        self.outer.crash_probability_closed_form(r.clamp(0.0, 1.0))
    }

    fn min_quorum_size(&self) -> usize {
        self.outer.min_quorum_size() * self.inner.min_quorum_size()
    }
}

impl<S, R> crate::oracle::MinWeightQuorumOracle for ComposedSystem<S, R>
where
    S: crate::oracle::MinWeightQuorumOracle,
    R: crate::oracle::MinWeightQuorumOracle,
{
    /// Exact pricing by composition: a composed quorum chooses an outer
    /// quorum and, independently per chosen copy, an inner quorum — so the
    /// cheapest composed quorum prices every copy with the inner oracle and
    /// then runs the outer oracle over those per-copy optima. This is what
    /// gives boostFPP (FPP over a threshold) a polynomial pricing oracle at
    /// `n ≈ 1000`.
    fn min_weight_quorum(&self, prices: &[f64]) -> Option<(ServerSet, f64)> {
        let n_r = self.inner.universe_size();
        let n_s = self.outer.universe_size();
        assert_eq!(prices.len(), n_s * n_r, "one price per composed server");
        let mut copy_prices = Vec::with_capacity(n_s);
        let mut copy_quorums = Vec::with_capacity(n_s);
        for copy in 0..n_s {
            let slice = &prices[copy * n_r..(copy + 1) * n_r];
            let (q, v) = self.inner.min_weight_quorum(slice)?;
            copy_prices.push(v);
            copy_quorums.push(q);
        }
        let (outer_quorum, total) = self.outer.min_weight_quorum(&copy_prices)?;
        let mut out = ServerSet::new(self.universe_size());
        for copy in outer_quorum.iter() {
            self.lift_into(copy, &copy_quorums[copy], &mut out);
        }
        Some((out, total))
    }

    /// The *aligned product* of the component hints: for every outer hint
    /// column `O` and inner hint column `I`, the composed column installs the
    /// same `I` in every copy selected by `O`, with weight `w_O · w_I`.
    ///
    /// Per-server load is a marginal quantity, so sharing `I` across copies
    /// changes nothing: the induced load of the product mixture factors as
    /// `P(copy chosen) · P(inner server chosen)`, and if both component hints
    /// equalise their loads the composed one does too — at `L(S)·L(R)`,
    /// which is exactly Theorem 4.7's product (here *certified*, not
    /// assumed). The family stays small: `|hint(S)| · |hint(R)|` columns.
    fn symmetric_strategy_hint(&self) -> Option<(Vec<ServerSet>, Vec<f64>)> {
        let (outer_q, outer_w) = self.outer.symmetric_strategy_hint()?;
        let (inner_q, inner_w) = self.inner.symmetric_strategy_hint()?;
        let mut quorums = Vec::with_capacity(outer_q.len() * inner_q.len());
        let mut weights = Vec::with_capacity(outer_q.len() * inner_q.len());
        for (o, wo) in outer_q.iter().zip(&outer_w) {
            for (i, wi) in inner_q.iter().zip(&inner_w) {
                let mut out = ServerSet::new(self.universe_size());
                for copy in o.iter() {
                    self.lift_into(copy, i, &mut out);
                }
                quorums.push(out);
                weights.push(wo * wi);
            }
        }
        Some((quorums, weights))
    }
}

/// Materialises the composed system `S ∘ R` as an explicit quorum list.
///
/// The number of composed quorums is `Σ_{S_j ∈ S} Π_{i ∈ S_j} |R|`, which explodes
/// quickly; this function is intended for the small systems used in tests and
/// examples.
///
/// # Errors
///
/// Propagates validation errors from [`ExplicitQuorumSystem::new`] (which cannot
/// occur if both inputs are valid quorum systems) and returns
/// [`QuorumError::InvalidParameters`] if the composition would exceed
/// `max_quorums` quorums.
pub fn compose_explicit(
    outer: &ExplicitQuorumSystem,
    inner: &ExplicitQuorumSystem,
    max_quorums: usize,
) -> Result<ExplicitQuorumSystem, QuorumError> {
    let n_r = inner.universe_size();
    let n = outer.universe_size() * n_r;
    // Estimate the output size first.
    let mut total: u128 = 0;
    for s in outer.quorums() {
        let mut count: u128 = 1;
        for _ in 0..s.len() {
            count = count.saturating_mul(inner.num_quorums() as u128);
            if count > max_quorums as u128 {
                return Err(QuorumError::InvalidParameters(format!(
                    "composition would exceed {max_quorums} quorums"
                )));
            }
        }
        total += count;
        if total > max_quorums as u128 {
            return Err(QuorumError::InvalidParameters(format!(
                "composition would exceed {max_quorums} quorums"
            )));
        }
    }

    let mut composed: Vec<ServerSet> = Vec::with_capacity(total as usize);
    for s in outer.quorums() {
        let copies: Vec<usize> = s.iter().collect();
        // Cartesian product over the inner quorum choice for each copy in s.
        let mut choice = vec![0usize; copies.len()];
        loop {
            let mut q = ServerSet::new(n);
            for (slot, &copy) in copies.iter().enumerate() {
                let inner_q = &inner.quorums()[choice[slot]];
                for i in inner_q.iter() {
                    q.insert(copy * n_r + i);
                }
            }
            composed.push(q);
            // Advance the mixed-radix counter.
            let mut pos = 0;
            loop {
                if pos == choice.len() {
                    break;
                }
                choice[pos] += 1;
                if choice[pos] < inner.num_quorums() {
                    break;
                }
                choice[pos] = 0;
                pos += 1;
            }
            if pos == choice.len() {
                break;
            }
        }
    }
    Ok(ExplicitQuorumSystem::new(n, composed)?.with_name(format!(
        "{} ∘ {}",
        outer.name(),
        inner.name()
    )))
}

/// The analytic parameter composition of Theorem 4.7, for planning compositions
/// without materialising them.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ComposedParameters {
    /// Universe size `n_S · n_R`.
    pub universe_size: usize,
    /// Minimal quorum size `c(S) · c(R)`.
    pub min_quorum_size: usize,
    /// Minimal intersection `IS(S) · IS(R)`.
    pub min_intersection: usize,
    /// Minimal transversal `MT(S) · MT(R)`.
    pub min_transversal: usize,
    /// Load `L(S) · L(R)`.
    pub load: f64,
}

/// Combines the parameters of two systems per Theorem 4.7.
#[must_use]
pub fn composed_parameters(
    outer: (usize, usize, usize, usize, f64),
    inner: (usize, usize, usize, usize, f64),
) -> ComposedParameters {
    ComposedParameters {
        universe_size: outer.0 * inner.0,
        min_quorum_size: outer.1 * inner.1,
        min_intersection: outer.2 * inner.2,
        min_transversal: outer.3 * inner.3,
        load: outer.4 * inner.4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::load::optimal_load;
    use crate::measures::{min_intersection_size, min_quorum_size};
    use crate::transversal::min_transversal_size;
    use bqs_combinatorics::subsets::KSubsets;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn k_of_n_system(n: usize, k: usize) -> ExplicitQuorumSystem {
        let quorums: Vec<ServerSet> = KSubsets::new(n, k)
            .map(|s| ServerSet::from_indices(n, s))
            .collect();
        ExplicitQuorumSystem::new(n, quorums)
            .unwrap()
            .with_name(format!("{k}-of-{n}"))
    }

    #[test]
    fn theorem_4_7_parameters_multiply() {
        // Compose 2-of-3 over 2-of-3 and verify every combinatorial parameter.
        let s = k_of_n_system(3, 2);
        let r = k_of_n_system(3, 2);
        let composed = compose_explicit(&s, &r, 100_000).unwrap();
        assert_eq!(composed.universe_size(), 9);
        assert_eq!(min_quorum_size(composed.quorums()), 4);
        assert_eq!(min_intersection_size(composed.quorums()), 1);
        assert_eq!(min_transversal_size(composed.quorums(), 9), 4);
        // Load multiplies: L(2-of-3) = 2/3, so composed load = 4/9.
        let (load, _) = optimal_load(composed.quorums(), 9).unwrap();
        assert!((load - 4.0 / 9.0).abs() < 1e-6, "load={load}");
    }

    #[test]
    fn composed_quorum_count_is_product_structure() {
        // 2-of-3 over 2-of-3: each outer quorum (3 of them) picks an inner quorum for
        // each of its 2 copies (3 choices each) -> 3 * 9 = 27 composed quorums.
        let s = k_of_n_system(3, 2);
        let r = k_of_n_system(3, 2);
        let composed = compose_explicit(&s, &r, 100_000).unwrap();
        assert_eq!(composed.num_quorums(), 27);
    }

    #[test]
    fn lazy_and_explicit_compositions_agree_on_availability() {
        let s = k_of_n_system(3, 2);
        let r = k_of_n_system(3, 2);
        let explicit = compose_explicit(&s, &r, 100_000).unwrap();
        let lazy = ComposedSystem::new(s, r);
        assert_eq!(lazy.universe_size(), 9);
        assert_eq!(lazy.min_quorum_size(), 4);
        // Exhaustively compare availability over all 2^9 failure configurations.
        for mask in 0u32..512 {
            let alive = ServerSet::from_indices(9, (0..9).filter(|i| mask & (1 << i) != 0));
            let a = explicit.is_available(&alive);
            let b = lazy.is_available(&alive);
            assert_eq!(a, b, "mask={mask:b}");
            if let Some(q) = lazy.find_live_quorum(&alive) {
                assert!(q.is_subset_of(&alive));
            }
        }
    }

    #[test]
    fn sampled_composed_quorums_are_valid() {
        let s = k_of_n_system(4, 3);
        let r = k_of_n_system(3, 2);
        let lazy = ComposedSystem::new(s, r);
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..30 {
            let q = lazy.sample_quorum(&mut rng);
            // Quorum size: 3 copies * 2 servers each.
            assert_eq!(q.len(), 6);
            // Every sampled quorum must be found live under full aliveness.
            assert!(lazy.is_available(&ServerSet::full(12)));
            assert!(q.is_subset_of(&ServerSet::full(12)));
        }
        assert_eq!(lazy.name(), "3-of-4 ∘ 2-of-3");
    }

    #[test]
    fn composition_size_guard() {
        let s = k_of_n_system(5, 3);
        let r = k_of_n_system(5, 3);
        assert!(matches!(
            compose_explicit(&s, &r, 100),
            Err(QuorumError::InvalidParameters(_))
        ));
    }

    #[test]
    fn analytic_parameters_helper() {
        // boostFPP-style: FPP(q=2) has (7, 3, 1, 3, 3/7); Thresh(4-of-5) has
        // (5, 4, 3, 2, 4/5).
        let p = composed_parameters((7, 3, 1, 3, 3.0 / 7.0), (5, 4, 3, 2, 0.8));
        assert_eq!(p.universe_size, 35);
        assert_eq!(p.min_quorum_size, 12);
        assert_eq!(p.min_intersection, 3);
        assert_eq!(p.min_transversal, 6);
        assert!((p.load - 12.0 / 35.0).abs() < 1e-12);
    }

    /// A threshold-like test double with a closed form (majority-of-3).
    struct ClosedMajority3;
    impl QuorumSystem for ClosedMajority3 {
        fn universe_size(&self) -> usize {
            3
        }
        fn name(&self) -> String {
            "2-of-3-closed".into()
        }
        fn sample_quorum(&self, _rng: &mut dyn RngCore) -> ServerSet {
            ServerSet::from_indices(3, [0, 1])
        }
        fn find_live_quorum(&self, alive: &ServerSet) -> Option<ServerSet> {
            if alive.len() >= 2 {
                Some(ServerSet::from_indices(3, alive.iter().take(2)))
            } else {
                None
            }
        }
        fn crash_probability_closed_form(&self, p: f64) -> Option<f64> {
            // Fails iff >= 2 of 3 crash.
            Some(3.0 * p * p * (1.0 - p) + p * p * p)
        }
        fn min_quorum_size(&self) -> usize {
            2
        }
    }

    #[test]
    fn composed_closed_form_matches_enumeration() {
        // F_p(S∘R) = s(r(p)) in closed form, validated against exact
        // enumeration of the materialised 9-server composition.
        use crate::availability::exact_crash_probability;
        let explicit = compose_explicit(&k_of_n_system(3, 2), &k_of_n_system(3, 2), 1000).unwrap();
        let lazy = ComposedSystem::new(ClosedMajority3, ClosedMajority3);
        for &p in &[0.0, 0.1, 0.3, 0.5, 0.9, 1.0] {
            let closed = lazy.crash_probability_closed_form(p).unwrap();
            let direct = exact_crash_probability(&explicit, p).unwrap();
            assert!(
                (closed - direct).abs() < 1e-12,
                "p={p}: closed {closed} vs enumerated {direct}"
            );
        }
    }

    #[test]
    fn composed_oracle_prices_by_composition() {
        use crate::oracle::MinWeightQuorumOracle;
        // 2-of-3 over 2-of-3 with hand-picked prices: the composed oracle's
        // answer must match a brute-force scan of the materialised system.
        let s = k_of_n_system(3, 2);
        let r = k_of_n_system(3, 2);
        let explicit = compose_explicit(&s, &r, 100_000).unwrap();
        let lazy = ComposedSystem::new(k_of_n_system(3, 2), k_of_n_system(3, 2));
        let prices: Vec<f64> = (0..9).map(|i| ((i * 7 + 3) % 11) as f64 / 11.0).collect();
        let (q, v) = lazy.min_weight_quorum(&prices).unwrap();
        let (_, v_ref) = explicit.min_weight_quorum(&prices).unwrap();
        assert!((v - v_ref).abs() < 1e-12, "composed {v} vs scan {v_ref}");
        let recomputed: f64 = q.iter().map(|u| prices[u]).sum();
        assert!((recomputed - v).abs() < 1e-12);
        // And the certified load engine agrees with the explicit LP (4/9).
        let certified = crate::load::optimal_load_oracle(&lazy).unwrap();
        assert!((certified.load - 4.0 / 9.0).abs() <= 1e-9);
        assert!(certified.gap <= 1e-9);
    }

    #[test]
    fn composed_closed_form_requires_both_components() {
        // Explicit systems expose no closed form, so neither does the
        // composition built from them.
        let lazy = ComposedSystem::new(k_of_n_system(3, 2), k_of_n_system(3, 2));
        assert!(lazy.crash_probability_closed_form(0.2).is_none());
        let half = ComposedSystem::new(ClosedMajority3, k_of_n_system(3, 2));
        assert!(half.crash_probability_closed_form(0.2).is_none());
    }

    #[test]
    fn composed_crash_probability_composes() {
        // Fp(S∘R) = s(r(p)) — verify by exact enumeration on 2-of-3 over 2-of-3.
        use crate::availability::exact_crash_probability;
        let s = k_of_n_system(3, 2);
        let r = k_of_n_system(3, 2);
        let composed = compose_explicit(&s, &r, 100_000).unwrap();
        for &p in &[0.1, 0.3, 0.5] {
            let r_p = exact_crash_probability(&r, p).unwrap();
            let s_of_r = exact_crash_probability(&s, r_p).unwrap();
            let direct = exact_crash_probability(&composed, p).unwrap();
            assert!(
                (s_of_r - direct).abs() < 1e-9,
                "p={p}: {s_of_r} vs {direct}"
            );
        }
    }
}
