//! Coteries, domination and minimal-quorum reduction.
//!
//! The quorum-system literature the paper builds on ([GB85], [NW98]) distinguishes
//! *coteries* — quorum systems that are antichains (no quorum contains another) —
//! and calls a coterie *dominated* when another coterie is strictly "better"
//! (every quorum of the first contains a quorum of the second). Dominated systems
//! never help: removing a superset quorum can only lower the load and can never hurt
//! availability, because any alive superset quorum certifies an alive subset quorum.
//! The constructions in this workspace produce antichains already; these utilities
//! let users sanitise hand-built systems before analysing them, and let tests assert
//! the constructions stay minimal.

use crate::bitset::ServerSet;
use crate::error::QuorumError;
use crate::quorum::{ExplicitQuorumSystem, QuorumSystem};

/// Returns true if the quorum list is an antichain (a *coterie*): no quorum is a
/// subset of a different quorum.
#[must_use]
pub fn is_coterie(quorums: &[ServerSet]) -> bool {
    for (i, q) in quorums.iter().enumerate() {
        for (j, r) in quorums.iter().enumerate() {
            if i != j && q.is_subset_of(r) && q != r {
                return false;
            }
        }
    }
    // Duplicate quorums also violate minimality.
    for i in 0..quorums.len() {
        for j in (i + 1)..quorums.len() {
            if quorums[i] == quorums[j] {
                return false;
            }
        }
    }
    true
}

/// Removes dominated (superset or duplicate) quorums, returning the minimal
/// antichain with the same availability and at-most-equal load.
#[must_use]
pub fn reduce_to_minimal(quorums: &[ServerSet]) -> Vec<ServerSet> {
    let mut keep: Vec<ServerSet> = Vec::new();
    // Sort by size so that potential subsets are considered first.
    let mut sorted: Vec<&ServerSet> = quorums.iter().collect();
    sorted.sort_by_key(|q| q.len());
    for q in sorted {
        if keep.iter().any(|kept| kept.is_subset_of(q)) {
            continue; // dominated by an already-kept smaller (or equal) quorum
        }
        keep.push(q.clone());
    }
    keep
}

/// Reduces an explicit quorum system to its minimal (coterie) form, preserving the
/// universe and name.
///
/// # Errors
///
/// Propagates [`ExplicitQuorumSystem::new`] validation errors (cannot occur when the
/// input system is valid, since reduction preserves pairwise intersection).
pub fn minimize_system(system: &ExplicitQuorumSystem) -> Result<ExplicitQuorumSystem, QuorumError> {
    let reduced = reduce_to_minimal(system.quorums());
    Ok(ExplicitQuorumSystem::new(system.universe_size(), reduced)?.with_name(system.name()))
}

/// Returns true if coterie `better` dominates coterie `worse` in the sense of
/// [GB85]: they are different, and every quorum of `worse` contains some quorum of
/// `better`.
#[must_use]
pub fn dominates(better: &[ServerSet], worse: &[ServerSet]) -> bool {
    if better.is_empty() || worse.is_empty() {
        return false;
    }
    let every_covered = worse
        .iter()
        .all(|w| better.iter().any(|b| b.is_subset_of(w)));
    if !every_covered {
        return false;
    }
    // "Different": some quorum of `better` is not a superset of any quorum of
    // `worse`, or the sets of quorums simply differ.
    let same = better.len() == worse.len() && better.iter().all(|b| worse.contains(b));
    !same
}

/// A coterie is *non-dominated* (ND) if no coterie dominates it. Deciding this in
/// general is expensive; this helper implements the classical sufficient check used
/// for small systems: a coterie over universe `U` is dominated iff there exists a set
/// `T ⊆ U` such that (1) `T` intersects every quorum and (2) no quorum is contained
/// in `T` — in that case adding (a minimal subset of) `T` as a new quorum dominates.
/// Returns `Some(witness)` when such a `T` exists (the system is dominated), `None`
/// when the system is non-dominated. Exponential in `n`; intended for `n ≤ 20`.
///
/// # Errors
///
/// Returns [`QuorumError::UniverseTooLarge`] for universes above 20 servers.
pub fn domination_witness(
    quorums: &[ServerSet],
    universe_size: usize,
) -> Result<Option<ServerSet>, QuorumError> {
    const LIMIT: usize = 20;
    if universe_size > LIMIT {
        return Err(QuorumError::UniverseTooLarge {
            universe_size,
            limit: LIMIT,
        });
    }
    for mask in 0u64..(1u64 << universe_size) {
        let t = ServerSet::from_indices(
            universe_size,
            (0..universe_size).filter(|&i| mask & (1 << i) != 0),
        );
        if t.is_empty() {
            continue;
        }
        let hits_every = quorums.iter().all(|q| !q.is_disjoint_from(&t));
        if !hits_every {
            continue;
        }
        let contains_some = quorums.iter().any(|q| q.is_subset_of(&t));
        if !contains_some {
            return Ok(Some(t));
        }
    }
    Ok(None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bqs_combinatorics::subsets::KSubsets;

    fn sets(universe: usize, lists: &[&[usize]]) -> Vec<ServerSet> {
        lists
            .iter()
            .map(|l| ServerSet::from_indices(universe, l.iter().copied()))
            .collect()
    }

    #[test]
    fn majority_is_a_coterie() {
        let q: Vec<ServerSet> = KSubsets::new(5, 3)
            .map(|s| ServerSet::from_indices(5, s))
            .collect();
        assert!(is_coterie(&q));
        assert_eq!(reduce_to_minimal(&q).len(), q.len());
    }

    #[test]
    fn superset_quorums_are_removed() {
        let q = sets(4, &[&[0, 1], &[0, 1, 2], &[1, 2], &[1, 2, 3], &[0, 2]]);
        assert!(!is_coterie(&q));
        let reduced = reduce_to_minimal(&q);
        assert_eq!(reduced.len(), 3);
        assert!(is_coterie(&reduced));
        // The minimal quorums survive.
        assert!(reduced.contains(&ServerSet::from_indices(4, [0, 1])));
        assert!(reduced.contains(&ServerSet::from_indices(4, [1, 2])));
        assert!(reduced.contains(&ServerSet::from_indices(4, [0, 2])));
    }

    #[test]
    fn duplicates_are_removed() {
        let q = sets(3, &[&[0, 1], &[0, 1], &[1, 2]]);
        assert!(!is_coterie(&q));
        assert_eq!(reduce_to_minimal(&q).len(), 2);
    }

    #[test]
    fn reduction_preserves_availability_and_load() {
        use crate::availability::exact_crash_probability;
        use crate::load::optimal_load;
        let original = ExplicitQuorumSystem::from_indices(
            4,
            [
                vec![0, 1],
                vec![0, 1, 2],
                vec![1, 2],
                vec![0, 2],
                vec![0, 2, 3],
            ],
        )
        .unwrap();
        let minimal = minimize_system(&original).unwrap();
        assert!(minimal.num_quorums() < original.num_quorums());
        for &p in &[0.1, 0.4, 0.7] {
            let a = exact_crash_probability(&original, p).unwrap();
            let b = exact_crash_probability(&minimal, p).unwrap();
            assert!((a - b).abs() < 1e-12, "p={p}");
        }
        let (l_orig, _) = optimal_load(original.quorums(), 4).unwrap();
        let (l_min, _) = optimal_load(minimal.quorums(), 4).unwrap();
        assert!(l_min <= l_orig + 1e-9);
    }

    #[test]
    fn domination_relation() {
        // The 2-of-3 majority dominates the "star" coterie {{0,1},{0,2}}? Every star
        // quorum contains a majority quorum (itself), and they differ -> dominates.
        let majority = sets(3, &[&[0, 1], &[0, 2], &[1, 2]]);
        let star = sets(3, &[&[0, 1], &[0, 2]]);
        assert!(dominates(&majority, &star));
        assert!(!dominates(&star, &majority)); // {1,2} contains no star quorum
        assert!(!dominates(&majority, &majority));
        assert!(!dominates(&[], &majority));
    }

    #[test]
    fn majority_is_non_dominated_star_is_dominated() {
        let majority = sets(3, &[&[0, 1], &[0, 2], &[1, 2]]);
        assert_eq!(domination_witness(&majority, 3).unwrap(), None);
        let star = sets(3, &[&[0, 1], &[0, 2]]);
        let witness = domination_witness(&star, 3)
            .unwrap()
            .expect("star is dominated");
        // Any witness must hit every quorum without containing one ({0} and {1,2} both
        // qualify; the search returns the first in mask order).
        assert!(star.iter().all(|q| !q.is_disjoint_from(&witness)));
        assert!(star.iter().all(|q| !q.is_subset_of(&witness)));
    }

    #[test]
    fn domination_witness_respects_size_limit() {
        let q = vec![ServerSet::full(25)];
        assert!(matches!(
            domination_witness(&q, 25),
            Err(QuorumError::UniverseTooLarge { .. })
        ));
    }

    #[test]
    fn threshold_systems_are_non_dominated() {
        // ℓ-of-k thresholds with 2ℓ = k+1 (strict majorities) are the classical ND
        // coteries; check 3-of-5.
        let q: Vec<ServerSet> = KSubsets::new(5, 3)
            .map(|s| ServerSet::from_indices(5, s))
            .collect();
        assert_eq!(domination_witness(&q, 5).unwrap(), None);
        // 4-of-5 is dominated (e.g. by 3-of-5): witness exists.
        let q45: Vec<ServerSet> = KSubsets::new(5, 4)
            .map(|s| ServerSet::from_indices(5, s))
            .collect();
        assert!(domination_witness(&q45, 5).unwrap().is_some());
    }
}
