//! Lower bounds on load and crash probability (Section 4.1 of the paper).
//!
//! These are the yardsticks every construction in the paper is measured against:
//!
//! * Theorem 4.1: `L(Q) ≥ max{ (2b+1)/c(Q), c(Q)/n }` for any b-masking system.
//! * Corollary 4.2: `L(Q) ≥ √((2b+1)/n)`, with equality iff `c(Q) = √((2b+1) n)`.
//! * Proposition 4.3: `F_p(Q) ≥ p^{MT(Q)} = p^{f+1}`.
//! * Proposition 4.4: `F_p(Q) ≥ p^{c(Q) − 2b}` for b-masking systems.
//! * Proposition 4.5: `F_p(Q) ≥ p^{b+1}` when `MT(Q) ≤ (IS(Q)+1)/2`.
//! * The resilience/load tradeoff from Section 8: `f ≤ n · L(Q)`.

/// Theorem 4.1: the load of a b-masking quorum system with smallest quorum size
/// `min_quorum_size` over `n` servers is at least
/// `max{ (2b+1)/c, c/n }`.
///
/// # Panics
///
/// Panics if `min_quorum_size == 0` or `n == 0`.
#[must_use]
pub fn load_lower_bound(n: usize, b: usize, min_quorum_size: usize) -> f64 {
    assert!(n > 0 && min_quorum_size > 0, "sizes must be positive");
    let c = min_quorum_size as f64;
    let first = (2 * b + 1) as f64 / c;
    let second = c / n as f64;
    first.max(second)
}

/// Corollary 4.2: `L(Q) ≥ √((2b+1)/n)` for every b-masking system over `n` servers,
/// regardless of its quorum size.
///
/// # Panics
///
/// Panics if `n == 0`.
#[must_use]
pub fn load_lower_bound_universal(n: usize, b: usize) -> f64 {
    assert!(n > 0, "universe must be non-empty");
    ((2 * b + 1) as f64 / n as f64).sqrt()
}

/// The quorum size `√((2b+1) n)` at which the universal lower bound of
/// Corollary 4.2 is attainable.
#[must_use]
pub fn load_optimal_quorum_size(n: usize, b: usize) -> f64 {
    ((2 * b + 1) as f64 * n as f64).sqrt()
}

/// Proposition 4.3: `F_p(Q) ≥ p^{MT(Q)}` — with `MT(Q) = f + 1` this is the
/// availability limit imposed by the resilience alone.
#[must_use]
pub fn crash_probability_lower_bound_resilience(p: f64, min_transversal: usize) -> f64 {
    p.clamp(0.0, 1.0).powi(min_transversal as i32)
}

/// Proposition 4.4: `F_p(Q) ≥ p^{c(Q) − 2b}` for a b-masking system.
///
/// When `c(Q) ≤ 2b` (impossible for a valid b-masking system) the bound degenerates
/// to `1`.
#[must_use]
pub fn crash_probability_lower_bound_masking(p: f64, min_quorum_size: usize, b: usize) -> f64 {
    if min_quorum_size <= 2 * b {
        return 1.0;
    }
    p.clamp(0.0, 1.0).powi((min_quorum_size - 2 * b) as i32)
}

/// Proposition 4.5: `F_p(Q) ≥ p^{b+1}`, valid when `MT(Q) ≤ (IS(Q) + 1) / 2`
/// (which holds for all the constructions in the paper at their maximal masking
/// level). The caller is responsible for checking that precondition; see
/// [`proposition_4_5_applies`].
#[must_use]
pub fn crash_probability_lower_bound_tight(p: f64, b: usize) -> f64 {
    p.clamp(0.0, 1.0).powi(b as i32 + 1)
}

/// The precondition of Proposition 4.5: `MT(Q) ≤ (IS(Q) + 1) / 2`.
#[must_use]
pub fn proposition_4_5_applies(min_transversal: usize, min_intersection: usize) -> bool {
    2 * min_transversal <= min_intersection + 1
}

/// The resilience/load tradeoff observed in Section 8: since `f ≤ c(Q)` always and
/// `L(Q) ≥ c(Q)/n` (Theorem 4.1), any quorum system satisfies `f ≤ n · L(Q)`.
/// Returns the maximum resilience compatible with the given load.
#[must_use]
pub fn max_resilience_for_load(n: usize, load: f64) -> f64 {
    n as f64 * load
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn theorem_4_1_behaviour() {
        // Small quorums are punished by the (2b+1)/c term, large ones by c/n.
        let n = 100;
        let b = 3;
        assert!((load_lower_bound(n, b, 7) - 1.0).abs() < 1e-12); // (2b+1)/c = 1
        assert!((load_lower_bound(n, b, 70) - 0.7).abs() < 1e-12); // c/n dominates
                                                                   // The bound is minimised near c = sqrt((2b+1) n).
        let c_star = load_optimal_quorum_size(n, b).round() as usize;
        let at_star = load_lower_bound(n, b, c_star);
        assert!(at_star <= load_lower_bound(n, b, c_star / 2) + 1e-12);
        assert!(at_star <= load_lower_bound(n, b, c_star * 2) + 1e-12);
    }

    #[test]
    fn corollary_4_2_is_the_envelope() {
        // For every quorum size, Theorem 4.1 is at least the universal bound.
        let n = 400;
        let b = 5;
        let universal = load_lower_bound_universal(n, b);
        for c in 1..=n {
            assert!(load_lower_bound(n, b, c) >= universal - 1e-9, "c={c}");
        }
        // And the universal bound is attained at the optimal quorum size.
        let c_star = load_optimal_quorum_size(n, b);
        let attained = load_lower_bound(n, b, c_star.round() as usize);
        assert!((attained - universal).abs() < 0.02);
    }

    #[test]
    fn universal_bound_special_cases() {
        // b = 0 recovers the Naor-Wool 1/sqrt(n) bound.
        assert!((load_lower_bound_universal(100, 0) - 0.1).abs() < 1e-12);
        // b ~ n/4 forces constant load ~ 1/sqrt(2) (remark after Corollary 4.2).
        let l = load_lower_bound_universal(1000, 250);
        assert!((l - (501.0_f64 / 1000.0).sqrt()).abs() < 1e-12);
        assert!(l > 0.7);
    }

    #[test]
    fn crash_bounds_monotone_in_exponent() {
        let p = 0.2;
        assert!(
            crash_probability_lower_bound_resilience(p, 3)
                > crash_probability_lower_bound_resilience(p, 5)
        );
        assert!(
            crash_probability_lower_bound_tight(p, 1) > crash_probability_lower_bound_tight(p, 4)
        );
    }

    #[test]
    fn proposition_4_4_degenerate_case() {
        assert_eq!(crash_probability_lower_bound_masking(0.3, 4, 2), 1.0);
        let ok = crash_probability_lower_bound_masking(0.3, 10, 2);
        assert!((ok - 0.3f64.powi(6)).abs() < 1e-12);
    }

    #[test]
    fn proposition_4_5_precondition() {
        // Threshold 3b+1 of 4b+1: MT = b+1, IS = 2b+1 -> 2(b+1) <= 2b+2 holds.
        assert!(proposition_4_5_applies(3, 5)); // b = 2
                                                // FPP: MT = q+1, IS = 1 -> fails for q >= 1.
        assert!(!proposition_4_5_applies(3, 1));
    }

    #[test]
    fn probabilities_stay_in_unit_interval() {
        for &p in &[-0.5, 0.0, 0.3, 1.0, 1.7] {
            for bound in [
                crash_probability_lower_bound_resilience(p, 4),
                crash_probability_lower_bound_masking(p, 9, 2),
                crash_probability_lower_bound_tight(p, 3),
            ] {
                assert!((0.0..=1.0).contains(&bound), "p={p} bound={bound}");
            }
        }
    }

    #[test]
    fn resilience_load_tradeoff() {
        // With load 1/4 over 1024 servers, resilience can never exceed 256.
        assert!((max_resilience_for_load(1024, 0.25) - 256.0).abs() < 1e-9);
    }
}
