//! Strategy-driven access to a structured quorum system.
//!
//! The certified load engine ([`crate::load::optimal_load_oracle`]) returns a
//! [`CertifiedLoad`]: an explicit family of quorum columns together with the
//! [`AccessStrategy`] whose induced load *is* the certified `L(Q)`. To observe
//! that load empirically — in the single-threaded simulator or the concurrent
//! `bqs-service` runtime — clients must sample their access quorums from that
//! strategy rather than from the construction's built-in sampler.
//!
//! [`StrategicQuorumSystem`] is the bridge: it wraps any [`QuorumSystem`] and
//! overrides only quorum *sampling* (O(1) through the strategy's alias table),
//! while delegating availability queries and live-quorum fallback to the
//! underlying construction, whose structure-aware search covers the full
//! quorum set rather than just the strategy's columns.

use rand::RngCore;

use crate::bitset::ServerSet;
use crate::error::QuorumError;
use crate::load::CertifiedLoad;
use crate::quorum::QuorumSystem;
use crate::strategy::AccessStrategy;

/// A quorum system whose access quorums are drawn from an explicit strategy
/// over quorum columns (typically the certified-optimal strategy of
/// [`CertifiedLoad`]), with every other query delegated to the wrapped system.
#[derive(Debug, Clone)]
pub struct StrategicQuorumSystem<S> {
    inner: S,
    quorums: Vec<ServerSet>,
    strategy: AccessStrategy,
}

impl<S: QuorumSystem> StrategicQuorumSystem<S> {
    /// Wraps `inner` with an explicit strategy over `quorums`.
    ///
    /// # Errors
    ///
    /// Returns [`QuorumError::InvalidStrategy`] when the strategy length does
    /// not match the column count, or [`QuorumError::UniverseMismatch`] when a
    /// column ranges over a different universe than `inner`.
    pub fn new(
        inner: S,
        quorums: Vec<ServerSet>,
        strategy: AccessStrategy,
    ) -> Result<Self, QuorumError> {
        if strategy.len() != quorums.len() {
            return Err(QuorumError::InvalidStrategy(format!(
                "strategy covers {} quorums but {} columns were given",
                strategy.len(),
                quorums.len()
            )));
        }
        if quorums.is_empty() {
            return Err(QuorumError::EmptySystem);
        }
        let n = inner.universe_size();
        for (index, q) in quorums.iter().enumerate() {
            if q.capacity() != n {
                return Err(QuorumError::UniverseMismatch {
                    index,
                    universe_size: n,
                });
            }
        }
        Ok(StrategicQuorumSystem {
            inner,
            quorums,
            strategy,
        })
    }

    /// Wraps `inner` with the certified-optimal strategy of a
    /// [`CertifiedLoad`] produced for it — clients sampling through the result
    /// realise the certified `L(Q)` as their per-server access frequency.
    ///
    /// # Errors
    ///
    /// Same as [`StrategicQuorumSystem::new`] (a `certified` produced for a
    /// different system fails the universe check).
    pub fn from_certified(inner: S, certified: &CertifiedLoad) -> Result<Self, QuorumError> {
        StrategicQuorumSystem::new(inner, certified.quorums.clone(), certified.strategy.clone())
    }

    /// The wrapped construction.
    #[must_use]
    pub fn inner(&self) -> &S {
        &self.inner
    }

    /// The strategy's quorum columns.
    #[must_use]
    pub fn quorums(&self) -> &[ServerSet] {
        &self.quorums
    }

    /// The access strategy over [`StrategicQuorumSystem::quorums`].
    #[must_use]
    pub fn strategy(&self) -> &AccessStrategy {
        &self.strategy
    }

    /// The load the strategy induces on the busiest server — the empirical
    /// access frequency clients sampling through this system converge to.
    #[must_use]
    pub fn strategy_load(&self) -> f64 {
        self.strategy
            .induced_system_load(&self.quorums, self.inner.universe_size())
    }
}

impl<S: QuorumSystem> QuorumSystem for StrategicQuorumSystem<S> {
    fn universe_size(&self) -> usize {
        self.inner.universe_size()
    }

    fn name(&self) -> String {
        format!("{} [strategic]", self.inner.name())
    }

    fn sample_quorum(&self, rng: &mut dyn RngCore) -> ServerSet {
        self.quorums[self.strategy.sample_index(rng)].clone()
    }

    fn find_live_quorum(&self, alive: &ServerSet) -> Option<ServerSet> {
        // Deterministic fallback, used only after repeated strategy samples
        // hit unresponsive servers: the first live strategy column, then the
        // construction's full search. Note this concentrates fallback traffic
        // on one column's servers — under sustained crashes the empirical
        // load profile is *not* the strategy's (load experiments should keep
        // the responsive set quorum-complete, as the bench harness does).
        self.quorums
            .iter()
            .find(|q| q.is_subset_of(alive))
            .cloned()
            .or_else(|| self.inner.find_live_quorum(alive))
    }

    fn is_available(&self, alive: &ServerSet) -> bool {
        self.inner.is_available(alive)
    }

    fn is_available_u64(&self, alive: u64, scratch: &mut ServerSet) -> bool {
        self.inner.is_available_u64(alive, scratch)
    }

    fn crash_probability_closed_form(&self, p: f64) -> Option<f64> {
        self.inner.crash_probability_closed_form(p)
    }

    fn crash_probability_closed_form_batch(&self, ps: &[f64]) -> Option<Vec<f64>> {
        self.inner.crash_probability_closed_form_batch(ps)
    }

    fn closed_form_method(&self) -> crate::eval::FpMethod {
        self.inner.closed_form_method()
    }

    fn min_quorum_size(&self) -> usize {
        self.inner.min_quorum_size()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quorum::ExplicitQuorumSystem;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn majority3() -> ExplicitQuorumSystem {
        ExplicitQuorumSystem::from_indices(3, [vec![0, 1], vec![0, 2], vec![1, 2]]).unwrap()
    }

    #[test]
    fn sampling_follows_the_installed_strategy() {
        let inner = majority3();
        let columns = vec![
            ServerSet::from_indices(3, [0, 1]),
            ServerSet::from_indices(3, [1, 2]),
        ];
        let strategy = AccessStrategy::new(vec![0.75, 0.25]).unwrap();
        let sys = StrategicQuorumSystem::new(inner, columns.clone(), strategy).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let mut first = 0usize;
        const N: usize = 8_000;
        for _ in 0..N {
            let q = sys.sample_quorum(&mut rng);
            assert!(columns.contains(&q));
            if q == columns[0] {
                first += 1;
            }
        }
        let frac = first as f64 / N as f64;
        assert!((frac - 0.75).abs() < 0.03, "frac {frac}");
        assert!((sys.strategy_load() - 1.0).abs() < 1e-12); // server 1 in both columns
    }

    #[test]
    fn live_quorum_prefers_columns_then_delegates() {
        let inner = majority3();
        let columns = vec![ServerSet::from_indices(3, [0, 1])];
        let strategy = AccessStrategy::uniform(1).unwrap();
        let sys = StrategicQuorumSystem::new(inner, columns, strategy).unwrap();
        // Column alive: returned directly.
        let alive = ServerSet::from_indices(3, [0, 1]);
        assert_eq!(
            sys.find_live_quorum(&alive).unwrap(),
            ServerSet::from_indices(3, [0, 1])
        );
        // Column dead but the inner system still has a live quorum.
        let alive = ServerSet::from_indices(3, [1, 2]);
        assert_eq!(
            sys.find_live_quorum(&alive).unwrap(),
            ServerSet::from_indices(3, [1, 2])
        );
        // Availability delegates to the full system.
        assert!(sys.is_available(&alive));
        assert!(!sys.is_available(&ServerSet::from_indices(3, [2])));
    }

    #[test]
    fn from_certified_realises_the_certified_load() {
        let inner = majority3();
        let certified = crate::load::optimal_load_oracle(&inner).unwrap();
        let sys = StrategicQuorumSystem::from_certified(inner, &certified).unwrap();
        assert!((sys.strategy_load() - certified.load).abs() < 1e-12);
        assert!((certified.load - 2.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn validation_rejects_mismatches() {
        let strategy = AccessStrategy::uniform(1).unwrap();
        // Wrong universe.
        let err = StrategicQuorumSystem::new(
            majority3(),
            vec![ServerSet::from_indices(4, [0, 1])],
            strategy.clone(),
        )
        .unwrap_err();
        assert!(matches!(err, QuorumError::UniverseMismatch { .. }));
        // Wrong length.
        let err = StrategicQuorumSystem::new(
            majority3(),
            vec![
                ServerSet::from_indices(3, [0, 1]),
                ServerSet::from_indices(3, [1, 2]),
            ],
            strategy,
        )
        .unwrap_err();
        assert!(matches!(err, QuorumError::InvalidStrategy(_)));
    }
}
