//! Pricing oracles for the column-generation load engine.
//!
//! The load LP has one variable per quorum, which is exponential for every
//! large-`n` construction of the paper. Column generation sidesteps the
//! enumeration: a restricted master LP (`bqs_lp::packing`) works over a small
//! set of quorums and asks a *pricing oracle* — given non-negative per-server
//! prices `y`, find the quorum of minimum total price — for improving columns.
//! Every paper construction answers that question in polynomial time from its
//! structure (smallest-`k` prefix for thresholds, cheapest rows × columns for
//! the grids, cheapest line for the FPP, recursion for RT, composition for
//! boostFPP), which is what makes certified `L(Q)` at `n = 1024` possible
//! without ever materialising a quorum list.
//!
//! The oracle also *certifies*: for any prices `y ≥ 0` and any access
//! strategy `w`, the busiest server's load is at least the `y`-weighted
//! average load, which is at least `min_Q y(Q) / Σ_u y_u`. The engine in
//! [`crate::load::optimal_load_oracle`] therefore reports a rigorous
//! lower bound alongside the strategy it builds, and terminates only when the
//! two meet (gap ≤ tolerance).

use crate::bitset::ServerSet;
use crate::quorum::{ExplicitQuorumSystem, QuorumSystem};

/// A pricing oracle over a quorum system: the separation routine of the dual
/// covering LP, and the column generator of the primal packing LP.
///
/// Implementations must return a **true minimiser over the system's quorum
/// set** (or over a documented load-equivalent sub-family — see the M-Path
/// oracle, which prices the straight-line quorums that Theorem 4.1 proves
/// attain the full system's load): the certified lower bound of the load
/// engine is only valid for exact oracles. The returned price must equal the
/// sum of `prices[u]` over the returned set (the engine re-derives it and
/// debug-asserts agreement).
pub trait MinWeightQuorumOracle: QuorumSystem {
    /// The minimum-total-price quorum under the given per-server prices,
    /// together with its price, or `None` when this instance is outside the
    /// oracle's feasible range (callers then fall back to the explicit LP).
    ///
    /// `prices` has one non-negative entry per server of the universe.
    fn min_weight_quorum(&self, prices: &[f64]) -> Option<(ServerSet, f64)>;

    /// A candidate load-optimal strategy from the construction's symmetry —
    /// quorum columns with (unnormalised) positive weights — if one is known.
    ///
    /// This is the column-generation notion of a *warm-start family*: for
    /// the paper's vertex-transitive constructions a perfectly balanced
    /// family of about `n` columns (cyclic windows for thresholds, all
    /// row-window × column-window pairs for the grid family, the lines of an
    /// FPP, aligned product columns for compositions) equalises every
    /// server's load exactly, so the engine can certify it in one oracle
    /// call instead of generating the family one simplex round at a time.
    ///
    /// The engine **never trusts the hint**: it recomputes the strategy's
    /// exact induced load and only accepts it when the pricing-oracle lower
    /// bound meets it; otherwise the columns merely seed the restricted
    /// master and column generation proceeds as usual.
    fn symmetric_strategy_hint(&self) -> Option<(Vec<ServerSet>, Vec<f64>)> {
        None
    }
}

/// Sums `prices` over the members of `set` — the exact price the engine uses
/// for certification, independent of how the oracle computed its own value.
#[must_use]
pub fn quorum_price(set: &ServerSet, prices: &[f64]) -> f64 {
    set.iter().map(|u| prices[u]).sum()
}

impl MinWeightQuorumOracle for ExplicitQuorumSystem {
    /// Exact by linear scan over the materialised quorum list — the generic
    /// fallback, and the reference the structured oracles are tested against.
    fn min_weight_quorum(&self, prices: &[f64]) -> Option<(ServerSet, f64)> {
        assert_eq!(
            prices.len(),
            self.universe_size(),
            "one price per server required"
        );
        self.quorums()
            .iter()
            .map(|q| (q, quorum_price(q, prices)))
            .min_by(|a, b| a.1.total_cmp(&b.1))
            .map(|(q, v)| (q.clone(), v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn majority3() -> ExplicitQuorumSystem {
        ExplicitQuorumSystem::from_indices(3, [vec![0, 1], vec![0, 2], vec![1, 2]]).unwrap()
    }

    #[test]
    fn explicit_oracle_scans_for_the_cheapest_quorum() {
        let sys = majority3();
        let (q, v) = sys.min_weight_quorum(&[0.1, 0.5, 0.2]).unwrap();
        assert_eq!(q.to_vec(), vec![0, 2]);
        assert!((v - 0.3).abs() < 1e-12);
        // Uniform prices: any quorum ties at 2/3; the scan is deterministic
        // (first minimum wins).
        let (_, v) = sys.min_weight_quorum(&[1.0 / 3.0; 3]).unwrap();
        assert!((v - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn quorum_price_matches_manual_sum() {
        let set = ServerSet::from_indices(4, [1, 3]);
        assert!((quorum_price(&set, &[9.0, 0.25, 9.0, 0.5]) - 0.75).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "one price per server")]
    fn explicit_oracle_validates_price_length() {
        let _ = majority3().min_weight_quorum(&[0.1, 0.2]);
    }
}
