//! Property-based invariants over the constructions' *operational* behaviour:
//! sampled quorums of every construction always pairwise intersect in at least
//! `2b + 1` servers (the consistency requirement of Definition 3.5), live quorums
//! found under failures are genuine quorums and stay within the alive set, and the
//! composition layout maps copies correctly.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

use byzantine_quorums::core::composition::ComposedSystem;
use byzantine_quorums::prelude::*;

/// Samples two quorums from the system and checks the masking intersection.
fn check_sampled_intersections<S: QuorumSystem>(sys: &S, b: usize, seed: u64, pairs: usize) {
    let mut rng = StdRng::seed_from_u64(seed);
    for _ in 0..pairs {
        let q1 = sys.sample_quorum(&mut rng);
        let q2 = sys.sample_quorum(&mut rng);
        assert!(
            q1.intersection_size(&q2) > 2 * b,
            "{}: sampled quorums intersect in fewer than 2b+1 servers",
            sys.name()
        );
        assert!(q1.len() >= sys.min_quorum_size());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn mgrid_sampled_intersections(side in 5usize..10, seed in 0u64..1000) {
        let b = MGridSystem::max_b(side);
        let sys = MGridSystem::new(side, b).unwrap();
        check_sampled_intersections(&sys, b, seed, 12);
    }

    #[test]
    fn mpath_sampled_intersections(side in 5usize..10, seed in 0u64..1000) {
        let b = MPathSystem::max_b(side);
        let sys = MPathSystem::new(side, b).unwrap();
        check_sampled_intersections(&sys, b, seed, 8);
    }

    #[test]
    fn rt_sampled_intersections(depth in 1u32..4, seed in 0u64..1000) {
        let sys = RtSystem::new(4, 3, depth).unwrap();
        let b = sys.masking_b();
        check_sampled_intersections(&sys, b, seed, 10);
    }

    #[test]
    fn boostfpp_sampled_intersections(b in 1usize..4, seed in 0u64..1000) {
        let sys = BoostFppSystem::new(3, b).unwrap();
        check_sampled_intersections(&sys, b, seed, 8);
    }

    #[test]
    fn grid_and_threshold_sampled_intersections(side in 7usize..11, seed in 0u64..1000) {
        let b = (side - 1) / 3;
        let grid = GridSystem::new(side, b).unwrap();
        check_sampled_intersections(&grid, b, seed, 10);
        let n = side * side;
        let thresh = ThresholdSystem::masking(n, b).unwrap();
        check_sampled_intersections(&thresh, b, seed, 10);
    }

    /// Live quorums found under random failures are subsets of the alive set and are
    /// accepted by the system's own quorum verifier (where one exists).
    #[test]
    fn live_quorums_are_valid_and_alive(seed in 0u64..500, p in 0.0f64..0.3) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mpath = MPathSystem::new(7, 3).unwrap();
        let alive = sample_alive_set(49, p, &mut rng);
        if let Some(q) = mpath.find_live_quorum(&alive) {
            prop_assert!(q.is_subset_of(&alive));
            prop_assert!(mpath.contains_quorum(&q));
        }
        let mgrid = MGridSystem::new(7, 3).unwrap();
        if let Some(q) = mgrid.find_live_quorum(&alive) {
            prop_assert!(q.is_subset_of(&alive));
            prop_assert_eq!(q.len(), mgrid.min_quorum_size());
        }
        let rt = RtSystem::new(4, 3, 2).unwrap();
        let alive16 = sample_alive_set(16, p, &mut rng);
        if let Some(q) = rt.find_live_quorum(&alive16) {
            prop_assert!(q.is_subset_of(&alive16));
            prop_assert_eq!(q.len(), rt.min_quorum_size());
        }
    }

    /// The lazy composition's universe layout: a composed quorum restricted to copy i
    /// is either empty or a quorum of the inner system.
    #[test]
    fn composition_layout_is_copy_major(seed in 0u64..500) {
        let mut rng = StdRng::seed_from_u64(seed);
        let outer = MajoritySystem::new(5).unwrap();
        let inner = ThresholdSystem::minimal_masking(1).unwrap(); // n = 5, 4-of-5
        let composed = ComposedSystem::new(outer, inner);
        let q = composed.sample_quorum(&mut rng);
        let n_inner = 5;
        let mut nonempty_copies = 0;
        for copy in 0..5 {
            let local: Vec<usize> = q
                .iter()
                .filter(|&g| g / n_inner == copy)
                .map(|g| g % n_inner)
                .collect();
            if local.is_empty() {
                continue;
            }
            nonempty_copies += 1;
            prop_assert_eq!(local.len(), 4, "each used copy contributes a full inner quorum");
        }
        // The outer majority uses exactly 3 copies.
        prop_assert_eq!(nonempty_copies, 3);
    }

    /// Domination reduction never changes availability on randomly augmented systems.
    #[test]
    fn minimization_preserves_availability(seed in 0u64..300) {
        use byzantine_quorums::core::availability::exact_crash_probability;
        use byzantine_quorums::core::domination::minimize_system;
        let mut rng = StdRng::seed_from_u64(seed);
        // Start from a 2-of-3 majority and add random superset quorums.
        let base = ThresholdSystem::new(3, 2).unwrap().to_explicit(100).unwrap();
        let mut quorums: Vec<ServerSet> = base.quorums().to_vec();
        for _ in 0..3 {
            let extra = sample_alive_set(3, 0.3, &mut rng);
            if !extra.is_empty() {
                // Ensure it intersects everything by unioning with an existing quorum.
                quorums.push(extra.union(&quorums[0]));
            }
        }
        let system = ExplicitQuorumSystem::new(3, quorums).unwrap();
        let minimal = minimize_system(&system).unwrap();
        for &p in &[0.2, 0.5, 0.8] {
            let a = exact_crash_probability(&system, p).unwrap();
            let b = exact_crash_probability(&minimal, p).unwrap();
            prop_assert!((a - b).abs() < 1e-12);
        }
    }
}
