//! Regression: the protocol simulator's empirical load converges to the
//! LP-optimal system load `L(Q)`.
//!
//! For a *fair* system under its uniform access strategy, Proposition 3.9 says
//! the load is `c(Q)/n`, and the exact LP of `bqs-core::load` computes the same
//! value from first principles. The simulator samples quorums through that very
//! strategy, so in a failure-free run the busiest server's empirical access
//! frequency ([`SimReport::max_empirical_load`]) must converge to the
//! LP-optimal `L(Q)` — pinning down that the simulator's accounting, the
//! access strategy and the LP all describe the same quantity.

use byzantine_quorums::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn lp_optimal_load(quorums: &[ServerSet], n: usize) -> f64 {
    let (load, _strategy) = optimal_load(quorums, n).expect("LP solves on these instances");
    load
}

#[test]
fn threshold_empirical_load_converges_to_lp_optimal() {
    // Thresh(7 of 9): fair, so L = 7/9; the LP agrees and the simulator must too.
    let sys = ThresholdSystem::minimal_masking(2).unwrap();
    let n = sys.universe_size();
    let lp = lp_optimal_load(sys.to_explicit(1_000).unwrap().quorums(), n);
    assert!((lp - 7.0 / 9.0).abs() < 1e-6, "LP sanity: {lp}");

    let mut rng = StdRng::seed_from_u64(0x10ad);
    let report = run_workload(
        sys,
        2,
        FaultPlan::none(n),
        WorkloadConfig {
            operations: 6_000,
            write_fraction: 0.5,
        },
        &mut rng,
    );
    assert!(report.is_safe());
    assert_eq!(report.unavailable_operations, 0);
    let empirical = report.max_empirical_load();
    assert!(
        (empirical - lp).abs() < 0.04,
        "empirical {empirical} vs LP-optimal {lp}"
    );
}

#[test]
fn certified_strategy_empirical_load_tracks_certified_lq() {
    // Satellite regression for the strategy wiring: drive `run_workload`
    // through `StrategicQuorumSystem::from_certified`, so every sampled access
    // quorum comes from the *certified-optimal* strategy returned by
    // `optimal_load_oracle` — the single-threaded precursor of the concurrent
    // `bqs-service` validation. The busiest server's empirical frequency must
    // track the certified L(Q) itself (not merely the construction's built-in
    // uniform strategy).
    let sys = MGridSystem::new(7, 3).unwrap();
    let n = sys.universe_size();
    let certified = optimal_load_oracle(&sys).expect("M-Grid oracle certifies");
    assert!(certified.gap <= 1e-9);
    let strategic = StrategicQuorumSystem::from_certified(sys, &certified).unwrap();
    assert!((strategic.strategy_load() - certified.load).abs() < 1e-12);

    let mut rng = StdRng::seed_from_u64(0x10ad + 2);
    let operations = 8_000usize;
    let report = run_workload(
        strategic,
        3,
        FaultPlan::none(n),
        WorkloadConfig {
            operations,
            write_fraction: 0.4,
        },
        &mut rng,
    );
    assert!(report.is_safe());
    assert_eq!(report.unavailable_operations, 0);
    let empirical = report.max_empirical_load();
    // Binomial 5-sigma band around the certified load, plus the max-of-n
    // order-statistic drift (all servers sit at the same expected load under
    // the balanced certified strategy).
    let l = certified.load;
    let sigma = (l * (1.0 - l) / operations as f64).sqrt();
    let tolerance = sigma * (5.0 + (2.0 * (n as f64).ln()).sqrt());
    assert!(
        (empirical - l).abs() <= tolerance,
        "empirical {empirical} vs certified {l} (tolerance {tolerance})"
    );
}

#[test]
fn mgrid_empirical_load_converges_to_lp_optimal() {
    // M-Grid(5x5, b=2): fair with c = 2*2*5 - 4 = 16, so L(Q) = 16/25 = 0.64.
    let sys = MGridSystem::new(5, 2).unwrap();
    let n = sys.universe_size();
    let lp = lp_optimal_load(sys.to_explicit(20_000).unwrap().quorums(), n);
    assert!((lp - sys.analytic_load()).abs() < 1e-6, "LP sanity: {lp}");

    let mut rng = StdRng::seed_from_u64(0x10ad + 1);
    let report = run_workload(
        sys,
        2,
        FaultPlan::none(n),
        WorkloadConfig {
            operations: 6_000,
            write_fraction: 0.5,
        },
        &mut rng,
    );
    assert!(report.is_safe());
    let empirical = report.max_empirical_load();
    assert!(
        (empirical - lp).abs() < 0.05,
        "empirical {empirical} vs LP-optimal {lp}"
    );
}
