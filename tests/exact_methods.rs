//! Cross-crate parity and envelope tests for the exact evaluation paths this
//! engine added for the paper's two headline constructions:
//!
//! * **boostFPP** — the survivor-profile closed form (`F_p(boost) =
//!   F_{r(p)}(FPP)` by Theorem 4.7, with the FPP evaluated through the
//!   projective plane's line-free profile) against `Evaluator::exact`
//!   enumeration on every feasible small instance, and against the paper's
//!   analytic envelope (Propositions 6.3 / 4.3) across a `p` grid;
//! * **M-Path** — the transfer-matrix boundary-interface DP against
//!   enumeration on every feasible `side ≤ 4` instance, and against the
//!   counting bound / resilience lower bound across a `p` grid;
//! * the **batched sweep engine** — bit-for-bit parity between
//!   `Evaluator::sweep` and one-call-at-a-time evaluation, with method tags
//!   preserved.

use byzantine_quorums::combinatorics::projective::ProjectivePlane;
use byzantine_quorums::prelude::*;

const P_GRID: [f64; 9] = [0.01, 0.05, 0.1, 0.125, 0.2, 0.25, 0.33, 0.4, 0.5];

/// The FPP survivor-profile closed form is bit-level exact against full
/// enumeration for every enumerable plane, and the profile identity
/// `Σ_m N_m = 2^n − Σ_m (subsets containing a line)` is consistent.
#[test]
fn fpp_closed_form_parity_with_enumeration() {
    let eval = Evaluator::new();
    for q in [2u64, 3] {
        let fpp = FppSystem::new(q).unwrap();
        for &p in &P_GRID {
            let closed = fpp.crash_probability_exact(p).unwrap();
            let enumerated = eval.exact(&fpp, p).unwrap();
            assert!(
                (closed - enumerated).abs() < 1e-9,
                "q={q} p={p}: closed {closed} vs enumerated {enumerated}"
            );
        }
        let profile = ProjectivePlane::new(q)
            .unwrap()
            .line_free_profile()
            .unwrap();
        let n = fpp.universe_size();
        let total: u64 = profile.iter().sum();
        assert!(total < 1u64 << n, "line-free subsets must not cover 2^n");
        assert_eq!(profile[0], 1, "the empty set is line-free");
        assert_eq!(*profile.last().unwrap(), 0, "the full set contains lines");
    }
}

/// boostFPP parity with enumeration on the feasible small instance (q = 2,
/// b = 0 — the only boostFPP whose universe fits the 2^25 exact limit), plus
/// the composition law checked against a materialised composition at n = 9.
#[test]
fn boostfpp_closed_form_parity_with_enumeration() {
    let eval = Evaluator::new();
    let sys = BoostFppSystem::new(2, 0).unwrap();
    for &p in &P_GRID {
        let closed = sys.crash_probability_exact(p).unwrap();
        let enumerated = eval.exact(&sys, p).unwrap();
        assert!(
            (closed - enumerated).abs() < 1e-9,
            "p={p}: closed {closed} vs enumerated {enumerated}"
        );
    }
}

/// The paper's analytic envelope brackets the exact boostFPP value across
/// the whole p grid, for the Section 8 instance included.
#[test]
fn boostfpp_exact_inside_paper_envelope() {
    for (q, b) in [(2u64, 1usize), (3, 7), (3, 19), (4, 10)] {
        let sys = BoostFppSystem::new(q, b).unwrap();
        for &p in &P_GRID {
            let exact = sys
                .crash_probability_exact(p)
                .expect("q <= 4 planes have profiles");
            assert!((0.0..=1.0).contains(&exact), "q={q} b={b} p={p}");
            if let Some(chernoff) = sys.crash_probability_prop_6_3_bound(p) {
                assert!(
                    exact <= chernoff + 1e-12,
                    "q={q} b={b} p={p}: exact {exact} above Chernoff {chernoff}"
                );
            }
            if p < 0.25 {
                let numeric = sys.crash_probability_numeric_bound(p);
                assert!(
                    exact <= numeric + 1e-12,
                    "q={q} b={b} p={p}: exact {exact} above numeric {numeric}"
                );
            }
            let lower = byzantine_quorums::core::bounds::crash_probability_lower_bound_resilience(
                p,
                sys.min_transversal(),
            );
            assert!(
                exact >= lower - 1e-12,
                "q={q} b={b} p={p}: exact {exact} below p^MT {lower}"
            );
        }
        // Monotone in p (any quorum-system F_p is).
        let mut prev = 0.0;
        for i in 0..=20 {
            let p = f64::from(i) / 20.0;
            let fp = sys.crash_probability_exact(p).unwrap();
            assert!(fp >= prev - 1e-12, "q={q} b={b} p={p}");
            prev = fp;
        }
    }
}

/// The paper-scale boostFPP(q=3, b=19) instance (n = 1001): the engine
/// dispatches to the closed form, the value is exact at every benched p —
/// including the p = 0.05 tail where Monte-Carlo reported a literal 0.
#[test]
fn boostfpp_paper_instance_is_exact_at_all_sweep_points() {
    let sys = BoostFppSystem::new(3, 19).unwrap();
    let eval = Evaluator::new();
    let fps = eval.sweep(&sys, &[0.05, 0.125, 0.25]);
    for fp in &fps {
        assert_eq!(fp.method, FpMethod::ClosedForm);
    }
    assert!(
        fps[0].value > 0.0 && fps[0].value < 1e-6,
        "{}",
        fps[0].value
    );
    assert!(fps[1].value <= 0.372, "{}", fps[1].value);
    assert!(fps[2].value > 0.1, "{}", fps[2].value);
}

/// M-Path transfer-matrix DP parity with enumeration on every feasible
/// `side ≤ 4` instance (the enumeration checks availability by max-flow, so
/// this also pins the self-matching duality end to end).
#[test]
fn mpath_dp_parity_with_enumeration() {
    let eval = Evaluator::new();
    // Side 4 costs 2^16 max-flow availability checks per point and is already
    // covered (at both b values) by the bqs-constructions unit tests; the
    // facade-level smoke keeps the cheap side-3 instances.
    let cases: &[(usize, usize, &[f64])] = &[
        (3, 0, &[0.05, 0.25, 0.5, 0.75]),
        (3, 1, &[0.05, 0.25, 0.5, 0.75]),
    ];
    for &(side, b, ps) in cases {
        let m = MPathSystem::new(side, b).unwrap();
        for &p in ps {
            let dp = m.crash_probability_exact(p).unwrap();
            let enumerated = eval.exact(&m, p).unwrap();
            assert!(
                (dp - enumerated).abs() < 1e-9,
                "side={side} b={b} p={p}: dp {dp} vs enumerated {enumerated}"
            );
        }
    }
}

/// M-Path exact values sit inside the paper's envelope across a p grid, on
/// an instance where enumeration is hopeless in practice (side 5: 2^25
/// configurations, each needing a max-flow — hours of work; the DP answers
/// each point in well under a second).
#[test]
fn mpath_exact_inside_paper_envelope_beyond_enumeration() {
    let m = MPathSystem::new(5, 2).unwrap();
    let mut prev = 0.0;
    for &p in &[0.05, 0.125, 0.25, 0.4, 0.6] {
        let exact = m.crash_probability_exact(p).unwrap();
        if let Some(upper) = m.crash_probability_counting_bound(p) {
            assert!(exact <= upper + 1e-12, "p={p}: {exact} above {upper}");
        }
        let lower = byzantine_quorums::core::bounds::crash_probability_lower_bound_resilience(
            p,
            m.min_transversal(),
        );
        assert!(exact >= lower - 1e-12, "p={p}: {exact} below {lower}");
        assert!(exact >= prev - 1e-12, "p={p}: not monotone");
        prev = exact;
    }
}

/// Sweep parity: the batched engine returns bit-for-bit the same estimates
/// and method tags as one-call-at-a-time single-threaded evaluation, across
/// a mixed closed-form / DP / Monte-Carlo grid.
#[test]
fn sweep_is_bit_for_bit_consistent_across_methods() {
    let boost = BoostFppSystem::new(3, 19).unwrap();
    let mpath_small = MPathSystem::new(4, 1).unwrap();
    let mpath_big = MPathSystem::new(9, 4).unwrap();
    let eval = Evaluator::new()
        .with_trials(200)
        .with_seed(99)
        .with_exact_limit(0);
    let serial = eval.clone().with_threads(1);
    let ps = [0.05, 0.125, 0.3];
    let systems: [&dyn QuorumSystem; 3] = [&boost, &mpath_small, &mpath_big];
    let grid = eval.sweep_systems(&systems, &ps);
    for (sys, row) in systems.iter().zip(&grid) {
        for (est, &p) in row.iter().zip(&ps) {
            let direct = serial.crash_probability(*sys, p);
            assert_eq!(est.method, direct.method, "{} p={p}", sys.name());
            assert_eq!(
                est.value.to_bits(),
                direct.value.to_bits(),
                "{} p={p}",
                sys.name()
            );
        }
    }
    // Dispatch expectations across the mixed grid.
    assert!(grid[0].iter().all(|e| e.method == FpMethod::ClosedForm));
    assert!(grid[1].iter().all(|e| e.method == FpMethod::Dp));
    assert!(grid[2].iter().all(|e| e.method == FpMethod::MonteCarlo));
    // Monte-Carlo rows carry non-degenerate Wilson bounds even on zero hits.
    for e in &grid[2] {
        assert!(e.ci95_upper_bound() > 0.0);
        assert!(e.ci95_upper_bound() >= e.value);
    }
}
