//! Property-based tests (proptest) on the core invariants of the library:
//! Theorem 4.7 (composition), Lemma 3.6 / Corollary 3.7 (masking), Theorem 4.1
//! (load bound), the binomial lemmas of Appendix A, and the bitset algebra that
//! everything else rests on.

use proptest::prelude::*;

use byzantine_quorums::combinatorics::binomial::{
    binomial, binomial_tail, lemma_a1_holds, lemma_a2_bound,
};
use byzantine_quorums::core::prelude::*;
use byzantine_quorums::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// ServerSet algebra: |A ∩ B| + |A ∪ B| = |A| + |B|, difference/complement laws.
    #[test]
    fn bitset_inclusion_exclusion(
        a in proptest::collection::btree_set(0usize..120, 0..40),
        b in proptest::collection::btree_set(0usize..120, 0..40),
    ) {
        let sa = ServerSet::from_indices(120, a.iter().copied());
        let sb = ServerSet::from_indices(120, b.iter().copied());
        prop_assert_eq!(
            sa.intersection_size(&sb) + sa.union(&sb).len(),
            sa.len() + sb.len()
        );
        prop_assert_eq!(sa.difference(&sb).len(), sa.len() - sa.intersection_size(&sb));
        prop_assert_eq!(sa.complement().len(), 120 - sa.len());
        prop_assert!(sa.intersection(&sb).is_subset_of(&sa));
        prop_assert!(sa.is_subset_of(&sa.union(&sb)));
    }

    /// Pascal's rule and symmetry for binomial coefficients.
    #[test]
    fn binomial_identities(n in 1u64..50, k in 0u64..50) {
        if k <= n {
            prop_assert_eq!(binomial(n, k), binomial(n, n - k));
        } else {
            prop_assert_eq!(binomial(n, k), 0);
        }
        if k >= 1 && k <= n {
            prop_assert_eq!(binomial(n, k), binomial(n - 1, k - 1) + binomial(n - 1, k));
        }
    }

    /// Lemma A.1 and Lemma A.2 of the paper hold for all small parameters.
    #[test]
    fn appendix_a_lemmas(k in 1u64..40, d in 0u64..40, i in 0u64..40, p in 0.0f64..1.0) {
        prop_assert!(lemma_a1_holds(k, d, i));
        if d <= k {
            let tail = binomial_tail(k, d, p);
            prop_assert!(tail <= lemma_a2_bound(k, d, p) + 1e-9);
        }
    }

    /// The ℓ-of-k threshold system: masking level from Corollary 3.7 matches the
    /// closed form min{(2ℓ-k-1)/2, k-ℓ}.
    #[test]
    fn threshold_masking_level_closed_form(k in 3usize..9, excess in 1usize..4) {
        let l = k / 2 + excess;
        prop_assume!(l < k && 2 * l > k);
        let sys = ThresholdSystem::new(k, l).unwrap();
        let explicit = sys.to_explicit(100_000).unwrap();
        let expected = ((2 * l - k - 1) / 2).min(k - l);
        prop_assert_eq!(masking_level(explicit.quorums(), k), Some(expected));
        prop_assert_eq!(sys.masking_b(), expected);
    }

    /// Theorem 4.7: composing two threshold systems multiplies c, IS, MT and the load.
    #[test]
    fn composition_theorem_on_thresholds(
        k1 in 2usize..5, e1 in 1usize..3,
        k2 in 2usize..5, e2 in 1usize..3,
    ) {
        let l1 = (k1 / 2 + e1).min(k1);
        let l2 = (k2 / 2 + e2).min(k2);
        prop_assume!(l1 < k1 || k1 == l1); // allow l == k (single quorum = whole set)
        prop_assume!(2 * l1 > k1 && 2 * l2 > k2);
        prop_assume!(l1 <= k1 && l2 <= k2);
        let s = ThresholdSystem::new(k1, l1).unwrap().to_explicit(10_000).unwrap();
        let r = ThresholdSystem::new(k2, l2).unwrap().to_explicit(10_000).unwrap();
        prop_assume!(s.num_quorums().pow(l1 as u32) <= 20_000);
        let composed = compose_explicit(&s, &r, 200_000);
        prop_assume!(composed.is_ok());
        let composed = composed.unwrap();
        let n = k1 * k2;
        prop_assert_eq!(composed.universe_size(), n);
        prop_assert_eq!(min_quorum_size(composed.quorums()), l1 * l2);
        prop_assert_eq!(
            min_intersection_size(composed.quorums()),
            (2 * l1 - k1) * (2 * l2 - k2)
        );
        prop_assert_eq!(
            min_transversal_size(composed.quorums(), n),
            (k1 - l1 + 1) * (k2 - l2 + 1)
        );
        let (load, _) = optimal_load(composed.quorums(), n).unwrap();
        let expected = (l1 as f64 / k1 as f64) * (l2 as f64 / k2 as f64);
        prop_assert!((load - expected).abs() < 1e-5);
    }

    /// Theorem 4.1 and Corollary 4.2: the LP load of any explicit b-masking system
    /// built from random quorums respects the lower bounds.
    #[test]
    fn load_lower_bound_on_random_masking_systems(seed in 0u64..500) {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(seed);
        // Random threshold parameters guarantee a valid masking system.
        let b = (seed % 3) as usize;
        let sys = ThresholdSystem::minimal_masking(b).unwrap();
        let explicit = sys.to_explicit(100_000).unwrap();
        let n = explicit.universe_size();
        let (load, _) = optimal_load(explicit.quorums(), n).unwrap();
        prop_assert!(load + 1e-9 >= byzantine_quorums::core::bounds::load_lower_bound_universal(n, b));
        // Sampling never returns a set smaller than c(Q).
        let q = sys.sample_quorum(&mut rng);
        prop_assert!(q.len() >= sys.min_quorum_size());
    }

    /// The masking read rule: a value written to at least 2b+1 servers of the read
    /// quorum always survives masking, and a value reported by at most b servers
    /// never does (the vote-counting core of Definition 3.5).
    #[test]
    fn mask_votes_properties(b in 0usize..4, honest in 1usize..12, byz in 0usize..4) {
        prop_assume!(honest > 2 * b);
        prop_assume!(byz <= b);
        let mut votes: Vec<(usize, u64)> = Vec::new();
        for i in 0..honest {
            votes.push((i, 7)); // honest servers all report the written value 7
        }
        for j in 0..byz {
            votes.push((honest + j, 1_000_000 + j as u64)); // fabricated values
        }
        let safe = mask_votes(&votes, b);
        prop_assert!(safe.contains(&7));
        prop_assert!(safe.iter().all(|&v| v == 7));
    }

    /// Crash-probability bounds of Section 4 are consistent: Prop 4.3 ≥ Prop 4.4
    /// whenever MT ≤ c − 2b, and both lie in [0, 1].
    #[test]
    fn crash_bounds_consistency(p in 0.0f64..1.0, b in 0usize..5, extra in 0usize..10) {
        use byzantine_quorums::core::bounds::*;
        let c = 2 * b + 1 + extra; // minimal quorum at least 2b+1
        let mt = (c - 2 * b).min(extra + 1);
        let b43 = crash_probability_lower_bound_resilience(p, mt);
        let b44 = crash_probability_lower_bound_masking(p, c, b);
        prop_assert!((0.0..=1.0).contains(&b43));
        prop_assert!((0.0..=1.0).contains(&b44));
        if mt <= c - 2 * b {
            prop_assert!(b43 + 1e-12 >= b44);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// The Monte-Carlo estimator is statistically consistent with exact
    /// enumeration on small Threshold systems: the exact value lies within the
    /// (slightly widened, to keep the test deterministic-safe at ~4σ) 95%
    /// confidence interval of the parallel per-thread-stream estimator.
    #[test]
    fn monte_carlo_consistent_with_exact_threshold(
        n in 5usize..10,
        p in 0.05f64..0.45,
        seed in 0u64..1000,
    ) {
        let sys = ThresholdSystem::new(n, n / 2 + 1).unwrap();
        let exact = exact_crash_probability(&sys, p).unwrap();
        let est = Evaluator::new().with_seed(seed).with_trials(4000).monte_carlo(&sys, p);
        prop_assert!(
            (est.mean - exact).abs() <= 2.0 * est.ci95_half_width() + 1e-9,
            "n={} p={} seed={}: exact {} vs MC {} ± {}",
            n, p, seed, exact, est.mean, est.ci95_half_width()
        );
    }

    /// Same consistency property on small Grid systems (whose availability
    /// event — full rows and a full column — exercises a different
    /// `is_available` shape than a popcount threshold).
    #[test]
    fn monte_carlo_consistent_with_exact_grid(
        p in 0.05f64..0.4,
        seed in 0u64..1000,
    ) {
        let sys = GridSystem::new(4, 1).unwrap();
        let exact = exact_crash_probability(&sys, p).unwrap();
        let est = Evaluator::new().with_seed(seed).with_trials(4000).monte_carlo(&sys, p);
        prop_assert!(
            (est.mean - exact).abs() <= 2.0 * est.ci95_half_width() + 1e-9,
            "p={} seed={}: exact {} vs MC {} ± {}",
            p, seed, exact, est.mean, est.ci95_half_width()
        );
    }

    /// The new evaluation engine reproduces the historical scalar loop
    /// *bit for bit* on every universe up to n = 16: below the parallel
    /// threshold it keeps the ascending-mask summation order, and the per-mask
    /// term `q^alive * p^crashed` is computed identically.
    #[test]
    fn engine_matches_scalar_reference_bit_for_bit(
        n in 5usize..17,
        p in 0.0f64..1.0,
        shape in 0usize..3,
    ) {
        use byzantine_quorums::core::availability::exact_crash_probability_naive;
        let sys: Box<dyn QuorumSystem> = match shape {
            0 => Box::new(ThresholdSystem::new(n, n / 2 + 1).unwrap()),
            1 => Box::new(GridSystem::new(4, 1).unwrap()),
            _ => Box::new(MGridSystem::new(4, 1).unwrap()),
        };
        let engine = exact_crash_probability(sys.as_ref(), p).unwrap();
        let naive = exact_crash_probability_naive(sys.as_ref(), p).unwrap();
        prop_assert_eq!(
            engine.to_bits(),
            naive.to_bits(),
            "shape={} n={} p={}: engine {} vs naive {}",
            shape, sys.universe_size(), p, engine, naive
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The lane-batched exact enumeration ([`QuorumSystem::is_available_u64x4`]
    /// under the hood) is bit-identical to the historical scalar loop for
    /// every construction family with a universe of at most 20 servers.
    /// (boostFPP's smallest instance already exceeds 20 servers and is exact
    /// through Theorem 4.7 rather than enumeration, so it has no lane path.)
    #[test]
    fn lane_batched_enumeration_bit_identical_to_scalar(
        n in 12usize..21,
        p in 0.0f64..1.0,
        shape in 0usize..6,
    ) {
        use byzantine_quorums::core::availability::exact_crash_probability_naive;
        let sys: Box<dyn QuorumSystem> = match shape {
            0 => Box::new(ThresholdSystem::new(n, n / 2 + 1).unwrap()),
            1 => Box::new(GridSystem::new(4, 1).unwrap()),
            2 => Box::new(MGridSystem::new(4, 1).unwrap()),
            3 => Box::new(FppSystem::new(3).unwrap()),
            4 => Box::new(MPathSystem::new(3, 1).unwrap()),
            _ => Box::new(RtSystem::new(4, 3, 2).unwrap()),
        };
        let lanes = exact_crash_probability(sys.as_ref(), p).unwrap();
        let scalar = exact_crash_probability_naive(sys.as_ref(), p).unwrap();
        prop_assert_eq!(
            lanes.to_bits(),
            scalar.to_bits(),
            "shape={} n={} p={}: lanes {} vs scalar {}",
            shape, sys.universe_size(), p, lanes, scalar
        );
    }

    /// On every side the unpruned M-Path sweep affords, the ε-pruned sweep's
    /// certified interval contains the exact value at random `p`, and the
    /// enclosure is no wider than 1e-12 (the sides ≤ 6 acceptance bar; sides
    /// kept ≤ 5 here so the unpruned reference stays fast in debug builds —
    /// side 6 is pinned deterministically in the `bqs-graph` suite).
    #[test]
    fn pruned_dp_interval_contains_exact_at_random_p(
        side in 2usize..6,
        k in 1usize..3,
        p in 0.0f64..1.0,
    ) {
        use byzantine_quorums::graph::crossing_dp::{
            mpath_crash_probability_exact, mpath_crash_probability_pruned, DEFAULT_PRUNE_EPSILON,
        };
        prop_assume!(k <= side);
        let exact = mpath_crash_probability_exact(side, k, p, 1 << 22).unwrap();
        let iv = mpath_crash_probability_pruned(side, k, p, 1 << 22, DEFAULT_PRUNE_EPSILON)
            .unwrap();
        prop_assert!(
            iv.lower <= exact && exact <= iv.upper,
            "side={} k={} p={}: exact {} outside [{}, {}]",
            side, k, p, exact, iv.lower, iv.upper
        );
        prop_assert!(
            iv.width() <= 1e-12,
            "side={} k={} p={}: width {}",
            side, k, p, iv.width()
        );
    }
}

/// Non-proptest regression: a composed system's crash probability is the composition
/// of the component crash probabilities (Theorem 4.7's availability clause) for a
/// non-threshold composition as well.
#[test]
fn composed_crash_probability_for_grid_over_threshold() {
    use byzantine_quorums::core::availability::exact_crash_probability;
    let outer = RegularGridSystem::new(2).unwrap().to_explicit().unwrap();
    let inner = ThresholdSystem::new(3, 2)
        .unwrap()
        .to_explicit(100)
        .unwrap();
    let composed = compose_explicit(&outer, &inner, 1_000_000).unwrap();
    for &p in &[0.1, 0.3, 0.5, 0.7] {
        let r = exact_crash_probability(&inner, p).unwrap();
        let s_of_r = exact_crash_probability(&outer, r).unwrap();
        let direct = exact_crash_probability(&composed, p).unwrap();
        assert!(
            (s_of_r - direct).abs() < 1e-9,
            "p={p}: {s_of_r} vs {direct}"
        );
    }
}
