//! The chaos scenario engine through real sockets: the masking invariants
//! hold at `b` faults and break detectably at `b + 1` on the Unix-domain and
//! TCP backends too, and a socket run replays deterministically from its
//! `(seed, scenario)` pair. (The full matrix — every family × every backend
//! × the fixed seed set — is `bench_chaos`; these tests pin the cross-backend
//! claim in the ordinary test suite with a fast subset.)

use std::sync::Arc;
use std::time::Duration;

use byzantine_quorums::chaos::prelude::*;
use byzantine_quorums::constructions::prelude::*;
use byzantine_quorums::core::quorum::QuorumSystem;
use byzantine_quorums::net::prelude::*;
use byzantine_quorums::service::transport::Transport;

enum Backend {
    Uds,
    Tcp,
}

fn uds_path(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("bqs-chaos-e2e-{}-{tag}.sock", std::process::id()))
}

/// Builds the scenario's fault plan behind a socket server, wraps the pooled
/// transport (`pool = 1`, so connection id ≡ client at the replicas) in the
/// chaos interposer, and runs the invariant-checking workload.
fn run_socket(
    backend: Backend,
    scenario: ChaosScenario,
    system: &ThresholdSystem,
    faults: usize,
    config: &ScenarioConfig,
    tag: &str,
) -> ScenarioOutcome {
    let n = system.universe_size();
    let plan = scenario.fault_plan(n, faults, None);
    let server = match backend {
        Backend::Uds => SocketServer::bind_uds(uds_path(tag), &plan, 2, config.seed),
        Backend::Tcp => SocketServer::bind_tcp_loopback(&plan, 2, config.seed),
    }
    .expect("bind socket server");
    let transport = SocketTransport::connect(
        server.endpoint().clone(),
        n,
        NetConfig {
            pool: 1,
            request_deadline: Duration::from_secs(5),
            ..NetConfig::default()
        },
    )
    .expect("connect transport pool");
    let chaos = ChaosTransport::new(
        Arc::new(transport),
        config.seed,
        scenario.id(),
        scenario.chaos_config_for(n, faults),
    );
    let _: &dyn Transport = &chaos; // the interposer is itself a Transport
    run_scenario(
        scenario,
        system,
        1,
        faults,
        server.responsive_set().clone(),
        &chaos,
        config,
    )
}

fn config() -> ScenarioConfig {
    ScenarioConfig {
        writes: 8,
        reads: 40,
        reply_deadline: Duration::from_millis(100),
        ..ScenarioConfig::default()
    }
}

#[test]
fn uds_masks_at_b_and_detects_at_b_plus_1() {
    let system = ThresholdSystem::minimal_masking(1).unwrap();
    for scenario in [ChaosScenario::DropRetry, ChaosScenario::SlowServers] {
        let at_b = run_socket(Backend::Uds, scenario, &system, 1, &config(), "b");
        assert_eq!(at_b.safety_violations(), 0, "{}: {at_b:?}", scenario.name());
        assert!(at_b.reads_completed > 0, "{}: {at_b:?}", scenario.name());
        let over = run_socket(Backend::Uds, scenario, &system, 2, &config(), "b1");
        assert!(over.detected(), "{}: {over:?}", scenario.name());
    }
}

#[test]
fn tcp_masks_at_b_and_detects_at_b_plus_1() {
    let system = ThresholdSystem::minimal_masking(1).unwrap();
    for scenario in [ChaosScenario::DelayJitter, ChaosScenario::Duplicate] {
        let at_b = run_socket(Backend::Tcp, scenario, &system, 1, &config(), "b");
        assert_eq!(at_b.safety_violations(), 0, "{}: {at_b:?}", scenario.name());
        assert!(at_b.reads_completed > 0, "{}: {at_b:?}", scenario.name());
        let over = run_socket(Backend::Tcp, scenario, &system, 2, &config(), "b1");
        assert!(over.detected(), "{}: {over:?}", scenario.name());
    }
}

#[test]
fn socket_runs_replay_deterministically() {
    let system = ThresholdSystem::minimal_masking(1).unwrap();
    let first = run_socket(
        Backend::Uds,
        ChaosScenario::DropRetry,
        &system,
        2,
        &config(),
        "replay-a",
    );
    let second = run_socket(
        Backend::Uds,
        ChaosScenario::DropRetry,
        &system,
        2,
        &config(),
        "replay-b",
    );
    assert_eq!(
        first.trace_fingerprint, second.trace_fingerprint,
        "identical (seed, scenario) must replay the identical chaos trace over sockets"
    );
    assert_eq!(first.trace_events, second.trace_events);
    assert_eq!(first.safety_violations(), second.safety_violations());
    assert_eq!(first.writes_completed, second.writes_completed);
    assert_eq!(first.reads_completed, second.reads_completed);
}
