//! Cross-crate integration tests: every construction's analytic parameters agree
//! with the exact measures computed by `bqs-core` on explicit instances, and the
//! paper's headline claims (Lemma 3.6, Propositions 5.1–7.2) hold on them.

use byzantine_quorums::core::prelude::*;
use byzantine_quorums::prelude::*;

/// Builds small explicit instances of every construction together with their
/// analytic (b, load) claims.
fn small_instances() -> Vec<(String, ExplicitQuorumSystem, usize, f64)> {
    let mut out = Vec::new();

    let t = ThresholdSystem::minimal_masking(1).unwrap();
    out.push((
        t.name(),
        t.to_explicit(10_000).unwrap(),
        t.masking_b(),
        t.analytic_load(),
    ));

    let t2 = ThresholdSystem::masking(9, 2).unwrap();
    out.push((
        t2.name(),
        t2.to_explicit(10_000).unwrap(),
        t2.masking_b(),
        t2.analytic_load(),
    ));

    let g = GridSystem::new(5, 1).unwrap();
    out.push((
        g.name(),
        g.to_explicit(10_000).unwrap(),
        g.masking_b(),
        g.analytic_load(),
    ));

    let m = MGridSystem::new(5, 2).unwrap();
    out.push((
        m.name(),
        m.to_explicit(10_000).unwrap(),
        m.masking_b(),
        m.analytic_load(),
    ));

    let rt = RtSystem::new(4, 3, 2).unwrap();
    out.push((
        rt.name(),
        rt.to_explicit(10_000).unwrap(),
        rt.masking_b(),
        rt.analytic_load(),
    ));

    let fpp = FppSystem::new(3).unwrap();
    out.push((
        fpp.name(),
        fpp.to_explicit().unwrap(),
        fpp.masking_b(),
        fpp.analytic_load(),
    ));

    out
}

#[test]
fn analytic_masking_levels_match_exact_measures() {
    for (name, explicit, claimed_b, _) in small_instances() {
        let n = explicit.universe_size();
        let exact = masking_level(explicit.quorums(), n)
            .unwrap_or_else(|| panic!("{name}: not even a quorum system"));
        assert!(
            exact >= claimed_b,
            "{name}: claims b = {claimed_b} but exact measures give {exact}"
        );
        assert!(
            is_b_masking(explicit.quorums(), n, claimed_b),
            "{name}: claimed masking level fails Lemma 3.6"
        );
    }
}

#[test]
fn analytic_loads_match_lp_loads() {
    for (name, explicit, _, claimed_load) in small_instances() {
        let n = explicit.universe_size();
        let (lp, strategy) = optimal_load(explicit.quorums(), n).unwrap();
        assert!(
            (lp - claimed_load).abs() < 1e-5,
            "{name}: LP load {lp} vs analytic {claimed_load}"
        );
        // The optimal strategy really achieves the optimal load.
        let achieved = strategy_load(explicit.quorums(), n, &strategy);
        assert!(achieved <= lp + 1e-6, "{name}");
        // And Theorem 4.1 holds.
        let b = masking_level(explicit.quorums(), n).unwrap();
        let bound = byzantine_quorums::core::bounds::load_lower_bound(
            n,
            b,
            min_quorum_size(explicit.quorums()),
        );
        assert!(
            lp + 1e-9 >= bound,
            "{name}: load {lp} below Theorem 4.1 bound {bound}"
        );
    }
}

#[test]
fn all_instances_are_fair_so_proposition_3_9_applies() {
    for (name, explicit, _, claimed_load) in small_instances() {
        let n = explicit.universe_size();
        if is_fair(explicit.quorums(), n) {
            let fl = fair_load(explicit.quorums(), n).unwrap();
            assert!(
                (fl - claimed_load).abs() < 1e-9,
                "{name}: Proposition 3.9 load {fl} vs analytic {claimed_load}"
            );
        }
    }
}

#[test]
fn resilience_matches_exact_transversals() {
    let cases: Vec<(String, ExplicitQuorumSystem, usize)> = vec![
        {
            let t = ThresholdSystem::minimal_masking(2).unwrap();
            (t.name(), t.to_explicit(10_000).unwrap(), t.resilience())
        },
        {
            let g = GridSystem::new(4, 1).unwrap();
            (g.name(), g.to_explicit(10_000).unwrap(), g.resilience())
        },
        {
            let m = MGridSystem::new(5, 2).unwrap();
            (m.name(), m.to_explicit(10_000).unwrap(), m.resilience())
        },
        {
            let rt = RtSystem::new(3, 2, 2).unwrap();
            (rt.name(), rt.to_explicit(10_000).unwrap(), rt.resilience())
        },
        {
            let f = FppSystem::new(2).unwrap();
            (f.name(), f.to_explicit().unwrap(), f.resilience())
        },
    ];
    for (name, explicit, claimed_f) in cases {
        let n = explicit.universe_size();
        let exact_f = resilience(explicit.quorums(), n);
        assert_eq!(exact_f, claimed_f, "{name}");
    }
}

#[test]
fn sampled_quorums_always_contain_a_quorum_of_the_explicit_list() {
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    let mut rng = StdRng::seed_from_u64(5);
    let m = MGridSystem::new(5, 2).unwrap();
    let explicit = m.to_explicit(10_000).unwrap();
    for _ in 0..50 {
        let q = m.sample_quorum(&mut rng);
        assert!(
            explicit.quorums().iter().any(|e| e.is_subset_of(&q)),
            "sampled set is not a quorum"
        );
    }
}

#[test]
fn availability_of_lazy_and_explicit_forms_agrees() {
    use byzantine_quorums::core::availability::exact_crash_probability;
    // RT(3,2) depth 2 (9 servers) and Grid(4,1) (16 servers) are small enough for
    // exact enumeration through both code paths.
    let rt = RtSystem::new(3, 2, 2).unwrap();
    let rt_explicit = rt.to_explicit(10_000).unwrap();
    for &p in &[0.1, 0.3, 0.5] {
        let lazy = exact_crash_probability(&rt, p).unwrap();
        let explicit = exact_crash_probability(&rt_explicit, p).unwrap();
        assert!((lazy - explicit).abs() < 1e-12, "p={p}");
    }
    let g = GridSystem::new(4, 1).unwrap();
    let g_explicit = g.to_explicit(10_000).unwrap();
    for &p in &[0.1, 0.25] {
        let lazy = exact_crash_probability(&g, p).unwrap();
        let explicit = exact_crash_probability(&g_explicit, p).unwrap();
        assert!((lazy - explicit).abs() < 1e-12, "p={p}");
    }
}
