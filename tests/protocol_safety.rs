//! End-to-end protocol safety: for every construction, the replicated register built
//! on it stays consistent under any fault plan within the construction's design
//! envelope (at most `b` Byzantine servers plus crashes within the resilience), and
//! degrades to unavailability — never to inconsistency — beyond it.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

use byzantine_quorums::prelude::*;

/// Runs one workload and asserts safety.
fn assert_safe<Q: QuorumSystem + Clone>(system: Q, b: usize, plan: FaultPlan, seed: u64) {
    let mut rng = StdRng::seed_from_u64(seed);
    let report = run_workload(
        system,
        b,
        plan,
        WorkloadConfig {
            operations: 400,
            write_fraction: 0.3,
        },
        &mut rng,
    );
    assert!(report.is_safe(), "safety violated: {report:?}");
}

#[test]
fn threshold_register_is_safe_under_full_byzantine_budget() {
    for b in 1..=3usize {
        let sys = ThresholdSystem::minimal_masking(b).unwrap();
        let n = sys.universe_size();
        let mut rng = StdRng::seed_from_u64(b as u64);
        let plan = FaultPlan::random(
            n,
            b,
            0,
            ByzantineStrategy::FabricateHighTimestamp {
                value: u64::MAX / 2,
            },
            &mut rng,
        );
        assert_safe(sys, b, plan, 100 + b as u64);
    }
}

#[test]
fn every_construction_masks_its_design_b_with_mixed_attacks() {
    let strategies = [
        ByzantineStrategy::FabricateHighTimestamp { value: 0xBAD },
        ByzantineStrategy::StaleReplay,
        ByzantineStrategy::Equivocate,
    ];
    // (system, b) pairs sized for quick simulation.
    let mgrid = MGridSystem::new(7, 3).unwrap();
    let grid = GridSystem::new(7, 2).unwrap();
    let rt = RtSystem::new(4, 3, 2).unwrap();
    let boost = BoostFppSystem::new(2, 1).unwrap();
    let mpath = MPathSystem::new(6, 2).unwrap();

    let mut seed = 1u64;
    macro_rules! check {
        ($sys:expr, $b:expr) => {{
            let sys = $sys;
            let b = $b;
            let n = sys.universe_size();
            let mut plan = FaultPlan::none(n);
            for i in 0..b {
                plan = plan.with_byzantine((i * 7) % n, strategies[i % strategies.len()]);
            }
            assert_safe(sys, b, plan, seed);
            seed += 1;
        }};
    }
    check!(mgrid, 3);
    check!(grid, 2);
    check!(rt, 1);
    check!(boost, 1);
    check!(mpath, 2);
    let _ = seed;
}

#[test]
fn crashes_beyond_resilience_never_produce_wrong_reads() {
    // Crash 3 of 5 servers of a 4-of-5 threshold: everything stalls, nothing lies.
    let sys = ThresholdSystem::minimal_masking(1).unwrap();
    let plan = FaultPlan::none(5)
        .with_crashed(0)
        .with_crashed(1)
        .with_crashed(2);
    let mut rng = StdRng::seed_from_u64(3);
    let report = run_workload(
        sys,
        1,
        plan,
        WorkloadConfig {
            operations: 200,
            write_fraction: 0.5,
        },
        &mut rng,
    );
    assert!(report.is_safe());
    assert_eq!(report.reads_completed, 0);
    assert_eq!(report.writes_completed, 0);
    assert_eq!(report.unavailable_operations, 200);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random fault plans within the design envelope of the minimal threshold system
    /// never violate safety, for any mix of Byzantine strategies and crash counts up
    /// to the resilience.
    #[test]
    fn random_faults_within_envelope_are_masked(
        b in 1usize..4,
        crashes in 0usize..3,
        strategy_idx in 0usize..4,
        seed in 0u64..1000,
    ) {
        let sys = ThresholdSystem::minimal_masking(b).unwrap();
        let n = sys.universe_size();
        let f = sys.min_transversal() - 1; // = b for this construction
        prop_assume!(crashes <= f);
        prop_assume!(b + crashes <= n);
        let strategy = match strategy_idx {
            0 => ByzantineStrategy::FabricateHighTimestamp { value: 42_424_242 },
            1 => ByzantineStrategy::StaleReplay,
            2 => ByzantineStrategy::Equivocate,
            _ => ByzantineStrategy::Silent,
        };
        // Silent Byzantine servers consume responsiveness like crashes do; keep the
        // combined unresponsive count within the resilience.
        if matches!(strategy, ByzantineStrategy::Silent) {
            prop_assume!(b + crashes <= f);
        }
        let mut rng = StdRng::seed_from_u64(seed);
        let plan = FaultPlan::random(n, b, crashes, strategy, &mut rng);
        let report = run_workload(
            sys,
            b,
            plan,
            WorkloadConfig { operations: 200, write_fraction: 0.3 },
            &mut rng,
        );
        prop_assert!(report.is_safe(), "{report:?}");
        // Within the envelope the system must also make progress.
        if !matches!(strategy, ByzantineStrategy::Silent) && crashes <= f {
            prop_assert!(report.reads_completed + report.writes_completed > 0);
        }
    }

    /// The empirical load measured by the simulator converges to the analytic load
    /// of the sampled strategy in the failure-free case, for the M-Grid family.
    #[test]
    fn empirical_load_tracks_analytic_load(side in 4usize..8, seed in 0u64..100) {
        let b = MGridSystem::max_b(side).min(3);
        let sys = MGridSystem::new(side, b).unwrap();
        let analytic = sys.analytic_load();
        let n = sys.universe_size();
        let mut rng = StdRng::seed_from_u64(seed);
        let report = run_workload(
            sys,
            b,
            FaultPlan::none(n),
            WorkloadConfig { operations: 1500, write_fraction: 0.5 },
            &mut rng,
        );
        prop_assert!(report.is_safe());
        let empirical = report.max_empirical_load();
        prop_assert!(
            (empirical - analytic).abs() < 0.12,
            "side={side}: empirical {empirical} vs analytic {analytic}"
        );
    }
}
