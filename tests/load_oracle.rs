//! Cross-crate tests for the certified column-generation load engine:
//!
//! * **parity** — `optimal_load_oracle` against the explicit-quorum LP
//!   (`optimal_load`) to `1e-9` on every construction small enough to
//!   enumerate, with the returned strategy achieving exactly the reported
//!   load and the certified gap honoured;
//! * **scale regression** — the Section 8-size instances (`n ≥ 256`) of the
//!   paper's load-optimal constructions (M-Grid, M-Path, boostFPP) certified
//!   within a constant of the universal lower bound `√((2b+1)/n)` of
//!   Corollary 4.2, values the explicit LP can never check.

use byzantine_quorums::core::load::{optimal_load, optimal_load_oracle};
use byzantine_quorums::core::oracle::MinWeightQuorumOracle;
use byzantine_quorums::prelude::*;

/// Runs the engine on `sys`, checks its internal consistency, and returns
/// the certified load.
fn certify_and_check(sys: &(impl MinWeightQuorumOracle + ?Sized)) -> f64 {
    let certified = optimal_load_oracle(sys).unwrap_or_else(|e| {
        panic!("{} failed to certify: {e:?}", sys.name());
    });
    assert!(
        certified.gap <= 1e-9,
        "{}: certified gap {:e}",
        sys.name(),
        certified.gap
    );
    assert!(
        certified.lower_bound <= certified.load + 1e-15,
        "{}: lower bound above load",
        sys.name()
    );
    assert!(
        (certified.load - certified.lower_bound - certified.gap).abs() <= 1e-15,
        "{}: gap inconsistent with its bounds",
        sys.name()
    );
    // The strategy must achieve exactly the reported load (same bits: the
    // engine computes the load *from* the strategy, never from solver state).
    let achieved = certified
        .strategy
        .induced_system_load(&certified.quorums, sys.universe_size());
    assert_eq!(
        achieved.to_bits(),
        certified.load.to_bits(),
        "{}: strategy load diverges from reported load",
        sys.name()
    );
    certified.load
}

/// Certified load vs the explicit LP on every construction small enough to
/// materialise its quorum list.
#[test]
fn certified_load_matches_explicit_lp_on_all_enumerable_constructions() {
    let mut cases: Vec<(String, Vec<ServerSet>, usize, f64)> = Vec::new();
    {
        let mut push = |name: String, quorums: &[ServerSet], n: usize, certified: f64| {
            cases.push((name, quorums.to_vec(), n, certified));
        };
        let t = ThresholdSystem::masking(12, 2).unwrap();
        let te = t.to_explicit(100_000).unwrap();
        push(t.name(), te.quorums(), 12, certify_and_check(&t));

        let g = GridSystem::new(5, 1).unwrap();
        let ge = g.to_explicit(100_000).unwrap();
        push(g.name(), ge.quorums(), 25, certify_and_check(&g));

        let m = MGridSystem::new(5, 2).unwrap();
        let me = m.to_explicit(100_000).unwrap();
        push(m.name(), me.quorums(), 25, certify_and_check(&m));

        let rt = RtSystem::new(4, 3, 2).unwrap();
        let rte = rt.to_explicit(100_000).unwrap();
        push(rt.name(), rte.quorums(), 16, certify_and_check(&rt));

        let fpp = FppSystem::new(3).unwrap();
        let fe = fpp.to_explicit().unwrap();
        push(fpp.name(), fe.quorums(), 13, certify_and_check(&fpp));

        let maj = MajoritySystem::new(9).unwrap();
        let maje = maj.to_explicit(100_000).unwrap();
        push(maj.name(), maje.quorums(), 9, certify_and_check(&maj));

        let rg = RegularGridSystem::new(4).unwrap();
        let rge = rg.to_explicit().unwrap();
        push(rg.name(), rge.quorums(), 16, certify_and_check(&rg));
    }
    for (name, quorums, n, certified) in cases {
        let (lp_load, _) = optimal_load(&quorums, n).unwrap();
        assert!(
            (certified - lp_load).abs() <= 1e-9,
            "{name}: certified {certified} vs explicit LP {lp_load}"
        );
    }
}

/// boostFPP's certified load against the explicit LP of its materialised
/// composition (FPP(2) over Thresh(4-of-5): 875 composed quorums, n = 35).
#[test]
fn certified_boost_fpp_load_matches_explicit_composition() {
    let sys = BoostFppSystem::new(2, 1).unwrap();
    let certified = certify_and_check(&sys);
    let outer = FppSystem::new(2).unwrap().to_explicit().unwrap();
    let inner = ThresholdSystem::minimal_masking(1)
        .unwrap()
        .to_explicit(100)
        .unwrap();
    let composed = compose_explicit(&outer, &inner, 10_000).unwrap();
    let (lp_load, _) = optimal_load(composed.quorums(), 35).unwrap();
    assert!(
        (certified - lp_load).abs() <= 1e-9,
        "certified {certified} vs explicit composed LP {lp_load}"
    );
}

/// M-Path's certified load against the explicit LP over its straight-line
/// family (the Proposition 7.2 strategy support, which attains the full
/// system's load by Theorem 4.1).
#[test]
fn certified_mpath_load_matches_explicit_straight_family() {
    let m = MPathSystem::new(5, 2).unwrap();
    let certified = certify_and_check(&m);
    let k = m.paths_per_direction();
    let grid = m.grid();
    let mut quorums = Vec::new();
    for rows in byzantine_quorums::combinatorics::subsets::KSubsets::new(5, k) {
        for cols in byzantine_quorums::combinatorics::subsets::KSubsets::new(5, k) {
            let mut q = ServerSet::new(25);
            for &r in &rows {
                for v in grid.straight_path(byzantine_quorums::graph::Axis::LeftRight, r) {
                    q.insert(v);
                }
            }
            for &c in &cols {
                for v in grid.straight_path(byzantine_quorums::graph::Axis::TopBottom, c) {
                    q.insert(v);
                }
            }
            quorums.push(q);
        }
    }
    let (lp_load, _) = optimal_load(&quorums, 25).unwrap();
    assert!(
        (certified - lp_load).abs() <= 1e-9,
        "certified {certified} vs explicit straight-family LP {lp_load}"
    );
    // Theorem 4.1 cross-check: the certified value is exactly the c/n bound,
    // so no larger quorum family could do better.
    assert!((certified - m.min_quorum_size() as f64 / 25.0).abs() <= 1e-9);
}

/// The certified engine agrees with the generic explicit-system oracle path:
/// running column generation against an `ExplicitQuorumSystem`'s scan oracle
/// must land on the same optimum as the dense LP even for unfair systems.
#[test]
fn certified_load_on_unfair_explicit_system() {
    let quorums = vec![
        ServerSet::from_indices(5, [0, 1]),
        ServerSet::from_indices(5, [0, 2, 3]),
        ServerSet::from_indices(5, [1, 2, 4]),
        ServerSet::from_indices(5, [0, 3, 4]),
        ServerSet::from_indices(5, [1, 3, 4]),
    ];
    let sys = ExplicitQuorumSystem::new(5, quorums.clone()).unwrap();
    let certified = certify_and_check(&sys);
    let (lp_load, _) = optimal_load(&quorums, 5).unwrap();
    assert!(
        (certified - lp_load).abs() <= 1e-9,
        "certified {certified} vs explicit LP {lp_load}"
    );
}

/// Regression (Corollary 4.2): at `n ≥ 256` the certified LP load of each
/// load-optimal construction stays within a small constant of the universal
/// lower bound `√((2b+1)/n)` — M-Grid within `√2·√((b+1)/(2b+1)) ≈ √2`,
/// M-Path within 2, boostFPP within ~1.7 (Propositions 5.2, 7.2, 6.2).
#[test]
fn certified_loads_track_the_universal_bound_at_scale() {
    let cases: Vec<(Box<dyn MinWeightQuorumOracle>, usize, f64)> = vec![
        (Box::new(MGridSystem::new(16, 7).unwrap()), 7, 2.1),
        (Box::new(MGridSystem::new(32, 15).unwrap()), 15, 2.1),
        (Box::new(MPathSystem::new(16, 7).unwrap()), 7, 2.1),
        (Box::new(MPathSystem::new(32, 7).unwrap()), 7, 2.1),
        (Box::new(BoostFppSystem::new(3, 12).unwrap()), 12, 1.8),
        (Box::new(BoostFppSystem::new(3, 19).unwrap()), 19, 1.8),
    ];
    for (sys, b, factor) in &cases {
        let sys = sys.as_ref();
        let n = sys.universe_size();
        assert!(n >= 256, "{}: n = {n}", sys.name());
        let certified = certify_and_check(sys);
        let bound = ((2 * b + 1) as f64 / n as f64).sqrt();
        assert!(
            certified >= bound - 1e-9,
            "{}: certified load {certified} below the universal bound {bound}",
            sys.name()
        );
        assert!(
            certified <= factor * bound,
            "{}: certified load {certified} more than {factor}x the bound {bound}",
            sys.name()
        );
    }
}
