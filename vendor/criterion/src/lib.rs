//! Offline stand-in for the `criterion` benchmark harness (0.5 API subset).
//!
//! The build environment has no registry access, so this vendored crate
//! implements the small part of criterion's API the workspace benches use:
//! [`Criterion::benchmark_group`], [`BenchmarkGroup::bench_function`],
//! [`BenchmarkGroup::sample_size`], [`Bencher::iter`], [`BenchmarkId`], the
//! [`criterion_group!`]/[`criterion_main!`] macros and [`black_box`].
//!
//! Measurements are wall-clock means over an adaptively chosen iteration
//! count — good enough to track relative regressions, with none of real
//! criterion's statistics. Swap in the real crate when a registry is
//! available; no source changes should be required.

#![forbid(unsafe_code)]

use std::fmt;
use std::time::{Duration, Instant};

/// Opaque value barrier, preventing the optimiser from deleting benchmarked
/// work. Forwards to [`std::hint::black_box`].
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Builds an id from a function name and a parameter.
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Builds an id from a parameter alone.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// The benchmark driver.
pub struct Criterion {
    /// Target measurement time per benchmark.
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            measurement_time: Duration::from_millis(300),
        }
    }
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        eprintln!("group: {name}");
        BenchmarkGroup {
            criterion: self,
            name,
        }
    }

    /// Compatibility no-op (upstream configures sampling globally).
    #[must_use]
    pub fn sample_size(self, _n: usize) -> Self {
        self
    }

    /// Compatibility setter for the per-benchmark measurement budget.
    #[must_use]
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }
}

/// A named group of benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Compatibility no-op: the shim sizes iteration counts by time, not by
    /// sample count.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Compatibility no-op.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.criterion.measurement_time = d;
        self
    }

    /// Runs one benchmark and prints its mean time per iteration.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            budget: self.criterion.measurement_time,
            mean_ns: 0.0,
            iterations: 0,
        };
        f(&mut bencher);
        eprintln!(
            "  {}/{}: {} ({} iterations)",
            self.name,
            id,
            format_ns(bencher.mean_ns),
            bencher.iterations
        );
        self
    }

    /// Finishes the group (printing only; kept for API compatibility).
    pub fn finish(self) {}
}

/// Times closures handed over by a benchmark.
pub struct Bencher {
    budget: Duration,
    mean_ns: f64,
    iterations: u64,
}

impl Bencher {
    /// Calls `routine` repeatedly until the measurement budget is spent and
    /// records the mean wall-clock time per call.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up and per-call cost estimate from a single call.
        let start = Instant::now();
        black_box(routine());
        let first = start.elapsed().max(Duration::from_nanos(1));

        // Aim for the time budget, in batches to amortise clock reads.
        let calls_in_budget = (self.budget.as_nanos() / first.as_nanos()).clamp(1, 1_000_000);
        let batch = calls_in_budget.div_ceil(10).min(u64::MAX as u128) as u64;
        let mut total = Duration::ZERO;
        let mut calls = 0u64;
        while total < self.budget && calls < calls_in_budget as u64 {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            total += t.elapsed();
            calls += batch;
        }
        self.mean_ns = total.as_nanos() as f64 / calls as f64;
        self.iterations = calls;
    }
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s/iter", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms/iter", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs/iter", ns / 1e3)
    } else {
        format!("{ns:.1} ns/iter")
    }
}

/// Declares a group of benchmark functions, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark entry point, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut c = Criterion::default().measurement_time(Duration::from_millis(5));
        let mut group = c.benchmark_group("smoke");
        let mut acc = 0u64;
        group.bench_function(BenchmarkId::from_parameter("count"), |b| {
            b.iter(|| {
                acc = acc.wrapping_add(black_box(1));
                acc
            })
        });
        group.finish();
        assert!(acc > 0);
    }

    #[test]
    fn id_formats() {
        assert_eq!(BenchmarkId::from_parameter("x").to_string(), "x");
        assert_eq!(BenchmarkId::new("f", 3).to_string(), "f/3");
    }
}
