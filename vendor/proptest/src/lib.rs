//! Offline stand-in for the `proptest` property-testing framework.
//!
//! The build environment has no registry access, so this vendored crate
//! implements the subset the workspace's integration tests use: the
//! [`proptest!`] macro with `pattern in strategy` bindings and a
//! `#![proptest_config(...)]` header, range strategies over the primitive
//! numeric types, [`collection::btree_set`], and the
//! [`prop_assert!`]/[`prop_assert_eq!`]/[`prop_assume!`] macros.
//!
//! Differences from real proptest: cases are generated from a deterministic
//! per-test seed, there is **no shrinking** (a failing case is reported
//! as-is), and strategies are plain value generators rather than value trees.
//! Swap in the real crate when a registry is available; no source changes
//! should be required.

#![forbid(unsafe_code)]

use std::collections::BTreeSet;
use std::ops::Range;

use rand::rngs::StdRng;
use rand::Rng;

/// Per-test configuration, mirroring `proptest::test_runner::Config`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful cases required for the test to pass.
    pub cases: u32,
    /// Maximum rejected (assumed-away) cases before the test errors out.
    pub max_global_rejects: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 256,
            max_global_rejects: 65_536,
        }
    }
}

impl ProptestConfig {
    /// A configuration running `cases` successful cases.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig {
            cases,
            ..Default::default()
        }
    }
}

/// Why a generated case did not count as a success.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// The case was rejected by `prop_assume!` and should be regenerated.
    Reject(String),
    /// An assertion failed; the test must fail.
    Fail(String),
}

/// Result type threaded through generated test bodies.
pub type TestCaseResult = Result<(), TestCaseError>;

/// A generator of test values, mirroring (a tiny part of) proptest's
/// `Strategy`.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + (rng.gen_range_u64(0, span) as $t)
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! signed_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i64 - self.start as i64) as u64;
                (self.start as i64 + rng.gen_range_u64(0, span) as i64) as $t
            }
        }
    )*};
}

signed_range_strategy!(i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut StdRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.gen::<f64>() * (self.end - self.start)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn generate(&self, rng: &mut StdRng) -> f32 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.gen::<f32>() * (self.end - self.start)
    }
}

/// A strategy that always yields a clone of one value, mirroring
/// `proptest::strategy::Just`.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// Collection strategies, mirroring `proptest::collection`.
pub mod collection {
    use super::{BTreeSet, Range, StdRng, Strategy};

    /// Strategy producing `BTreeSet`s with sizes drawn from `size`.
    #[derive(Debug, Clone)]
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Generates btree sets whose elements come from `element` and whose size
    /// is drawn uniformly from `size`.
    pub fn btree_set<S>(element: S, size: Range<usize>) -> BTreeSetStrategy<S> {
        BTreeSetStrategy { element, size }
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            let target = self.size.generate(rng);
            let mut out = BTreeSet::new();
            // Insertions can collide; bound the attempts so a narrow element
            // domain cannot loop forever.
            for _ in 0..target.saturating_mul(8).max(8) {
                if out.len() >= target {
                    break;
                }
                out.insert(self.element.generate(rng));
            }
            out
        }
    }
}

/// Everything a test file needs, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Just, ProptestConfig,
        Strategy, TestCaseError, TestCaseResult,
    };
}

#[doc(hidden)]
pub mod __rt {
    pub use rand::rngs::StdRng;
    pub use rand::SeedableRng;

    /// Deterministic per-test, per-case seed.
    #[must_use]
    pub fn case_seed(test_name: &str, case: u32) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        h ^ (u64::from(case).wrapping_mul(0x9e37_79b9_7f4a_7c15))
    }
}

/// Defines property tests, mirroring proptest's macro of the same name.
#[macro_export]
macro_rules! proptest {
    // With a config header.
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($pat:pat in $strategy:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            #[test]
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                $crate::__proptest_run!(config, $name, ($($pat in $strategy),+) $body);
            }
        )*
    };
    // Without a config header.
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident($($pat:pat in $strategy:expr),+ $(,)?) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $( $(#[$meta])* fn $name($($pat in $strategy),+) $body )*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_run {
    ($config:expr, $name:ident, ($($pat:pat in $strategy:expr),+) $body:block) => {{
        use $crate::__rt::SeedableRng as _;
        let mut successes: u32 = 0;
        let mut rejects: u32 = 0;
        let mut draw: u32 = 0;
        while successes < $config.cases {
            let mut rng = $crate::__rt::StdRng::seed_from_u64($crate::__rt::case_seed(
                concat!(module_path!(), "::", stringify!($name)),
                draw,
            ));
            draw += 1;
            let result: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                $(let $pat = $crate::Strategy::generate(&($strategy), &mut rng);)+
                $body
                ::std::result::Result::Ok(())
            })();
            match result {
                ::std::result::Result::Ok(()) => successes += 1,
                ::std::result::Result::Err($crate::TestCaseError::Reject(_)) => {
                    rejects += 1;
                    assert!(
                        rejects <= $config.max_global_rejects,
                        "too many prop_assume! rejections in {}",
                        stringify!($name)
                    );
                }
                ::std::result::Result::Err($crate::TestCaseError::Fail(msg)) => {
                    panic!("property {} failed at case {}: {}", stringify!($name), draw - 1, msg);
                }
            }
        }
    }};
}

/// Asserts a condition inside a property body, mirroring proptest's macro.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!($($fmt)*)));
        }
    };
}

/// Asserts equality inside a property body, mirroring proptest's macro.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "assertion failed: `{} == {}` (left: `{:?}`, right: `{:?}`)",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, $($fmt)*);
    }};
}

/// Asserts inequality inside a property body, mirroring proptest's macro.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l != r,
            "assertion failed: `{} != {}` (both: `{:?}`)",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

/// Rejects the current case (regenerating it), mirroring proptest's macro.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Reject(
                stringify!($cond).to_string(),
            ));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        fn ranges_respect_bounds(x in 3usize..17, y in 0.25f64..0.75) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((0.25..0.75).contains(&y), "y out of range: {y}");
        }

        fn sets_respect_domain(s in crate::collection::btree_set(0usize..10, 0..5)) {
            prop_assert!(s.len() < 5);
            for v in &s {
                prop_assert!(*v < 10);
            }
        }

        fn assume_rejects_cases(x in 0u64..100) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }

        #[should_panic(expected = "property")]
        fn failures_panic(x in 0u32..10) {
            prop_assert!(x > 100, "x was {x}");
        }
    }
}
