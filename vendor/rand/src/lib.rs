//! Offline stand-in for the `rand` crate (0.8 API subset).
//!
//! The build environment has no registry access, so this vendored crate
//! provides exactly the surface the workspace uses:
//!
//! * [`RngCore`] / [`Rng`] / [`SeedableRng`];
//! * [`rngs::StdRng`] — a xoshiro256++ generator (not ChaCha as in upstream
//!   rand; seeds produce different — but still deterministic — streams);
//! * [`seq::SliceRandom`] (`shuffle`, `choose`) and [`seq::index::sample`].
//!
//! Replacing this crate with the real `rand` from crates.io requires no
//! source changes in the workspace.

#![forbid(unsafe_code)]

/// The core trait every random-number generator implements. Object safe.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

impl RngCore for Box<dyn RngCore> {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Types that can be sampled uniformly from an RNG's raw output, mirroring
/// `Standard: Distribution<T>` in upstream rand.
pub trait StandardSample {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardSample for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl StandardSample for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl StandardSample for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardSample for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision, as in upstream rand.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Extension methods over [`RngCore`], mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Samples a value of type `T` uniformly from the generator's raw output.
    fn gen<T: StandardSample>(&mut self) -> T {
        T::sample(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }

    /// Samples uniformly from `low..high` (half-open). Panics if empty.
    fn gen_range_u64(&mut self, low: u64, high: u64) -> u64 {
        assert!(low < high, "empty range");
        low + uniform_u64(self, high - low)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Unbiased uniform draw from `0..bound` by rejection sampling.
fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    let zone = u64::MAX - (u64::MAX - bound + 1) % bound;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % bound;
        }
    }
}

/// A generator that can be instantiated from a seed, mirroring
/// `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Raw seed type.
    type Seed: Default + AsMut<[u8]>;

    /// Builds the generator from a raw byte seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a `u64`, expanding it with SplitMix64.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64 { state };
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = sm.next().to_le_bytes();
            let len = chunk.len();
            chunk.copy_from_slice(&bytes[..len]);
        }
        Self::from_seed(seed)
    }

    /// Builds the generator from OS-provided entropy (here: the system clock,
    /// which is all the offline shim has available).
    fn from_entropy() -> Self {
        let nanos = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0x9e37_79b9_7f4a_7c15);
        Self::seed_from_u64(nanos)
    }
}

struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng, SplitMix64};

    /// The workspace's standard deterministic generator: xoshiro256++.
    ///
    /// Statistically strong and fast; unlike upstream rand's ChaCha-based
    /// `StdRng` it is *not* cryptographically secure, which is irrelevant for
    /// the simulations and estimators in this workspace.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut bytes = [0u8; 8];
                bytes.copy_from_slice(&seed[i * 8..i * 8 + 8]);
                *word = u64::from_le_bytes(bytes);
            }
            // An all-zero state would be a fixed point; nudge it.
            if s == [0, 0, 0, 0] {
                let mut sm = SplitMix64 { state: 1 };
                for word in &mut s {
                    *word = sm.next();
                }
            }
            StdRng { s }
        }
    }
}

/// Sequence-related helpers, mirroring `rand::seq`.
pub mod seq {
    use super::{uniform_u64, Rng};

    /// Random operations on slices, mirroring `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// Returns one uniformly chosen element, or `None` if empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = uniform_u64(rng, i as u64 + 1) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[uniform_u64(rng, self.len() as u64) as usize])
            }
        }
    }

    /// Index sampling without replacement, mirroring `rand::seq::index`.
    pub mod index {
        use crate::{uniform_u64, RngCore};

        /// A set of sampled indices.
        #[derive(Debug, Clone)]
        pub struct IndexVec {
            indices: Vec<usize>,
        }

        impl IndexVec {
            /// Iterates over the sampled indices by value.
            pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
                self.indices.iter().copied()
            }

            /// Consumes the sample into a `Vec`.
            #[must_use]
            pub fn into_vec(self) -> Vec<usize> {
                self.indices
            }

            /// The `i`-th sampled index.
            #[must_use]
            pub fn index(&self, i: usize) -> usize {
                self.indices[i]
            }

            /// Number of sampled indices.
            #[must_use]
            pub fn len(&self) -> usize {
                self.indices.len()
            }

            /// True if no indices were sampled.
            #[must_use]
            pub fn is_empty(&self) -> bool {
                self.indices.is_empty()
            }
        }

        impl IntoIterator for IndexVec {
            type Item = usize;
            type IntoIter = std::vec::IntoIter<usize>;
            fn into_iter(self) -> Self::IntoIter {
                self.indices.into_iter()
            }
        }

        /// Samples `amount` distinct indices from `0..length` uniformly, via a
        /// partial Fisher–Yates shuffle.
        ///
        /// # Panics
        ///
        /// Panics if `amount > length`.
        pub fn sample<R: RngCore + ?Sized>(rng: &mut R, length: usize, amount: usize) -> IndexVec {
            assert!(
                amount <= length,
                "cannot sample {amount} indices from {length}"
            );
            let mut pool: Vec<usize> = (0..length).collect();
            let mut indices = Vec::with_capacity(amount);
            for i in 0..amount {
                let j = i + uniform_u64(rng, (length - i) as u64) as usize;
                pool.swap(i, j);
                indices.push(pool[i]);
            }
            IndexVec { indices }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::index::sample;
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_streams() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn f64_in_unit_interval_and_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        assert!((sum / 10_000.0 - 0.5).abs() < 0.02);
    }

    #[test]
    fn sample_without_replacement() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..50 {
            let s = sample(&mut rng, 10, 4);
            let v = s.into_vec();
            assert_eq!(v.len(), 4);
            let mut dedup = v.clone();
            dedup.sort_unstable();
            dedup.dedup();
            assert_eq!(dedup.len(), 4);
            assert!(v.iter().all(|&i| i < 10));
        }
    }

    #[test]
    fn sample_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut counts = [0usize; 8];
        for _ in 0..8000 {
            for i in sample(&mut rng, 8, 3).iter() {
                counts[i] += 1;
            }
        }
        for &c in &counts {
            let frac = c as f64 / 8000.0;
            assert!((frac - 3.0 / 8.0).abs() < 0.05, "frac={frac}");
        }
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut v: Vec<usize> = (0..20).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..20).collect::<Vec<_>>());
        assert!(v.choose(&mut rng).is_some());
    }

    #[test]
    fn works_through_dyn_rngcore() {
        let mut rng = StdRng::seed_from_u64(5);
        let dyn_rng: &mut dyn RngCore = &mut rng;
        let x: f64 = dyn_rng.gen();
        assert!((0.0..1.0).contains(&x));
        let s = sample(dyn_rng, 6, 2);
        assert_eq!(s.len(), 2);
    }
}
